//! Validating the optimizer itself: NSGA-II on the classic ZDT benchmark
//! suite, tracking hypervolume convergence toward the known Pareto fronts.
//!
//! ```sh
//! cargo run --release --example zdt_nsga2
//! ```

use dphpo::evo::nsga2::{run_nsga2, EvalResult, Nsga2Config};
use dphpo::evo::problems::{zdt1, zdt2, zdt3, Problem};
use dphpo::evo::{hypervolume_2d, pareto_front, Fitness, Individual};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn frontier_hv(pop: &[Individual]) -> f64 {
    let fits: Vec<&Fitness> = pop.iter().map(|i| i.fitness()).collect();
    let front = pareto_front(&fits);
    let pts: Vec<(f64, f64)> = front.iter().map(|&i| (fits[i].get(0), fits[i].get(1))).collect();
    hypervolume_2d(&pts, (11.0, 11.0))
}

fn optimize(problem: &Problem) {
    let config = Nsga2Config {
        pop_size: 48,
        generations: 60,
        init_ranges: problem.bounds(),
        bounds: problem.bounds(),
        std: vec![0.08; problem.dims()],
        anneal_factor: 0.98,
    };
    let mut evaluator = |genomes: &[Vec<f64>]| {
        genomes
            .iter()
            .map(|g| EvalResult::fitness(Fitness::new(problem.evaluate(g))))
            .collect::<Vec<_>>()
    };
    let mut rng = StdRng::seed_from_u64(2023);
    let result = run_nsga2(&config, &mut evaluator, &mut rng);
    println!("\n=== {} ===", problem.name());
    for record in result.history.iter().step_by(15) {
        println!(
            "  generation {:>3}: frontier hypervolume {:.3}",
            record.generation,
            frontier_hv(&record.population)
        );
    }
    let final_pop = result.final_population();
    println!(
        "  final: hypervolume {:.3} over {} evaluations",
        frontier_hv(final_pop),
        result.evaluations
    );
    // For ZDT problems the true front sits at g = 1; report the mean g
    // proxy (f2 at f1 → g relationship differs per problem, so report the
    // best f2 at small f1 instead).
    let best = final_pop
        .iter()
        .filter(|i| i.fitness().get(0) < 0.1)
        .map(|i| i.fitness().get(1))
        .fold(f64::MAX, f64::min);
    println!("  best f2 among solutions with f1 < 0.1: {best:.3}");
}

fn main() {
    for problem in [zdt1(), zdt2(), zdt3()] {
        optimize(&problem);
    }
}
