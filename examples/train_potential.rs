//! Train one deep-potential model directly (no EA) and inspect what the
//! DeePMD-substitute substrate produces: the `input.json` artifact, the
//! `lcurve.out` learning curve, and the trained model's force accuracy
//! against the reference potential.
//!
//! ```sh
//! cargo run --release --example train_potential
//! ```

use dphpo::dnnp::{train, Activation, LrScaling, TrainConfig};
use dphpo::md::generate::{generate_dataset, GenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let gen = GenConfig { n_frames: 80, ..GenConfig::reduced() };
    let mut dataset = generate_dataset(&gen, &mut rng);
    dataset.add_label_noise(0.0005, 0.03, &mut rng);
    let (train_ds, val_ds) = dataset.split(0.25, &mut rng);

    let config = TrainConfig {
        start_lr: 0.008,
        stop_lr: 1e-4,
        rcut: 10.5,
        rcut_smth: 2.4,
        scale_by_worker: LrScaling::None,
        desc_activation: Activation::Tanh,
        fitting_activation: Activation::Tanh,
        num_steps: 1_500,
        disp_freq: 250,
        val_max_frames: 6,
        ..TrainConfig::default()
    };
    println!("input.json:\n{}", config.to_input_json());

    println!("training {} steps…", config.num_steps);
    let t0 = std::time::Instant::now();
    let report = train(&config, &train_ds, &val_ds, &mut rng).expect("valid configuration");
    println!("finished in {:.1?} (diverged: {})\n", t0.elapsed(), report.diverged);

    println!("lcurve.out:\n{}", report.lcurve.to_text());
    let (final_e, final_f) = report.lcurve.final_losses().expect("completed training");
    println!(
        "final validation: energy RMSE {final_e:.4} eV/atom, force RMSE {final_f:.4} eV/Å"
    );

    // Compare predicted vs reference forces on one held-out frame.
    let frame = &val_ds.frames[0];
    let (energy, forces) = report.model.predict(&frame.positions);
    println!(
        "\nheld-out frame: E_pred {energy:.3} eV vs E_ref {:.3} eV",
        frame.energy
    );
    println!("first three atoms, predicted vs reference force (eV/Å):");
    for (i, (f, r)) in forces.iter().zip(&frame.forces).enumerate().take(3) {
        println!(
            "  atom {i}: ({:+.3}, {:+.3}, {:+.3})  vs  ({:+.3}, {:+.3}, {:+.3})",
            f[0], f[1], f[2],
            r[0], r[1], r[2]
        );
    }
}
