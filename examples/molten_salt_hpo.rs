//! The paper's headline workload at demonstration scale: a full NSGA-II
//! hyperparameter optimization of DNNP training on the synthetic molten
//! AlCl₃/KCl dataset, followed by Pareto-frontier and chemical-accuracy
//! analysis.
//!
//! ```sh
//! cargo run --release --example molten_salt_hpo
//! ```
//!
//! Runs one EA deployment (the paper runs five; `fig1` in `dphpo-bench`
//! runs the full experiment).

use dphpo::core::analysis::{analyze, CHEM_ACC_ENERGY, CHEM_ACC_FORCE};
use dphpo::core::{ExperimentConfig, ExperimentResult};

fn main() {
    let mut config = ExperimentConfig::reduced();
    config.n_runs = 1;
    config.pop_size = 8;
    config.generations = 3;
    config.base_train_config.num_steps = 600;
    println!(
        "NSGA-II: population {} × {} generations ({} trainings)…",
        config.pop_size,
        config.generations + 1,
        config.pop_size * (config.generations + 1)
    );

    let t0 = std::time::Instant::now();
    let result: ExperimentResult = dphpo::core::run_experiment(&config);
    println!("done in {:.1?}\n", t0.elapsed());

    // Per-generation convergence summary (Fig. 1 in miniature).
    for record in &result.runs[0].history {
        let ok: Vec<&dphpo::evo::Individual> =
            record.population.iter().filter(|i| !i.is_failed()).collect();
        let best_f = ok
            .iter()
            .map(|i| i.fitness().get(1))
            .fold(f64::MAX, f64::min);
        let best_e = ok
            .iter()
            .map(|i| i.fitness().get(0))
            .fold(f64::MAX, f64::min);
        println!(
            "generation {}: {} evaluable, best force {:.4} eV/Å, best energy {:.4} eV/atom, {} failures",
            record.generation,
            ok.len(),
            best_f,
            best_e,
            record.failures
        );
    }

    // Frontier + chemical accuracy (Fig. 2 / Fig. 3 in miniature).
    let analysis = analyze(&result);
    println!("\nPareto frontier ({} solutions):", analysis.frontier.len());
    for &i in &analysis.frontier {
        let s = &analysis.solutions[i];
        println!(
            "  force {:.4} eV/Å, energy {:.4} eV/atom — rcut {:.1}, {} / {} / {}",
            s.force_loss,
            s.energy_loss,
            s.decoded.rcut,
            s.decoded.scale_by_worker.name(),
            s.decoded.desc_activ_func.name(),
            s.decoded.fitting_activ_func.name()
        );
    }
    println!(
        "\nchemically accurate (force < {CHEM_ACC_FORCE}, energy < {CHEM_ACC_ENERGY}): {}",
        analysis.accurate.len()
    );
    if let Some(rcut) = analysis.min_accurate_rcut() {
        println!("smallest accurate rcut: {rcut:.2} Å (paper: none below 8.5 Å)");
    }
}
