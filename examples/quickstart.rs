//! Quickstart: generate a small synthetic dataset, evaluate one
//! hyperparameter genome end-to-end (decode → input.json → train → lcurve
//! → two-objective fitness), and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use dphpo::core::workflow::{evaluate_individual, EvalContext};
use dphpo::core::{decode, DeepMDRepresentation};
use dphpo::dnnp::TrainConfig;
use dphpo::hpc::CostModel;
use dphpo::md::generate::{generate_dataset, GenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The "CP2K trajectory": a synthetic molten-salt dataset.
    let mut rng = StdRng::seed_from_u64(42);
    let gen = GenConfig { n_atoms: 20, box_len: 17.84, n_frames: 60, ..GenConfig::reduced() };
    let mut dataset = generate_dataset(&gen, &mut rng);
    dataset.add_label_noise(0.0005, 0.025, &mut rng);
    let (train, val) = dataset.split(0.25, &mut rng);
    println!(
        "dataset: {} train / {} val frames, {} atoms, {:.1} Å box",
        train.n_frames(),
        val.n_frames(),
        train.n_atoms(),
        train.cell.length()
    );

    // 2. A seven-gene individual (Table 1 layout). Genes 4-6 are
    //    real-valued but decode to categorical choices.
    let genome = vec![0.006, 1e-4, 10.5, 2.4, 2.5, 4.5, 4.5];
    let decoded = decode(&genome);
    println!(
        "decoded: start_lr={:.4} stop_lr={:.0e} rcut={:.1} rcut_smth={:.1} \
         scale={} desc={} fitting={}",
        decoded.start_lr,
        decoded.stop_lr,
        decoded.rcut,
        decoded.rcut_smth,
        decoded.scale_by_worker.name(),
        decoded.desc_activ_func.name(),
        decoded.fitting_activ_func.name()
    );

    // 3. Evaluate it exactly as the paper's workflow does.
    let ctx = EvalContext {
        base_config: TrainConfig { num_steps: 400, disp_freq: 100, ..TrainConfig::default() },
        train: Arc::new(train),
        val: Arc::new(val),
        cost_model: CostModel::default(),
        workdir: None,
    };
    println!("training (400 steps)…");
    let record = evaluate_individual(&ctx, &genome, 7);
    if record.failed {
        println!("training FAILED → fitness = (MAXINT, MAXINT)");
    } else {
        println!(
            "fitness: energy RMSE {:.4} eV/atom, force RMSE {:.4} eV/Å; \
             simulated runtime {:.1} min at paper scale",
            record.fitness.get(0),
            record.fitness.get(1),
            record.minutes
        );
    }

    // 4. The search space this genome lives in.
    println!("\nsearch space (Table 1):");
    for (name, (lo, hi)) in dphpo::core::representation::GENE_NAMES
        .iter()
        .zip(DeepMDRepresentation::init_ranges())
    {
        println!("  {name:<20} ({lo:.3e}, {hi:.3e})");
    }
}
