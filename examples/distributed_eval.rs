//! The Summit/Dask deployment in isolation: fan a batch of tasks over a
//! simulated worker pool, inject worker deaths, and watch the scheduler
//! enforce the 2-hour timeout and reassign orphaned tasks — §2.2.5 of the
//! paper as a runnable demo.
//!
//! ```sh
//! cargo run --release --example distributed_eval
//! ```

use dphpo::hpc::{
    paper_job, run_batch, Allocation, CostModel, EvalOutcome, FaultInjector, PoolConfig,
    SupervisorConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let allocation = Allocation::paper();
    println!(
        "allocation: {} nodes × {} GPUs, {} min walltime",
        allocation.n_nodes,
        allocation.node.gpus,
        allocation.walltime_minutes
    );

    // 100 training tasks (one generation of the paper's population) whose
    // simulated runtimes come from the calibrated cost model; a couple are
    // pathological (they would exceed the 2-hour timeout).
    let cost = CostModel::default();
    let tasks: Vec<f64> = (0..100)
        .map(|i| 6.0 + 6.0 * (i as f64 % 11.0) / 10.0) // rcut spread 6..12
        .collect();

    let pool = PoolConfig {
        n_workers: allocation.n_nodes,
        timeout_minutes: Some(120.0),
        nanny: false, // the paper found it best to disable Dask nannies
        max_attempts: 3,
        supervisor: SupervisorConfig::default(),
    };
    let faults = FaultInjector::new(0.02, 42); // 2 % worker deaths per task

    let (records, report) = run_batch(
        &tasks,
        |i, &rcut| {
            let mut rng = StdRng::seed_from_u64(i as u64);
            let mut minutes = cost.gpu_minutes(&paper_job(rcut), &mut rng);
            if i % 37 == 5 {
                minutes = 150.0; // a configuration that would blow the wall
            }
            // Stand-in payload: the real workload trains a DNNP here.
            let fitness = (rng.random_range(0.0..0.01), rng.random_range(0.0..0.1));
            EvalOutcome { value: Ok(fitness), minutes }
        },
        &pool,
        &faults,
    );

    let ok = records.iter().filter(|r| r.value.is_ok()).count();
    let timeouts = records
        .iter()
        .filter(|r| matches!(r.value, Err(dphpo::hpc::TaskError::Timeout { .. })))
        .count();
    let faults_n = records
        .iter()
        .filter(|r| matches!(r.value, Err(dphpo::hpc::TaskError::WorkerFailed)))
        .count();
    let retried = records.iter().filter(|r| r.attempts > 1).count();

    println!("tasks: {} ok, {timeouts} timed out, {faults_n} lost to faults", ok);
    println!(
        "worker deaths: {}, tasks retried: {retried} (scheduler reassigns without nannies)",
        report.worker_deaths
    );
    println!(
        "simulated generation makespan: {:.1} min (fits {}x in the {}-min walltime)",
        report.makespan_minutes,
        (allocation.walltime_minutes / report.makespan_minutes) as usize,
        allocation.walltime_minutes
    );
    println!(
        "every failure becomes a MAXINT fitness upstream; NSGA-II's rank \
         sorting then culls those individuals (paper §2.2.4)"
    );
}
