//! # dphpo — Deep-Potential HyperParameter Optimization
//!
//! A Rust reproduction of *"Multiobjective Hyperparameter Optimization for
//! Deep Learning Interatomic Potential Training Using NSGA-II"* (Coletti et
//! al., PDADS @ ICPP 2023), complete with every substrate the paper depends
//! on:
//!
//! * [`autograd`] — tensors + reverse-mode AD with double backward;
//! * [`evo`] — the evolutionary-algorithm library (NSGA-II, sorting,
//!   crowding, hypervolume, ZDT/DTLZ validation problems);
//! * [`md`] — the synthetic first-principles MD dataset substrate
//!   (molten-salt reference potential, Langevin dynamics);
//! * [`dnnp`] — the DeepPot-SE-style potential trainer (DeePMD substitute);
//! * [`hpc`] — the Summit/Dask-style distributed evaluation simulator;
//! * [`core`] — the paper's contribution: representation, decoder,
//!   evaluation workflow, experiment driver, and analysis.
//!
//! See README.md for the quickstart and DESIGN.md for the full system
//! inventory and experiment index.

pub use dphpo_autograd as autograd;
pub use dphpo_core as core;
pub use dphpo_dnnp as dnnp;
pub use dphpo_evo as evo;
pub use dphpo_hpc as hpc;
pub use dphpo_md as md;
