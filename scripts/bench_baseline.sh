#!/usr/bin/env bash
# Refresh the checked-in training hot-path baseline (BENCH_hotpath.json at
# the repo root). Quick mode by default; pass --full for the slower, more
# stable measurement used when comparing optimisation work.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="--quick"
if [[ "${1:-}" == "--full" ]]; then
    mode=""
fi

cargo run --release -p dphpo-bench --bin hotpath -- ${mode}
