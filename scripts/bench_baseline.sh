#!/usr/bin/env bash
# Training hot-path baseline tooling (BENCH_hotpath.json at the repo root).
#
#   bench_baseline.sh           refresh the baseline (quick mode)
#   bench_baseline.sh --full    refresh with the slower, more stable
#                               measurement used when comparing perf work
#   bench_baseline.sh --check   run a fresh quick measurement into a temp
#                               file and FAIL if ns_per_step regressed more
#                               than 15% against the checked-in baseline
#                               (the baseline file is left untouched)
#
# --check is wired into scripts/verify.sh behind BENCH_CHECK=1 — quick-mode
# timings on a shared box are noisy, so the gate is opt-in rather than part
# of the default tier-1 run.
set -euo pipefail
cd "$(dirname "$0")/.."

# Print "rcut ns_per_step" pairs from a hotpath JSON. Keys inside each
# training row are emitted alphabetically, so ns_per_step precedes rcut.
pairs() {
    awk '/"ns_per_step"/ { gsub(/[",]/, ""); ns = $2 }
         /"rcut"/        { gsub(/[",]/, ""); print $2, ns }' "$1"
}

case "${1:-}" in
--check)
    # The telemetry-overhead baseline must carry the v3 schema: v1 numbers
    # came from a two-pass estimator whose inter-pass machine drift could
    # bias the subtraction (the checked-in v1 file recorded a negative
    # no-op "overhead"), and v2 predates the profiler-enabled block (alloc
    # metering counters and per-phase wall twins), so its live-block number
    # no longer measures the instrumentation the trainer actually runs.
    # Regenerate with `--bin obs_overhead`.
    if [[ -f "BENCH_obs.json" ]] && ! grep -q '"schema": "dphpo-obs-v3"' BENCH_obs.json; then
        echo "bench check: BENCH_obs.json is not schema dphpo-obs-v3 — regenerate with 'cargo run --release -p dphpo-bench --bin obs_overhead'" >&2
        exit 1
    fi
    baseline="BENCH_hotpath.json"
    if [[ ! -f "${baseline}" ]]; then
        echo "bench check: no checked-in ${baseline} to compare against" >&2
        exit 1
    fi
    fresh="$(mktemp /tmp/hotpath_check.XXXXXX.json)"
    trap 'rm -f "${fresh}"' EXIT
    cargo run --release -p dphpo-bench --bin hotpath -- --quick --out "${fresh}"
    fail=0
    while read -r rcut base_ns; do
        fresh_ns="$(pairs "${fresh}" | awk -v r="${rcut}" '$1 == r { print $2 }')"
        if [[ -z "${fresh_ns}" ]]; then
            echo "bench check: rcut ${rcut} missing from fresh run" >&2
            fail=1
            continue
        fi
        if awk -v f="${fresh_ns}" -v b="${base_ns}" 'BEGIN { exit !(f > b * 1.15) }'; then
            echo "bench check: REGRESSION at rcut ${rcut}: ${fresh_ns} ns/step vs baseline ${base_ns} (>15%)" >&2
            fail=1
        else
            echo "bench check: ok at rcut ${rcut}: ${fresh_ns} ns/step vs baseline ${base_ns}"
        fi
    done < <(pairs "${baseline}")
    if [[ ${fail} -ne 0 ]]; then
        echo "bench check: FAILED" >&2
        exit 1
    fi
    echo "bench check: OK"
    ;;
--full)
    cargo run --release -p dphpo-bench --bin hotpath
    ;;
*)
    cargo run --release -p dphpo-bench --bin hotpath -- --quick
    ;;
esac
