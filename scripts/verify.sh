#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md) plus the documentation and lint gates:
#
#   1. cargo build --release       — the whole workspace compiles
#   2. cargo test -q               — every test passes
#   3. cargo clippy                — lints clean with warnings DENIED
#   4. cargo doc --no-deps         — rustdoc builds with warnings DENIED
#   5. doc-sync                    — every `--bin`/`--bench` named in
#                                    EXPERIMENTS.md exists in the workspace,
#                                    and every fig1 flag used in README.md /
#                                    EXPERIMENTS.md is one `fig1 --list-flags`
#                                    actually parses
#   6. chaos stress                — the journal crash/resume chaos suites
#                                    (generational and steady-state), looped
#                                    CHAOS_STRESS times (default 3) to shake
#                                    out racy supervision interleavings
#   7. telemetry identity          — a faulty campaign run with a live
#                                    recorder must produce byte-identical
#                                    artifacts to one run without, and
#                                    deterministic exports across re-runs;
#                                    plus the campaign observatory: the live
#                                    campaign_status.json, the end-of-run
#                                    report, and the Chrome counter tracks
#                                    must be byte-identical across re-runs
#                                    and across a chaos kill/resume
#   8. corruption & salvage matrix — flip/truncate a finished journal
#                                    across byte offsets in both campaign
#                                    modes, salvage, resume, and demand
#                                    byte-identity with the undamaged run;
#                                    frame-format property tests; v1-fixture
#                                    compatibility; plus a seeded fault-plan
#                                    sweep (CHAOS_SEEDS io-fault seeds per
#                                    mode, default 2; CORRUPT_STRIDE /
#                                    SALVAGE_STRIDE tighten the offset grid,
#                                    1 = exhaustive)
#   9. profile identity            — profiling on/off leaves every campaign
#                                    artifact byte-identical, and the
#                                    profile artifacts themselves are
#                                    byte-identical across kill+resume and
#                                    re-runs (both campaign modes); plus the
#                                    profiler property tests (aggregation
#                                    order-independence, the exact
#                                    self+children==inclusive invariant,
#                                    folded-format validity)
#
# Opt-in extras (timing-sensitive, off by default on shared hardware):
#
#   BENCH_CHECK=1                  — fresh quick hot-path measurement must be
#                                    within 15% of the checked-in
#                                    BENCH_hotpath.json (bench_baseline.sh
#                                    --check), and perf_report --check must
#                                    find no row regressed against
#                                    BENCH_history.jsonl (perf_history.sh)
#
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/9] cargo build --release"
cargo build --release --workspace

echo "==> [2/9] cargo test -q"
cargo test -q --workspace

echo "==> [3/9] cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> [4/9] cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> [5/9] doc-sync: EXPERIMENTS.md targets exist"
missing=0
for bin in $(grep -o -- '--bin [a-z0-9_]*' EXPERIMENTS.md | awk '{print $2}' | sort -u); do
    if [[ ! -f "crates/bench/src/bin/${bin}.rs" ]]; then
        echo "    MISSING: EXPERIMENTS.md references --bin ${bin}" >&2
        missing=1
    else
        echo "    ok: --bin ${bin}"
    fi
done
for bench in $(grep -o -- '--bench [a-z0-9_]*' EXPERIMENTS.md | awk '{print $2}' | sort -u); do
    if [[ ! -f "crates/bench/benches/${bench}.rs" ]]; then
        echo "    MISSING: EXPERIMENTS.md references --bench ${bench}" >&2
        missing=1
    else
        echo "    ok: --bench ${bench}"
    fi
done
# Every fig1 flag the docs mention must be one the binary parses. Flags are
# harvested from lines that invoke fig1 (command lines and `fig1 --flag`
# inline references), so prose mentioning other binaries' flags is ignored.
echo "    doc-sync: fig1 flags in README.md/EXPERIMENTS.md parse"
known_flags="$(target/release/fig1 --list-flags)"
doc_flags="$(grep -h -- 'fig1' README.md EXPERIMENTS.md \
    | grep -o -- '--[a-z][a-z-]*' \
    | sort -u || true)"
for flag in ${doc_flags}; do
    # cargo-level flags on the same command line are not fig1's to parse.
    case "${flag}" in
    --release|--bin|--bench|--example) continue ;;
    esac
    if ! grep -qx -- "${flag}" <<<"${known_flags}"; then
        echo "    UNKNOWN: docs reference fig1 flag ${flag}" >&2
        missing=1
    else
        echo "    ok: fig1 ${flag}"
    fi
done
if [[ ${missing} -ne 0 ]]; then
    echo "verify: FAILED (doc-sync)" >&2
    exit 1
fi

CHAOS_STRESS="${CHAOS_STRESS:-3}"
echo "==> [6/9] chaos stress: ${CHAOS_STRESS}x journal crash/resume suites"
for i in $(seq 1 "${CHAOS_STRESS}"); do
    echo "    chaos iteration ${i}/${CHAOS_STRESS} (generational)"
    cargo test -q -p dphpo-core --test journal_chaos
    echo "    chaos iteration ${i}/${CHAOS_STRESS} (steady-state)"
    cargo test -q -p dphpo-core --test steady_state_identity
done

echo "==> [7/9] telemetry bit-identity (observed == unobserved artifacts)"
cargo test -q -p dphpo-core --test telemetry_identity
echo "    campaign observatory identity (status/report/counters across kill+resume)"
cargo test -q -p dphpo-core --test campaign_report_identity

CHAOS_SEEDS="${CHAOS_SEEDS:-2}"
echo "==> [8/9] corruption & salvage matrix (CHAOS_SEEDS=${CHAOS_SEEDS})"
CHAOS_SEEDS="${CHAOS_SEEDS}" cargo test -q -p dphpo-core --test corruption_matrix
echo "    frame-format property tests"
cargo test -q -p dphpo-core --test journal_frames
echo "    v1 fixture compatibility"
cargo test -q -p dphpo-core --test journal_v1_compat

echo "==> [9/9] profile identity (profiling on/off, kill+resume, both modes)"
cargo test -q -p dphpo-core --test profile_identity
echo "    profiler property tests"
cargo test -q -p dphpo-core --test profile_props

if [[ "${BENCH_CHECK:-0}" == "1" ]]; then
    echo "==> [opt-in] hot-path bench regression check (BENCH_CHECK=1)"
    scripts/bench_baseline.sh --check
    echo "==> [opt-in] perf-history regression check (BENCH_CHECK=1)"
    scripts/perf_history.sh
fi

echo "verify: OK"
