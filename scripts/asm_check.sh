#!/usr/bin/env bash
# Pin the vectorization property of the hot dense kernels (DESIGN.md §10):
# disassemble the release `hotpath` binary and require that each kernel
# family's machine code
#
#   1. contains packed-double arithmetic on wide (ymm/zmm) registers —
#      i.e. the const-width column tiles really do autovectorize under
#      `-C target-cpu=native`, and
#   2. contains NO fused multiply-add — the bit-identity contract keeps
#      multiplies and adds as separate roundings, so a `vfmadd*`
#      appearing in a matmul kernel means the contract was broken.
#
# Checked families (simd.rs): mm_tile (plain matmul; mm_nt packs into the
# same tiles), mm_tn_tile (transposed-A matmul), tanh_block (bulk
# activation).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "$(uname -m)" != "x86_64" ]]; then
    echo "asm check: SKIP (x86_64-only check, this is $(uname -m))"
    exit 0
fi
command -v objdump >/dev/null || { echo "asm check: objdump not found" >&2; exit 1; }

bin="target/release/hotpath"
if [[ ! -x "${bin}" ]]; then
    cargo build --release -p dphpo-bench --bin hotpath
fi

asm="$(mktemp /tmp/asm_check.XXXXXX.txt)"
trap 'rm -f "${asm}" "${asm}.body"' EXIT
objdump -d --no-show-raw-insn "${bin}" > "${asm}"

fail=0
check_family() {
    local name="$1" forbid_fma="$2"
    # Slice out every monomorphized body whose mangled symbol contains the
    # family name (tiles are const-generic, so there are many per family).
    awk -v pat="${name}" '
        /^[0-9a-f]+ <.*>:$/ { inside = ($0 ~ pat) }
        inside { print }
    ' "${asm}" > "${asm}.body"
    if [[ ! -s "${asm}.body" ]]; then
        echo "asm check: FAIL ${name}: symbol not found (inlined away or renamed?)" >&2
        fail=1
        return
    fi
    local wide fma
    wide="$(grep -cE 'v(mul|add|sub)pd.*%(y|z)mm' "${asm}.body" || true)"
    fma="$(grep -cE 'vfmadd[0-9]*(pd|sd)' "${asm}.body" || true)"
    if [[ "${wide}" -lt 8 ]]; then
        echo "asm check: FAIL ${name}: only ${wide} packed ymm/zmm mul/add/sub (want >= 8)" >&2
        fail=1
    elif [[ "${forbid_fma}" == "no-fma" && "${fma}" -gt 0 ]]; then
        echo "asm check: FAIL ${name}: ${fma} fused multiply-adds — bit-identity contract broken" >&2
        fail=1
    else
        echo "asm check: ok ${name}: ${wide} packed wide ops, ${fma} fma"
    fi
}

check_family "mm_tile" no-fma
check_family "mm_tn_tile" no-fma
check_family "tanh_block" fma-ok

if [[ ${fail} -ne 0 ]]; then
    echo "asm check: FAILED" >&2
    exit 1
fi
echo "asm check: OK"
