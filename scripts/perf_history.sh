#!/usr/bin/env bash
# Perf-history regression gate (BENCH_history.jsonl at the repo root).
#
#   perf_history.sh             diff the checked-in snapshots
#                               (BENCH_hotpath.json, BENCH_obs.json)
#                               against the history trajectory and FAIL if
#                               any timing row regressed >15% over its
#                               history median
#   perf_history.sh --append    same diff, then append the snapshots to
#                               BENCH_history.jsonl (one measured point per
#                               refresh; run after bench_baseline.sh and
#                               obs_overhead so the trajectory grows)
#
# The no-argument form is wired into scripts/verify.sh behind BENCH_CHECK=1,
# next to bench_baseline.sh --check: timing gates on a shared box are noisy,
# so both are opt-in rather than part of the default tier-1 run.
set -euo pipefail
cd "$(dirname "$0")/.."

case "${1:-}" in
--append)
    cargo run --release -p dphpo-bench --bin perf_report -- --check --append
    ;;
"")
    cargo run --release -p dphpo-bench --bin perf_report -- --check
    ;;
*)
    echo "usage: perf_history.sh [--append]" >&2
    exit 2
    ;;
esac
