//! Offline stand-in for `parking_lot` (see `vendor/rand` for why the
//! workspace vendors its dependencies). Wraps `std::sync` primitives with
//! parking_lot's poison-free API: `lock()` returns the guard directly.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex: `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (panicking threads do not poison it).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
