//! Offline stand-in for `criterion` (see `vendor/rand` for why the
//! workspace vendors its dependencies).
//!
//! Implements the benchmark-group API subset the workspace's benches use
//! and reports mean/min wall-clock time per iteration to stdout. No
//! statistical analysis, plots, or baselines — just honest timing loops
//! with a warm-up phase and sized samples. When invoked by `cargo test`
//! (which passes `--test` to `harness = false` bench binaries) each
//! benchmark runs a single iteration so the test suite stays fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; the stand-in times each input
/// individually so the variants behave identically.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier of a parameterized benchmark (`name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Benchmark named by the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level driver; hand out groups via [`Criterion::benchmark_group`].
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Only full-measurement runs
        // should loop for the configured measurement time.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.into().id);
    }

    /// Run one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (all reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, running it repeatedly to fill the measurement budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns) as u64).max(1);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let warm_start = Instant::now();
        let mut est = Duration::ZERO;
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            est += t0.elapsed();
            warm_iters += 1;
        }
        let est_ns = (est.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns) as u64).max(1);
        for _ in 0..self.sample_size {
            let mut timed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                timed += t0.elapsed();
            }
            self.samples_ns
                .push(timed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.test_mode {
            return;
        }
        let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len().max(1) as f64;
        let min = self.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("{label:<48} time: mean {:>12} min {:>12}", fmt_ns(mean), fmt_ns(min));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collect benchmark functions into a runner callable from `main`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_criterion() -> Criterion {
        Criterion { test_mode: false }
    }

    #[test]
    fn iter_collects_samples() {
        let mut c = quick_criterion();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(5));
        group.warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut c = quick_criterion();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(4));
        group.warm_up_time(Duration::from_millis(1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("sort", 100).id, "sort/100");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
