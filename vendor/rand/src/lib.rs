//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment for this workspace has no network access and no
//! crates.io cache, so external dependencies are vendored as minimal
//! implementations of exactly the API surface the workspace uses:
//!
//! - [`Rng::random_range`] over half-open and inclusive integer/float ranges
//! - [`SeedableRng::seed_from_u64`]
//! - [`rngs::StdRng`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a high-quality,
//! fast, deterministic PRNG. Streams differ from upstream `rand`'s ChaCha12
//! `StdRng`, which is fine for this workspace: every test and experiment
//! only relies on *per-seed determinism*, never on specific draw values.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types describing a samplable range of values, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of the naive approach is avoided without a loop in
                // the common case.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start.wrapping_add((m >> 64) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )*};
}

int_range_impl!(usize, u64, u32, i64, i32);

/// User-facing random-value interface (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Uniform draw from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(-1.0..1.0)`.
    #[inline]
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniform value on `[0, 1)` for `f64` (the only `random()` use here).
    #[inline]
    fn random(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Snapshot the full generator state (the four xoshiro256++ words).
        ///
        /// Together with [`StdRng::from_state`] this lets a caller
        /// checkpoint a random stream mid-flight and later resume it
        /// bit-identically — the basis of the experiment journal's
        /// determinism contract.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot. The
        /// restored generator produces exactly the draw sequence the
        /// snapshotted one would have produced.
        ///
        /// An all-zero state is invalid for xoshiro256++ (it is a fixed
        /// point); such a snapshot is rejected by panicking, since it can
        /// only arise from a corrupted checkpoint.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "all-zero xoshiro256++ state");
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: usize = rng.random_range(0..17);
            assert!(u < 17);
            let v: usize = rng.random_range(0..=3);
            assert!(v <= 3);
        }
    }

    #[test]
    fn uniform_f64_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..37 {
            rng.next_u64();
        }
        let snapshot = rng.state();
        let expected: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(snapshot);
        let actual: Vec<u64> = (0..64).map(|_| resumed.next_u64()).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: crate::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = draw(&mut rng);
    }
}
