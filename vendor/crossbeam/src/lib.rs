//! Offline stand-in for `crossbeam` (see `vendor/rand` for why the
//! workspace vendors its dependencies). Provides `crossbeam::channel`'s
//! unbounded MPMC channel — cloneable senders *and* receivers, blocking
//! `recv`, and `recv_timeout` — on top of `std::sync` primitives.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloning adds a producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloning adds a consumer (MPMC, work-queue style).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`]: all senders dropped and the
    /// queue is empty.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue a value; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Block until a value arrives, all senders disconnect, or the
        /// timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) =
                    self.shared.ready.wait_timeout(state, deadline - now).unwrap();
                state = guard;
                if res.timed_out() && state.items.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(v) = state.items.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_when_empty() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<usize>();
            let n = 100;
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut got = 0usize;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    });
                }
                for i in 0..n {
                    tx.send(i).unwrap();
                }
                drop(tx);
            });
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
