//! Offline stand-in for `proptest` (see `vendor/rand` for why the
//! workspace vendors its dependencies).
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, numeric-range and tuple strategies,
//! `prop::collection::vec`, a character-class string strategy, the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Cases are generated from a
//! deterministic seed; there is no shrinking — a failing case panics with
//! the ordinary assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test case generator.
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
}

impl TestRunner {
    /// Build a runner; the RNG seed is fixed so failures reproduce.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { rng: StdRng::seed_from_u64(0x70726f70_74657374), cases: config.cases }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The case RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut StdRng) -> i64 {
        rng.random_range(self.clone())
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// String strategy from a simplified regex: supports `[<lo>-<hi>]{a,b}`
/// character-class repetitions; anything else falls back to printable
/// ASCII of length 0–16. Covers the workspace's `"[ -~]{0,40}"` pattern.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (lo, hi, min_len, max_len) = parse_class_repeat(self).unwrap_or((' ', '~', 0, 16));
        let len = rng.random_range(min_len..=max_len);
        (0..len)
            .map(|_| char::from_u32(rng.random_range(lo as u32..=hi as u32)).unwrap_or('?'))
            .collect()
    }
}

fn parse_class_repeat(pattern: &str) -> Option<(char, char, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let lo = chars.next()?;
    if chars.next()? != '-' {
        return None;
    }
    let hi = chars.next()?;
    if chars.next().is_some() {
        return None;
    }
    let reps = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (a, b) = reps.split_once(',')?;
    Some((lo, hi, a.trim().parse().ok()?, b.trim().parse().ok()?))
}

pub mod collection {
    use super::{Strategy, StdRng};
    use rand::Rng;

    /// Length specification for [`fn@vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::prop` namespace (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        collection, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy,
        TestRunner,
    };
}

/// Assert inside a property test (panics — no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config);
                for _case in 0..runner.cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_lengths_respect_range() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        let strat = collection::vec(0.0f64..1.0, 3..7);
        for _ in 0..100 {
            let v = strat.generate(runner.rng());
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn string_pattern_class() {
        let mut runner = TestRunner::new(ProptestConfig::default());
        let s = "[ -~]{0,40}".generate(runner.rng());
        assert!(s.len() <= 40);
        assert!(s.chars().all(|c| (' '..='~').contains(&c)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_in_bounds(x in 0.0f64..1.0, n in 1usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0.0f64..1.0, 0.0f64..1.0),
            doubled in prop::collection::vec(0.0f64..1.0, 2).prop_map(|v| v.len() * 2)
        ) {
            prop_assert!(pair.0 < 1.0 && pair.1 < 1.0);
            prop_assert_eq!(doubled, 4);
        }
    }
}
