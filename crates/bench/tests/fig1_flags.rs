//! Flag-registry tests for the artifact binaries: `fig1 --list-flags` is
//! the contract `scripts/verify.sh` greps the docs against, so the
//! registry must stay complete, and an unknown flag must be rejected
//! loudly (exit 2 with the known-flag list) instead of silently running a
//! full campaign.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    Command::new(bin).args(args).output().expect("spawn binary")
}

#[test]
fn fig1_list_flags_includes_every_registered_flag() {
    let out = run(env!("CARGO_BIN_EXE_fig1"), &["--list-flags"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let listed: Vec<&str> = stdout.lines().collect();
    for flag in [
        "--smoke",
        "--steady-state",
        "--compare-modes",
        "--resume",
        "--trace",
        "--metrics",
        "--status",
        "--report",
        "--profile",
        "--verify-journal",
        "--compact",
        "--list-flags",
    ] {
        assert!(listed.contains(&flag), "--list-flags is missing {flag}: {listed:?}");
    }
}

#[test]
fn fig1_rejects_unknown_flags_before_running_anything() {
    let out = run(env!("CARGO_BIN_EXE_fig1"), &["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown flag `--no-such-flag`"), "{stderr}");
    // The rejection message doubles as usage: every known flag is listed,
    // including the profiler entry point.
    assert!(stderr.contains("--profile"), "usage must list --profile: {stderr}");
}

#[test]
fn fig1_rejects_unknown_flags_even_next_to_known_ones() {
    let out = run(env!("CARGO_BIN_EXE_fig1"), &["--smoke", "--porfile", "dir"]);
    assert_eq!(out.status.code(), Some(2), "typo'd --profile must exit 2");
}

#[test]
fn perf_report_rejects_unknown_flags() {
    let out = run(env!("CARGO_BIN_EXE_perf_report"), &["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown flag"), "{stderr}");
}
