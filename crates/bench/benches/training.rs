//! Criterion microbench of the DNNP trainer: cost of a full training step
//! (forward + forces + double-backward + Adam) at small/large cutoffs, and
//! of inference (energy + forces) — the quantities the hpc cost model
//! abstracts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dphpo_dnnp::{train, DnnpModel, TrainConfig};
use dphpo_md::generate::{generate_dataset, GenConfig};
use dphpo_md::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn data() -> (Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(6);
    let gen = GenConfig { n_frames: 24, ..GenConfig::reduced() };
    let mut ds = generate_dataset(&gen, &mut rng);
    ds.add_label_noise(0.0005, 0.03, &mut rng);
    ds.split(0.25, &mut rng)
}

fn config(rcut: f64, steps: usize) -> TrainConfig {
    TrainConfig {
        rcut,
        rcut_smth: 2.2,
        start_lr: 0.008,
        stop_lr: 1e-4,
        num_steps: steps,
        disp_freq: steps,
        val_max_frames: 2,
        ..TrainConfig::default()
    }
}

fn bench_training(c: &mut Criterion) {
    let (train_ds, val_ds) = data();
    let mut group = c.benchmark_group("dnnp_training");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // 10 full optimisation steps (6-frame batches with force matching).
    for rcut in [6.0f64, 11.0] {
        group.bench_with_input(
            BenchmarkId::new("ten_steps", rcut as u32),
            &rcut,
            |b, &rcut| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    train(&config(rcut, 10), &train_ds, &val_ds, &mut rng).unwrap()
                })
            },
        );
    }

    // Steady-state step cost: enough steps that the arena tape and merged
    // batch caches are warm and the per-step figure dominates setup.
    group.bench_function("hundred_steps_rcut6", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            train(&config(6.0, 100), &train_ds, &val_ds, &mut rng).unwrap()
        })
    });

    // Inference: energy + analytic forces for one frame.
    let mut rng = StdRng::seed_from_u64(8);
    let model = DnnpModel::new(config(9.0, 10), &train_ds, &mut rng).unwrap();
    let frame = &val_ds.frames[0];
    group.bench_function("predict_energy_forces", |b| {
        b.iter(|| model.predict(std::hint::black_box(&frame.positions)))
    });
    let cache = model.build_cache(&frame.positions);
    group.bench_function("predict_cached", |b| {
        b.iter(|| model.predict_cached(std::hint::black_box(&cache)))
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
