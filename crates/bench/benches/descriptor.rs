//! Criterion microbench of the descriptor substrate: neighbor-pair
//! enumeration, switching-function evaluation, and frame-cache builds at
//! the paper's three rcut regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dphpo_dnnp::{switching_scalar, DescriptorStats, FrameCache};
use dphpo_md::generate::{generate_dataset, GenConfig};
use dphpo_md::pairs_brute_force;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_descriptor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let dataset = generate_dataset(&GenConfig::reduced(), &mut rng);
    let species_idx: Vec<usize> = dataset.species.iter().map(|s| s.index()).collect();
    let frame = &dataset.frames[0];

    let mut group = c.benchmark_group("descriptor");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for rcut in [6.0f64, 9.0, 12.0] {
        group.bench_with_input(BenchmarkId::new("pair_list", rcut as u32), &rcut, |b, &rcut| {
            b.iter(|| pairs_brute_force(&dataset.cell, &frame.positions, rcut))
        });
        let frames: Vec<&[[f64; 3]]> = vec![&frame.positions];
        let stats =
            DescriptorStats::compute(&dataset.cell, &species_idx, &frames, rcut, 2.0, 3);
        group.bench_with_input(BenchmarkId::new("frame_cache", rcut as u32), &rcut, |b, &rcut| {
            b.iter(|| {
                FrameCache::build(
                    &dataset.cell,
                    &species_idx,
                    &frame.positions,
                    rcut,
                    2.0,
                    &stats,
                    3,
                )
            })
        });
    }

    group.bench_function("switching_scalar_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                acc += switching_scalar(0.5 + i as f64 * 0.012, 2.0, 9.0);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_descriptor);
criterion_main!(benches);
