//! Criterion microbench of the EA reproduction-pipeline operators
//! (Listing 1): offspring creation, crowding distance, truncation.

use criterion::{criterion_group, criterion_main, Criterion};
use dphpo_evo::ops::{create_offspring, random_population, truncation_selection};
use dphpo_evo::{assign_rank_and_crowding, Fitness, Individual};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn evaluated_population(n: usize, seed: u64) -> Vec<Individual> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ranges = dphpo_core::DeepMDRepresentation::init_ranges();
    let mut pop = random_population(n, &ranges, &mut rng);
    for ind in &mut pop {
        ind.fitness = Some(Fitness::new(vec![
            rng.random_range(0.0..0.01),
            rng.random_range(0.0..0.1),
        ]));
    }
    assign_rank_and_crowding(&mut pop);
    pop
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_operators");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    let parents = evaluated_population(100, 1);
    let std = dphpo_core::DeepMDRepresentation::initial_std();
    let bounds = dphpo_core::DeepMDRepresentation::bounds();

    group.bench_function("create_offspring_100", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| create_offspring(&parents, 100, &std, &bounds, &mut rng))
    });

    group.bench_function("rank_and_crowding_200", |b| {
        b.iter_batched(
            || evaluated_population(200, 3),
            |mut pool| assign_rank_and_crowding(&mut pool),
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("truncation_selection_200_to_100", |b| {
        b.iter_batched(
            || evaluated_population(200, 4),
            |pool| truncation_selection(pool, 100),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
