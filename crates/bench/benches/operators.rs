//! Criterion microbench of the EA reproduction-pipeline operators
//! (Listing 1): offspring creation, crowding distance, truncation — plus
//! the autograd tensor kernels on the DNNP training hot path (blocked and
//! transposed matmuls, fused affine layers).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dphpo_autograd::{Tape, Tensor, Unary};
use dphpo_evo::ops::{create_offspring, random_population, truncation_selection};
use dphpo_evo::{assign_rank_and_crowding, Fitness, Individual};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn evaluated_population(n: usize, seed: u64) -> Vec<Individual> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ranges = dphpo_core::DeepMDRepresentation::init_ranges();
    let mut pop = random_population(n, &ranges, &mut rng);
    for ind in &mut pop {
        ind.fitness = Some(Fitness::new(vec![
            rng.random_range(0.0..0.01),
            rng.random_range(0.0..0.1),
        ]));
    }
    assign_rank_and_crowding(&mut pop);
    pop
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_operators");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    let parents = evaluated_population(100, 1);
    let std = dphpo_core::DeepMDRepresentation::initial_std();
    let bounds = dphpo_core::DeepMDRepresentation::bounds();

    group.bench_function("create_offspring_100", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| create_offspring(&parents, 100, &std, &bounds, &mut rng))
    });

    group.bench_function("rank_and_crowding_200", |b| {
        b.iter_batched(
            || evaluated_population(200, 3),
            |mut pool| assign_rank_and_crowding(&mut pool),
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("truncation_selection_200_to_100", |b| {
        b.iter_batched(
            || evaluated_population(200, 4),
            |pool| truncation_selection(pool, 100),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    Tensor::matrix(rows, cols, (0..rows * cols).map(|_| rng.random_range(-1.0..1.0)).collect())
}

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_kernels");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    let mut rng = StdRng::seed_from_u64(5);
    let a = random_matrix(64, 64, &mut rng);
    let b = random_matrix(64, 64, &mut rng);
    group.bench_function("matmul_64x64", |bch| bch.iter(|| black_box(&a).matmul(black_box(&b))));
    group.bench_function("matmul_nt_64x64", |bch| {
        bch.iter(|| black_box(&a).matmul_nt(black_box(&b)))
    });
    group.bench_function("matmul_tn_64x64", |bch| {
        bch.iter(|| black_box(&a).matmul_tn(black_box(&b)))
    });
    group.bench_function("matmul_via_transpose_64x64", |bch| {
        bch.iter(|| black_box(&a).matmul(&black_box(&b).transpose()))
    });

    // Fused affine layer (forward + weight gradient) against the unfused
    // matmul/add_bias/tanh spelling, on a reusable arena tape.
    let x0 = random_matrix(256, 32, &mut rng);
    let w0 = random_matrix(32, 32, &mut rng);
    let b0 = Tensor::vector(&(0..32).map(|_| rng.random_range(-0.5..0.5)).collect::<Vec<_>>());
    let tape = Tape::new();
    group.bench_function("affine_fused_256x32", |bch| {
        bch.iter(|| {
            tape.reset();
            let x = tape.constant(x0.clone());
            let w = tape.constant(w0.clone());
            let b = tape.constant(b0.clone());
            let h = tape.affine(x, w, b, Some(Unary::Tanh));
            let g = tape.grad(tape.sum_all(h), &[w])[0];
            tape.item(tape.sum_all(g))
        })
    });
    group.bench_function("affine_unfused_256x32", |bch| {
        bch.iter(|| {
            tape.reset();
            let x = tape.constant(x0.clone());
            let w = tape.constant(w0.clone());
            let b = tape.constant(b0.clone());
            let h = tape.tanh(tape.add_bias(tape.matmul(x, w), b));
            let g = tape.grad(tape.sum_all(h), &[w])[0];
            tape.item(tape.sum_all(g))
        })
    });
    group.finish();
}

/// Best-of-samples wall time for `reps` calls of `f`, after warm-up.
fn best_time(mut f: impl FnMut(), reps: usize) -> f64 {
    for _ in 0..20 {
        f();
    }
    (0..7)
        .map(|_| {
            let start = std::time::Instant::now();
            for _ in 0..reps {
                f();
            }
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Guard on the packed-panel `matmul_nt`: it must stay in the same cost
/// class as plain `matmul` at 64×64 (the pre-panel kernel was ~1.8× and
/// ISSUE 6 asks for ~1.2×). Asserted at 1.6× to leave headroom for timer
/// noise on a shared single-core box; BENCH_hotpath.json records the real
/// ratio. Runs as part of `cargo bench` so a layout regression fails the
/// bench suite loudly instead of silently shifting the recorded numbers.
fn assert_matmul_nt_ratio(_c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let a = random_matrix(64, 64, &mut rng);
    let b = random_matrix(64, 64, &mut rng);
    let mm = best_time(
        || {
            black_box(black_box(&a).matmul(black_box(&b)));
        },
        200,
    );
    let nt = best_time(
        || {
            black_box(black_box(&a).matmul_nt(black_box(&b)));
        },
        200,
    );
    let ratio = nt / mm;
    println!("matmul_nt/matmul ratio at 64x64: {ratio:.3} (nt {nt:.6}s, mm {mm:.6}s per 200 reps)");
    assert!(
        ratio < 1.6,
        "matmul_nt is {ratio:.2}x the cost of matmul at 64x64 (expected ~1.2x, cap 1.6x): \
         the transpose pack in simd::mm_nt has likely regressed"
    );
}

criterion_group!(benches, bench_operators, bench_tensor_kernels, assert_matmul_nt_ratio);
criterion_main!(benches);
