//! Criterion microbench backing §2.1.4: rank-based non-dominated sorting
//! versus Deb's fast non-dominated sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dphpo_evo::{fast_nondominated_sort, rank_ordinal_sort, Fitness};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fitnesses(n: usize, seed: u64) -> Vec<Fitness> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Fitness::new(vec![rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)]))
        .collect()
}

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("nondominated_sort");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    // 200 = the paper's merged parents+offspring pool (2 × 100).
    for n in [200usize, 800, 3200] {
        let fits = fitnesses(n, 7);
        let refs: Vec<&Fitness> = fits.iter().collect();
        group.bench_with_input(BenchmarkId::new("deb_fast", n), &refs, |b, refs| {
            b.iter(|| fast_nondominated_sort(std::hint::black_box(refs)))
        });
        group.bench_with_input(BenchmarkId::new("rank_ordinal", n), &refs, |b, refs| {
            b.iter(|| rank_ordinal_sort(std::hint::black_box(refs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sorts);
criterion_main!(benches);
