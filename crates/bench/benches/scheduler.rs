//! Criterion microbench of the distributed-evaluation simulator: batch
//! dispatch overhead with and without fault injection, across pool widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dphpo_hpc::{run_batch, EvalOutcome, FaultInjector, PoolConfig};

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(900));
    group.warm_up_time(std::time::Duration::from_millis(200));

    let inputs: Vec<u64> = (0..100).collect();
    for workers in [4usize, 16, 100] {
        group.bench_with_input(
            BenchmarkId::new("dispatch_100_tasks", workers),
            &workers,
            |b, &workers| {
                let config = PoolConfig { n_workers: workers, ..PoolConfig::default() };
                b.iter(|| {
                    run_batch(
                        &inputs,
                        |_, &x| EvalOutcome { value: Ok(x * 2), minutes: 70.0 },
                        &config,
                        &FaultInjector::none(),
                    )
                })
            },
        );
    }

    group.bench_function("dispatch_with_faults_and_retries", |b| {
        let config = PoolConfig { n_workers: 16, nanny: true, max_attempts: 10, ..PoolConfig::default() };
        b.iter(|| {
            let faults = FaultInjector::new(0.05, 9);
            run_batch(
                &inputs,
                |_, &x| EvalOutcome { value: Ok(x), minutes: 70.0 },
                &config,
                &faults,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
