//! # dphpo-bench
//!
//! Benchmark and reproduction harness: one binary per paper artifact
//! (Table 1–3, Fig. 1–3, the speedup and sort-speedup claims) plus
//! criterion microbenchmarks of the substrate layers. See DESIGN.md §4 for
//! the experiment index.

pub mod harness;
pub mod history;
