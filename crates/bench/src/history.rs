//! Perf-history observatory: a schema-versioned `BENCH_history.jsonl`
//! trajectory and a regression differ over it.
//!
//! Every benchmark snapshot this repo checks in (`BENCH_hotpath.json`,
//! `BENCH_obs.json`, future schemas) is a JSON document with a `schema`
//! tag. This module flattens any such document into dotted-key numeric
//! rows (`training.0.ns_per_step`, `kernels.matmul_64x64_ns`, …), appends
//! them as one JSONL line per snapshot to the history file, and diffs a
//! fresh snapshot against the checked-in trajectory: per-row delta against
//! the history median, a MAD jitter bar, and a verdict that generalizes
//! `bench_baseline.sh --check`'s 15% timing gate to every schema at once.
//!
//! Rows are classified by key shape: segments ending in `_ns` (or
//! `ns_per_step` style) are timings and gate at 15% above the history
//! median; everything else is informational. The `perf_report` binary
//! drives this; `scripts/perf_history.sh` wires it behind `BENCH_CHECK=1`.

use std::collections::BTreeMap;
use std::path::Path;

use dphpo_dnnp::json::Json;

/// Schema tag of each `BENCH_history.jsonl` line.
pub const HISTORY_SCHEMA: &str = "dphpo-bench-history-v1";

/// Timing rows regress when they exceed the history median by this factor
/// (the same 15% gate `bench_baseline.sh --check` applies to the hotpath).
pub const REGRESSION_FACTOR: f64 = 1.15;

/// One appended snapshot: its kind (schema family), the exact snapshot
/// schema it came from, and the flattened numeric rows.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryEntry {
    /// Schema family (`hotpath`, `obs`, …) — snapshots diff only against
    /// history of the same kind.
    pub kind: String,
    /// The snapshot's full schema tag (e.g. `dphpo-obs-v3`).
    pub snapshot_schema: String,
    /// Dotted-key numeric rows flattened from the snapshot document.
    pub rows: BTreeMap<String, f64>,
}

/// Schema family of a snapshot schema tag: strip the `dphpo-` prefix and a
/// trailing `-vN` version. `dphpo-hotpath-v2` → `hotpath`.
pub fn kind_of(schema: &str) -> String {
    let s = schema.strip_prefix("dphpo-").unwrap_or(schema);
    match s.rfind("-v") {
        Some(i) if s[i + 2..].chars().all(|c| c.is_ascii_digit()) && i + 2 < s.len() => {
            s[..i].to_string()
        }
        _ => s.to_string(),
    }
}

/// Flatten every numeric leaf of a JSON document into dotted-key rows;
/// array elements get their index as a segment. The `schema` tag itself is
/// not a row.
pub fn flatten(doc: &Json) -> BTreeMap<String, f64> {
    fn walk(prefix: &str, v: &Json, out: &mut BTreeMap<String, f64>) {
        match v {
            Json::Number(n) => {
                out.insert(prefix.to_string(), *n);
            }
            Json::Object(pairs) => {
                for (k, v) in pairs {
                    if prefix.is_empty() && k == "schema" {
                        continue;
                    }
                    let key = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    walk(&key, v, out);
                }
            }
            Json::Array(items) => {
                for (i, v) in items.iter().enumerate() {
                    walk(&format!("{prefix}.{i}"), v, out);
                }
            }
            _ => {}
        }
    }
    let mut out = BTreeMap::new();
    walk("", doc, &mut out);
    out
}

/// Build a history entry from a benchmark snapshot document (which must
/// carry a string `schema` tag).
pub fn entry_from_snapshot(doc: &Json) -> Result<HistoryEntry, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "snapshot has no string 'schema' tag".to_string())?
        .to_string();
    Ok(HistoryEntry { kind: kind_of(&schema), snapshot_schema: schema, rows: flatten(doc) })
}

/// Render one entry as its (compact, single-line) JSONL record.
pub fn entry_line(entry: &HistoryEntry) -> String {
    let rows: Vec<(&str, Json)> =
        entry.rows.iter().map(|(k, v)| (k.as_str(), Json::Number(*v))).collect();
    Json::object(vec![
        ("schema", Json::String(HISTORY_SCHEMA.into())),
        ("kind", Json::String(entry.kind.clone())),
        ("snapshot_schema", Json::String(entry.snapshot_schema.clone())),
        ("rows", Json::object(rows)),
    ])
    .to_compact()
}

/// Parse one history line back into an entry. Lines with a different
/// history schema are an error (the file is versioned as a whole).
pub fn parse_line(line: &str) -> Result<HistoryEntry, String> {
    let doc = Json::parse(line).map_err(|e| format!("{e:?}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or_default();
    if schema != HISTORY_SCHEMA {
        return Err(format!("unexpected history schema '{schema}'"));
    }
    let get_str = |k: &str| {
        doc.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing '{k}'"))
    };
    let mut rows = BTreeMap::new();
    if let Some(Json::Object(pairs)) = doc.get("rows") {
        for (k, v) in pairs {
            if let Some(n) = v.as_f64() {
                rows.insert(k.clone(), n);
            }
        }
    }
    Ok(HistoryEntry { kind: get_str("kind")?, snapshot_schema: get_str("snapshot_schema")?, rows })
}

/// Load every entry of a history file (missing file → empty trajectory).
pub fn load(path: &Path) -> Result<Vec<HistoryEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| parse_line(l).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1)))
        .collect()
}

/// Append one entry to the history file (created if missing).
pub fn append(path: &Path, entry: &HistoryEntry) -> Result<(), String> {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    writeln!(f, "{}", entry_line(entry)).map_err(|e| format!("append {}: {e}", path.display()))
}

/// A row's regression verdict against the history trajectory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Timing row within the gate.
    Ok,
    /// Timing row more than [`REGRESSION_FACTOR`] above the history median.
    Regression,
    /// Row with no history to compare against.
    New,
    /// Non-timing row (counts, ratios) — reported, never gated.
    Info,
}

impl Verdict {
    /// Fixed-width label for the report table.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regression => "REGRESSION",
            Verdict::New => "new",
            Verdict::Info => "info",
        }
    }
}

/// One diffed row: fresh value, history median/MAD, delta, verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct RowDiff {
    /// Dotted row key.
    pub key: String,
    /// The fresh snapshot's value.
    pub value: f64,
    /// Median of the row's history series (`None` without history).
    pub median: Option<f64>,
    /// Median absolute deviation of the series, as a percent of the median
    /// — the jitter bar's magnitude.
    pub mad_pct: f64,
    /// Delta of the fresh value against the median, percent.
    pub delta_pct: f64,
    /// The gate's verdict.
    pub verdict: Verdict,
}

/// Timing rows gate; everything else is informational. A key is a timing
/// when any dotted segment is nanosecond-shaped: `*_ns`, `ns_*`, or an
/// interior `_ns_` (covers `ns_per_step`, `matmul_64x64_ns`,
/// `noop_block_ns_per_step`).
pub fn is_timing(key: &str) -> bool {
    key.split('.').any(|seg| {
        seg.ends_with("_ns") || seg.starts_with("ns_") || seg.contains("_ns_") || seg == "ns"
    })
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Diff a fresh snapshot against the history trajectory of the same kind.
/// Rows sort by key; the binary prints them in order and fails `--check`
/// when any verdict is [`Verdict::Regression`].
pub fn diff(history: &[HistoryEntry], fresh: &HistoryEntry) -> Vec<RowDiff> {
    let mut series: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for entry in history.iter().filter(|e| e.kind == fresh.kind) {
        for (k, v) in &entry.rows {
            series.entry(k).or_default().push(*v);
        }
    }
    fresh
        .rows
        .iter()
        .map(|(key, &value)| {
            let timing = is_timing(key);
            match series.get(key.as_str()) {
                Some(values) if !values.is_empty() => {
                    let mut sorted = values.clone();
                    sorted.sort_by(f64::total_cmp);
                    let med = median(&sorted);
                    let mut devs: Vec<f64> = sorted.iter().map(|v| (v - med).abs()).collect();
                    devs.sort_by(f64::total_cmp);
                    let mad = median(&devs);
                    let mad_pct = if med != 0.0 { mad / med.abs() * 100.0 } else { 0.0 };
                    let delta_pct =
                        if med != 0.0 { (value - med) / med.abs() * 100.0 } else { 0.0 };
                    let verdict = if !timing {
                        Verdict::Info
                    } else if value > med * REGRESSION_FACTOR {
                        Verdict::Regression
                    } else {
                        Verdict::Ok
                    };
                    RowDiff { key: key.clone(), value, median: Some(med), mad_pct, delta_pct, verdict }
                }
                _ => RowDiff {
                    key: key.clone(),
                    value,
                    median: None,
                    mad_pct: 0.0,
                    delta_pct: 0.0,
                    verdict: if timing { Verdict::New } else { Verdict::Info },
                },
            }
        })
        .collect()
}

/// ASCII jitter bar: one `#` per percent of MAD-over-median, capped at 10.
fn jitter_bar(mad_pct: f64) -> String {
    "#".repeat((mad_pct.round() as usize).min(10))
}

/// Render a diff as the perf report table (one section per snapshot kind).
pub fn render_diff(fresh: &HistoryEntry, rows: &[RowDiff], history_len: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## {} ({}, {} history entr{})",
        fresh.kind,
        fresh.snapshot_schema,
        history_len,
        if history_len == 1 { "y" } else { "ies" }
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "| row | current | median | delta | jitter (MAD) | verdict |");
    let _ = writeln!(out, "|---|---:|---:|---:|---|---|");
    for r in rows {
        let median = r.median.map_or("-".to_string(), |m| format!("{m:.2}"));
        let delta = if r.median.is_some() { format!("{:+.1}%", r.delta_pct) } else { "-".into() };
        let jitter = if r.median.is_some() {
            format!("{:.1}% {}", r.mad_pct, jitter_bar(r.mad_pct))
        } else {
            "-".into()
        };
        let _ = writeln!(
            out,
            "| {} | {:.2} | {} | {} | {} | {} |",
            r.key,
            r.value,
            median,
            delta,
            jitter,
            r.verdict.label()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(schema: &str, ns: f64) -> Json {
        Json::object(vec![
            ("schema", Json::String(schema.into())),
            (
                "training",
                Json::Array(vec![Json::object(vec![
                    ("ns_per_step", Json::Number(ns)),
                    ("rcut", Json::Number(11.0)),
                ])]),
            ),
            ("quick", Json::Bool(false)),
            ("kernels", Json::object(vec![("matmul_64x64_ns", Json::Number(ns / 10.0))])),
        ])
    }

    #[test]
    fn kind_strips_prefix_and_version() {
        assert_eq!(kind_of("dphpo-hotpath-v2"), "hotpath");
        assert_eq!(kind_of("dphpo-obs-v3"), "obs");
        assert_eq!(kind_of("dphpo-serve-v1"), "serve");
        assert_eq!(kind_of("custom"), "custom");
        assert_eq!(kind_of("dphpo-x-vNext"), "x-vNext");
    }

    #[test]
    fn flatten_produces_dotted_numeric_rows_only() {
        let rows = flatten(&snapshot("dphpo-hotpath-v2", 100.0));
        assert_eq!(rows.get("training.0.ns_per_step"), Some(&100.0));
        assert_eq!(rows.get("training.0.rcut"), Some(&11.0));
        assert_eq!(rows.get("kernels.matmul_64x64_ns"), Some(&10.0));
        assert!(!rows.contains_key("schema"));
        assert!(!rows.contains_key("quick"));
    }

    #[test]
    fn entry_lines_round_trip() {
        let entry = entry_from_snapshot(&snapshot("dphpo-hotpath-v2", 123.5)).unwrap();
        assert_eq!(entry.kind, "hotpath");
        let line = entry_line(&entry);
        assert!(!line.contains('\n'));
        assert_eq!(parse_line(&line).unwrap(), entry);
    }

    #[test]
    fn timing_keys_are_recognised() {
        assert!(is_timing("training.0.ns_per_step"));
        assert!(is_timing("kernels.matmul_64x64_ns"));
        assert!(is_timing("noop_block_ns_per_step"));
        assert!(!is_timing("training.0.rcut"));
        assert!(!is_timing("population.genomes"));
        assert!(!is_timing("n_runs")); // 'ns' substring must not match
    }

    #[test]
    fn diff_gates_timings_at_fifteen_percent_over_median() {
        let history: Vec<HistoryEntry> = [100.0, 102.0, 98.0]
            .iter()
            .map(|&ns| entry_from_snapshot(&snapshot("dphpo-hotpath-v2", ns)).unwrap())
            .collect();
        let ok = entry_from_snapshot(&snapshot("dphpo-hotpath-v2", 114.0)).unwrap();
        let rows = diff(&history, &ok);
        let step = rows.iter().find(|r| r.key == "training.0.ns_per_step").unwrap();
        assert_eq!(step.verdict, Verdict::Ok);
        assert_eq!(step.median, Some(100.0));
        assert!((step.delta_pct - 14.0).abs() < 1e-9);
        assert!((step.mad_pct - 2.0).abs() < 1e-9);

        let bad = entry_from_snapshot(&snapshot("dphpo-hotpath-v2", 116.0)).unwrap();
        let rows = diff(&history, &bad);
        let step = rows.iter().find(|r| r.key == "training.0.ns_per_step").unwrap();
        assert_eq!(step.verdict, Verdict::Regression);
        // Non-timing rows never regress, whatever their delta.
        let rcut = rows.iter().find(|r| r.key == "training.0.rcut").unwrap();
        assert_eq!(rcut.verdict, Verdict::Info);
    }

    #[test]
    fn rows_without_history_read_as_new_and_other_kinds_are_ignored() {
        let other = entry_from_snapshot(&snapshot("dphpo-obs-v3", 50.0)).unwrap();
        let fresh = entry_from_snapshot(&snapshot("dphpo-hotpath-v2", 100.0)).unwrap();
        let rows = diff(&[other], &fresh);
        let step = rows.iter().find(|r| r.key == "training.0.ns_per_step").unwrap();
        assert_eq!(step.verdict, Verdict::New);
        assert_eq!(step.median, None);
    }

    #[test]
    fn render_marks_regressions_and_draws_a_jitter_bar() {
        let history: Vec<HistoryEntry> = [100.0, 110.0, 90.0]
            .iter()
            .map(|&ns| entry_from_snapshot(&snapshot("dphpo-hotpath-v2", ns)).unwrap())
            .collect();
        let fresh = entry_from_snapshot(&snapshot("dphpo-hotpath-v2", 130.0)).unwrap();
        let rows = diff(&history, &fresh);
        let text = render_diff(&fresh, &rows, history.len());
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("##########"), "jitter bar capped at 10: {text}");
    }

    #[test]
    fn history_file_round_trips_through_append_and_load() {
        let dir = std::env::temp_dir().join(format!("dphpo_hist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_history.jsonl");
        let _ = std::fs::remove_file(&path);
        let a = entry_from_snapshot(&snapshot("dphpo-hotpath-v2", 100.0)).unwrap();
        let b = entry_from_snapshot(&snapshot("dphpo-obs-v3", 5.0)).unwrap();
        append(&path, &a).unwrap();
        append(&path, &b).unwrap();
        assert_eq!(load(&path).unwrap(), vec![a, b]);
        assert_eq!(load(&dir.join("missing.jsonl")).unwrap(), Vec::new());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
