//! Shared helpers for the figure/table regeneration binaries: artifact
//! output, experiment-scale selection, and a JSON snapshot of experiment
//! results so the expensive EA runs execute once (`fig1` writes the
//! snapshot; `fig2_table2`, `fig3`, and `table3` reuse it).

use std::path::PathBuf;
use std::sync::Arc;

use dphpo_core::experiment::{ExperimentConfig, ExperimentResult};
use dphpo_dnnp::json::Json;
use dphpo_evo::nsga2::{GenerationRecord, RunResult};
use dphpo_evo::{Fitness, Individual};
use dphpo_obs::Recorder;

/// Output directory for regenerated artifacts (`results/` at the repo
/// root, overridable with `DPHPO_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DPHPO_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&path);
    path
}

/// Write an artifact file and echo its path.
pub fn write_artifact(name: &str, content: &str) {
    let path = results_dir().join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Scale selector shared by all harness binaries: `--smoke` (or
/// `DPHPO_SCALE=smoke`) runs the fast test scale; the default is the
/// reduced experiment scale of DESIGN.md.
pub fn experiment_scale() -> ExperimentConfig {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("DPHPO_SCALE").is_ok_and(|v| v == "smoke");
    if smoke {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::reduced()
    }
}

fn numbers(values: impl IntoIterator<Item = f64>) -> Json {
    Json::Array(values.into_iter().map(Json::Number).collect())
}

fn number_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn array_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    match v.get(key) {
        Some(Json::Array(items)) => Ok(items),
        _ => Err(format!("missing array field '{key}'")),
    }
}

fn number_vec(items: &[Json], key: &str) -> Result<Vec<f64>, String> {
    items
        .iter()
        .map(|j| j.as_f64().ok_or_else(|| format!("non-numeric entry in '{key}'")))
        .collect()
}

struct SavedIndividual {
    genome: Vec<f64>,
    fitness: Vec<f64>,
    minutes: Option<f64>,
    rank: usize,
    distance: f64,
}

impl SavedIndividual {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("genome", numbers(self.genome.iter().copied())),
            ("fitness", numbers(self.fitness.iter().copied())),
            ("minutes", self.minutes.map_or(Json::Null, Json::Number)),
            ("rank", Json::Number(self.rank as f64)),
            ("distance", Json::Number(self.distance)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(SavedIndividual {
            genome: number_vec(array_field(v, "genome")?, "genome")?,
            fitness: number_vec(array_field(v, "fitness")?, "fitness")?,
            minutes: match v.get("minutes") {
                None | Some(Json::Null) => None,
                Some(j) => {
                    Some(j.as_f64().ok_or_else(|| "non-numeric 'minutes'".to_string())?)
                }
            },
            rank: number_field(v, "rank")? as usize,
            distance: number_field(v, "distance")?,
        })
    }
}

struct SavedGeneration {
    generation: usize,
    failures: usize,
    population: Vec<SavedIndividual>,
}

impl SavedGeneration {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("generation", Json::Number(self.generation as f64)),
            ("failures", Json::Number(self.failures as f64)),
            (
                "population",
                Json::Array(self.population.iter().map(SavedIndividual::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(SavedGeneration {
            generation: number_field(v, "generation")? as usize,
            failures: number_field(v, "failures")? as usize,
            population: array_field(v, "population")?
                .iter()
                .map(SavedIndividual::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

struct SavedRun {
    evaluations: usize,
    history: Vec<SavedGeneration>,
}

impl SavedRun {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("evaluations", Json::Number(self.evaluations as f64)),
            ("history", Json::Array(self.history.iter().map(SavedGeneration::to_json).collect())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(SavedRun {
            evaluations: number_field(v, "evaluations")? as usize,
            history: array_field(v, "history")?
                .iter()
                .map(SavedGeneration::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// On-disk snapshot of an experiment (enough to regenerate every figure
/// and table; scheduler reports are not needed downstream).
pub struct SavedExperiment {
    /// Number of EA generations after generation 0.
    pub generations: usize,
    runs: Vec<SavedRun>,
}

impl SavedExperiment {
    /// Snapshot an in-memory result.
    pub fn from_result(result: &ExperimentResult) -> Self {
        SavedExperiment {
            generations: result.config.generations,
            runs: result
                .runs
                .iter()
                .map(|run| SavedRun {
                    evaluations: run.evaluations,
                    history: run
                        .history
                        .iter()
                        .map(|g| SavedGeneration {
                            generation: g.generation,
                            failures: g.failures,
                            population: g
                                .population
                                .iter()
                                .map(|i| SavedIndividual {
                                    genome: i.genome.clone(),
                                    fitness: i.fitness().values().to_vec(),
                                    minutes: i.eval_minutes,
                                    rank: i.rank,
                                    // JSON has no literal for non-finite
                                    // floats; boundary crowding distances
                                    // are +inf, so clamp for the snapshot.
                                    distance: if i.distance.is_finite() {
                                        i.distance
                                    } else {
                                        f64::MAX
                                    },
                                })
                                .collect(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Serialise to a JSON document.
    pub fn to_json_string(&self) -> String {
        Json::object(vec![
            ("generations", Json::Number(self.generations as f64)),
            ("runs", Json::Array(self.runs.iter().map(SavedRun::to_json).collect())),
        ])
        .to_string()
    }

    /// Parse a snapshot document.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        Ok(SavedExperiment {
            generations: number_field(&v, "generations")? as usize,
            runs: array_field(&v, "runs")?
                .iter()
                .map(SavedRun::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Rebuild an [`ExperimentResult`] (the passed config is provenance —
    /// its `generations` should match the snapshot's).
    pub fn into_result(self, config: ExperimentConfig) -> ExperimentResult {
        let runs = self
            .runs
            .into_iter()
            .map(|run| RunResult {
                evaluations: run.evaluations,
                history: run
                    .history
                    .into_iter()
                    .map(|g| GenerationRecord {
                        generation: g.generation,
                        failures: g.failures,
                        population: g
                            .population
                            .into_iter()
                            .map(|s| {
                                let mut ind = Individual::new(s.genome);
                                ind.fitness = Some(Fitness::new(s.fitness));
                                ind.eval_minutes = s.minutes;
                                ind.rank = s.rank;
                                ind.distance = s.distance;
                                ind
                            })
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        // Snapshots predate journaling and carry neither scheduler reports
        // nor archives; downstream analysis only reads `runs`.
        ExperimentResult {
            config,
            runs,
            pool_reports: Vec::new(),
            archives: Vec::new(),
            status: dphpo_core::CampaignStatus::default(),
        }
    }
}

/// Path of the cached experiment snapshot.
pub fn snapshot_path() -> PathBuf {
    results_dir().join("experiment.json")
}

/// Save a result snapshot to `results/experiment.json`.
pub fn save_experiment(result: &ExperimentResult) {
    let saved = SavedExperiment::from_result(result);
    write_artifact("experiment.json", &saved.to_json_string());
}

/// Load the snapshot if present, otherwise run the experiment at the
/// selected scale (and save it for the next binary).
pub fn load_or_run_experiment() -> ExperimentResult {
    let mut config = experiment_scale();
    let path = snapshot_path();
    if let Ok(text) = std::fs::read_to_string(&path) {
        match SavedExperiment::from_json_str(&text) {
            Ok(saved) => {
                println!("loaded cached experiment from {}", path.display());
                config.generations = saved.generations;
                return saved.into_result(config);
            }
            Err(e) => eprintln!("ignoring unreadable snapshot {}: {e}", path.display()),
        }
    }
    println!(
        "no cached experiment; running {} runs x pop {} x {} generations \
         (this trains {} models -- run `fig1` first to cache it)",
        config.n_runs,
        config.pop_size,
        config.generations,
        config.n_runs * config.pop_size * (config.generations + 1)
    );
    let result = run_and_report(&config);
    save_experiment(&result);
    result
}

/// Run the experiment with stderr progress.
pub fn run_and_report(config: &ExperimentConfig) -> ExperimentResult {
    let t0 = std::time::Instant::now();
    let mut progress = |run: usize, generation: usize| {
        eprintln!(
            "[{:>7.1?}] run {run}: reached generation {generation}",
            t0.elapsed()
        );
    };
    dphpo_core::experiment::run_experiment_with(config, Some(&mut progress))
}

/// Default write-ahead journal path: `results/experiment.journal.jsonl`.
pub fn journal_path() -> PathBuf {
    results_dir().join("experiment.journal.jsonl")
}

/// Run the experiment with stderr progress and a write-ahead journal at
/// `journal` — on a crash, rerun with `--resume <journal>` to continue
/// bit-identically instead of retraining from scratch.
pub fn run_journaled_and_report(
    config: &ExperimentConfig,
    journal: &std::path::Path,
) -> ExperimentResult {
    journaled_inner(config, journal, None)
}

/// As [`run_journaled_and_report`], with a telemetry recorder attached to
/// every run's evaluator (see `dphpo_obs`); recording never changes the
/// campaign's artifacts.
pub fn run_journaled_observed_and_report(
    config: &ExperimentConfig,
    journal: &std::path::Path,
    recorder: Arc<dyn Recorder>,
) -> ExperimentResult {
    journaled_inner(config, journal, Some(recorder))
}

/// As [`run_journaled_and_report`], with the full observatory surface: an
/// optional live `campaign_status.json` (rewritten atomically at every
/// generation boundary) and an optional telemetry recorder.
pub fn run_campaign_and_report(
    config: &ExperimentConfig,
    journal: &std::path::Path,
    status: Option<&std::path::Path>,
    recorder: Option<Arc<dyn Recorder>>,
    profile: Option<&std::path::Path>,
) -> ExperimentResult {
    journaled_inner_status(config, journal, status, recorder, profile)
}

fn journaled_inner(
    config: &ExperimentConfig,
    journal: &std::path::Path,
    recorder: Option<Arc<dyn Recorder>>,
) -> ExperimentResult {
    journaled_inner_status(config, journal, None, recorder, None)
}

fn journaled_inner_status(
    config: &ExperimentConfig,
    journal: &std::path::Path,
    status: Option<&std::path::Path>,
    recorder: Option<Arc<dyn Recorder>>,
    profile: Option<&std::path::Path>,
) -> ExperimentResult {
    let t0 = std::time::Instant::now();
    let mut progress = |run: usize, generation: usize| {
        eprintln!(
            "[{:>7.1?}] run {run}: reached generation {generation}",
            t0.elapsed()
        );
    };
    println!("journaling to {} (resume with --resume)", journal.display());
    let mut campaign = dphpo_core::experiment::Campaign::new(config).journal(journal);
    if let Some(path) = status {
        println!("live status at {}", path.display());
        campaign = campaign.status_file(path);
    }
    if let Some(rec) = recorder {
        campaign = campaign.recorder(rec);
    }
    if let Some(dir) = profile {
        println!("profile artifacts in {}", dir.display());
        campaign = campaign.profile_dir(dir);
    }
    match campaign.run(Some(&mut progress)) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("experiment interrupted: {e}");
            eprintln!("resume with: --resume {}", journal.display());
            std::process::exit(1);
        }
    }
}

/// Resume an interrupted experiment from its journal (see
/// [`run_journaled_and_report`]); journaled work is replayed, missing work
/// re-submitted, and the final result is bit-identical to an uninterrupted
/// run.
pub fn resume_and_report(
    config: &ExperimentConfig,
    journal: &std::path::Path,
) -> ExperimentResult {
    resume_inner(config, journal, None)
}

/// As [`resume_and_report`], with a telemetry recorder. Replayed
/// evaluations emit no training-step events; their `eval` spans are
/// reconstructed from journaled minutes.
pub fn resume_observed_and_report(
    config: &ExperimentConfig,
    journal: &std::path::Path,
    recorder: Arc<dyn Recorder>,
) -> ExperimentResult {
    resume_inner(config, journal, Some(recorder))
}

/// As [`resume_and_report`], with the observatory surface (see
/// [`run_campaign_and_report`]). A resumed campaign's status file converges
/// to bytes identical to an uninterrupted run's.
pub fn resume_campaign_and_report(
    config: &ExperimentConfig,
    journal: &std::path::Path,
    status: Option<&std::path::Path>,
    recorder: Option<Arc<dyn Recorder>>,
    profile: Option<&std::path::Path>,
) -> ExperimentResult {
    resume_inner_status(config, journal, status, recorder, profile)
}

fn resume_inner(
    config: &ExperimentConfig,
    journal: &std::path::Path,
    recorder: Option<Arc<dyn Recorder>>,
) -> ExperimentResult {
    resume_inner_status(config, journal, None, recorder, None)
}

fn resume_inner_status(
    config: &ExperimentConfig,
    journal: &std::path::Path,
    status: Option<&std::path::Path>,
    recorder: Option<Arc<dyn Recorder>>,
    profile: Option<&std::path::Path>,
) -> ExperimentResult {
    let t0 = std::time::Instant::now();
    let mut progress = |run: usize, generation: usize| {
        eprintln!(
            "[{:>7.1?}] run {run}: reached generation {generation}",
            t0.elapsed()
        );
    };
    println!("resuming from {}", journal.display());
    let mut campaign =
        dphpo_core::experiment::Campaign::new(config).journal(journal).resume();
    if let Some(path) = status {
        println!("live status at {}", path.display());
        campaign = campaign.status_file(path);
    }
    if let Some(rec) = recorder {
        campaign = campaign.recorder(rec);
    }
    if let Some(dir) = profile {
        println!("profile artifacts in {}", dir.display());
        campaign = campaign.profile_dir(dir);
    }
    match campaign.run(Some(&mut progress)) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("resume failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_core::experiment::run_experiment;

    #[test]
    fn snapshot_round_trips_every_figure_relevant_field() {
        let config = ExperimentConfig::smoke();
        let result = run_experiment(&config);
        let saved = SavedExperiment::from_result(&result);
        let text = saved.to_json_string();
        let loaded = SavedExperiment::from_json_str(&text).unwrap();
        let rebuilt = loaded.into_result(config);
        assert_eq!(rebuilt.runs.len(), result.runs.len());
        for (a, b) in rebuilt.runs.iter().zip(result.runs.iter()) {
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.history.len(), b.history.len());
            for (ga, gb) in a.history.iter().zip(b.history.iter()) {
                assert_eq!(ga.generation, gb.generation);
                assert_eq!(ga.failures, gb.failures);
                for (ia, ib) in ga.population.iter().zip(gb.population.iter()) {
                    assert_eq!(ia.genome, ib.genome);
                    assert_eq!(ia.fitness().values(), ib.fitness().values());
                    assert_eq!(ia.eval_minutes, ib.eval_minutes);
                    assert_eq!(ia.rank, ib.rank);
                }
            }
        }
        // The analysis downstream of a snapshot must match the original.
        let original = dphpo_core::analyze(&result);
        let config2 = ExperimentConfig::smoke();
        let restored = dphpo_core::analyze(
            &SavedExperiment::from_result(&result).into_result(config2),
        );
        assert_eq!(original.frontier, restored.frontier);
        assert_eq!(original.accurate, restored.accurate);
    }

    #[test]
    fn malformed_snapshot_is_rejected_with_context() {
        let err = match SavedExperiment::from_json_str("{\"generations\": 2}") {
            Err(e) => e,
            Ok(_) => panic!("snapshot without runs should be rejected"),
        };
        assert!(err.contains("runs"));
        assert!(SavedExperiment::from_json_str("not json").is_err());
    }
}
