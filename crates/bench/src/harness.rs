//! Shared helpers for the figure/table regeneration binaries: artifact
//! output, experiment-scale selection, and a JSON snapshot of experiment
//! results so the expensive EA runs execute once (`fig1` writes the
//! snapshot; `fig2_table2`, `fig3`, and `table3` reuse it).

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use dphpo_core::experiment::{ExperimentConfig, ExperimentResult};
use dphpo_evo::nsga2::{GenerationRecord, RunResult};
use dphpo_evo::{Fitness, Individual};

/// Output directory for regenerated artifacts (`results/` at the repo
/// root, overridable with `DPHPO_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DPHPO_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&path);
    path
}

/// Write an artifact file and echo its path.
pub fn write_artifact(name: &str, content: &str) {
    let path = results_dir().join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Scale selector shared by all harness binaries: `--smoke` (or
/// `DPHPO_SCALE=smoke`) runs the fast test scale; the default is the
/// reduced experiment scale of DESIGN.md.
pub fn experiment_scale() -> ExperimentConfig {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("DPHPO_SCALE").is_ok_and(|v| v == "smoke");
    if smoke {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::reduced()
    }
}

#[derive(Serialize, Deserialize)]
struct SavedIndividual {
    genome: Vec<f64>,
    fitness: Vec<f64>,
    minutes: Option<f64>,
    rank: usize,
    distance: f64,
}

#[derive(Serialize, Deserialize)]
struct SavedGeneration {
    generation: usize,
    failures: usize,
    population: Vec<SavedIndividual>,
}

#[derive(Serialize, Deserialize)]
struct SavedRun {
    evaluations: usize,
    history: Vec<SavedGeneration>,
}

/// On-disk snapshot of an experiment (enough to regenerate every figure
/// and table; scheduler reports are not needed downstream).
#[derive(Serialize, Deserialize)]
pub struct SavedExperiment {
    /// Number of EA generations after generation 0.
    pub generations: usize,
    runs: Vec<SavedRun>,
}

impl SavedExperiment {
    /// Snapshot an in-memory result.
    pub fn from_result(result: &ExperimentResult) -> Self {
        SavedExperiment {
            generations: result.config.generations,
            runs: result
                .runs
                .iter()
                .map(|run| SavedRun {
                    evaluations: run.evaluations,
                    history: run
                        .history
                        .iter()
                        .map(|g| SavedGeneration {
                            generation: g.generation,
                            failures: g.failures,
                            population: g
                                .population
                                .iter()
                                .map(|i| SavedIndividual {
                                    genome: i.genome.clone(),
                                    fitness: i.fitness().values().to_vec(),
                                    minutes: i.eval_minutes,
                                    rank: i.rank,
                                    // serde_json renders non-finite floats
                                    // as null; boundary crowding distances
                                    // are +inf, so clamp for the snapshot.
                                    distance: if i.distance.is_finite() {
                                        i.distance
                                    } else {
                                        f64::MAX
                                    },
                                })
                                .collect(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuild an [`ExperimentResult`] (the passed config is provenance —
    /// its `generations` should match the snapshot's).
    pub fn into_result(self, config: ExperimentConfig) -> ExperimentResult {
        let runs = self
            .runs
            .into_iter()
            .map(|run| RunResult {
                evaluations: run.evaluations,
                history: run
                    .history
                    .into_iter()
                    .map(|g| GenerationRecord {
                        generation: g.generation,
                        failures: g.failures,
                        population: g
                            .population
                            .into_iter()
                            .map(|s| {
                                let mut ind = Individual::new(s.genome);
                                ind.fitness = Some(Fitness::new(s.fitness));
                                ind.eval_minutes = s.minutes;
                                ind.rank = s.rank;
                                ind.distance = s.distance;
                                ind
                            })
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        ExperimentResult { config, runs, pool_reports: Vec::new() }
    }
}

/// Path of the cached experiment snapshot.
pub fn snapshot_path() -> PathBuf {
    results_dir().join("experiment.json")
}

/// Save a result snapshot to `results/experiment.json`.
pub fn save_experiment(result: &ExperimentResult) {
    let saved = SavedExperiment::from_result(result);
    match serde_json::to_string(&saved) {
        Ok(text) => write_artifact("experiment.json", &text),
        Err(e) => eprintln!("snapshot serialisation failed: {e}"),
    }
}

/// Load the snapshot if present, otherwise run the experiment at the
/// selected scale (and save it for the next binary).
pub fn load_or_run_experiment() -> ExperimentResult {
    let mut config = experiment_scale();
    let path = snapshot_path();
    if let Ok(text) = std::fs::read_to_string(&path) {
        match serde_json::from_str::<SavedExperiment>(&text) {
            Ok(saved) => {
                println!("loaded cached experiment from {}", path.display());
                config.generations = saved.generations;
                return saved.into_result(config);
            }
            Err(e) => eprintln!("ignoring unreadable snapshot {}: {e}", path.display()),
        }
    }
    println!(
        "no cached experiment; running {} runs x pop {} x {} generations \
         (this trains {} models -- run `fig1` first to cache it)",
        config.n_runs,
        config.pop_size,
        config.generations,
        config.n_runs * config.pop_size * (config.generations + 1)
    );
    let result = run_and_report(&config);
    save_experiment(&result);
    result
}

/// Run the experiment with stderr progress.
pub fn run_and_report(config: &ExperimentConfig) -> ExperimentResult {
    let t0 = std::time::Instant::now();
    let mut progress = |run: usize, generation: usize| {
        eprintln!(
            "[{:>7.1?}] run {run}: reached generation {generation}",
            t0.elapsed()
        );
    };
    dphpo_core::experiment::run_experiment_with(config, Some(&mut progress))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_core::experiment::run_experiment;

    #[test]
    fn snapshot_round_trips_every_figure_relevant_field() {
        let config = ExperimentConfig::smoke();
        let result = run_experiment(&config);
        let saved = SavedExperiment::from_result(&result);
        let text = serde_json::to_string(&saved).unwrap();
        let loaded: SavedExperiment = serde_json::from_str(&text).unwrap();
        let rebuilt = loaded.into_result(config);
        assert_eq!(rebuilt.runs.len(), result.runs.len());
        for (a, b) in rebuilt.runs.iter().zip(result.runs.iter()) {
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.history.len(), b.history.len());
            for (ga, gb) in a.history.iter().zip(b.history.iter()) {
                assert_eq!(ga.generation, gb.generation);
                assert_eq!(ga.failures, gb.failures);
                for (ia, ib) in ga.population.iter().zip(gb.population.iter()) {
                    assert_eq!(ia.genome, ib.genome);
                    assert_eq!(ia.fitness().values(), ib.fitness().values());
                    assert_eq!(ia.eval_minutes, ib.eval_minutes);
                    assert_eq!(ia.rank, ib.rank);
                }
            }
        }
        // The analysis downstream of a snapshot must match the original.
        let original = dphpo_core::analyze(&result);
        let config2 = ExperimentConfig::smoke();
        let restored = dphpo_core::analyze(
            &SavedExperiment::from_result(&result).into_result(config2),
        );
        assert_eq!(original.frontier, restored.frontier);
        assert_eq!(original.accurate, restored.accurate);
    }
}
