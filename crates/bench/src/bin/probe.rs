//! Parameter probe: `probe <n_atoms> <num_steps> [start_lr]` trains the
//! reference configurations at that scale and prints loss magnitudes, used
//! to pick the default experiment scale.

use std::sync::Arc;
use std::time::Instant;

use dphpo_core::workflow::{evaluate_individual, EvalContext};
use dphpo_dnnp::TrainConfig;
use dphpo_hpc::CostModel;
use dphpo_md::generate::{generate_dataset, GenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_atoms: usize = args.get(1).map_or(20, |s| s.parse().unwrap());
    let num_steps: usize = args.get(2).map_or(1200, |s| s.parse().unwrap());
    let start_lr: f64 = args.get(3).map_or(5e-3, |s| s.parse().unwrap());

    let mut rng = StdRng::seed_from_u64(0x0da7_a5e7);
    let gen = GenConfig { n_atoms, box_len: 17.84, n_frames: 120, ..GenConfig::reduced() };
    let mut dataset = generate_dataset(&gen, &mut rng);
    dataset.add_label_noise(0.0005, 0.03, &mut rng);
    let (train_ds, val_ds) = dataset.split(0.25, &mut rng);

    let ctx = EvalContext {
        base_config: TrainConfig {
            num_steps,
            disp_freq: num_steps / 4,
            val_max_frames: 6,
            ..TrainConfig::default()
        },
        train: Arc::new(train_ds),
        val: Arc::new(val_ds),
        cost_model: CostModel::default(),
        workdir: None,
    };

    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("tanh none r=11.5", vec![start_lr, 1e-4, 11.5, 2.4, 2.5, 4.5, 4.5]),
        ("tanh none r=9.5 ", vec![start_lr, 1e-4, 9.5, 2.4, 2.5, 4.5, 4.5]),
        ("tanh none r=8.0 ", vec![start_lr, 1e-4, 8.0, 2.4, 2.5, 4.5, 4.5]),
        ("tanh none r=6.2 ", vec![start_lr, 1e-4, 6.2, 2.4, 2.5, 4.5, 4.5]),
        ("sigmoid desc r=11.5", vec![start_lr, 1e-4, 11.5, 2.4, 2.5, 3.5, 4.5]),
        ("relu fit   r=11.5", vec![start_lr, 1e-4, 11.5, 2.4, 2.5, 4.5, 0.5]),
        ("relu6 fit  r=11.5", vec![start_lr, 1e-4, 11.5, 2.4, 2.5, 4.5, 1.5]),
        ("softplus both r=11.5", vec![start_lr, 1e-4, 11.5, 2.4, 2.5, 2.5, 2.5]),
        ("tanh LINEAR r=11.5", vec![start_lr, 1e-4, 11.5, 2.4, 0.5, 4.5, 4.5]),
        ("tanh SQRT  r=11.5", vec![start_lr, 1e-4, 11.5, 2.4, 1.5, 4.5, 4.5]),
        ("tanh none smth=5.5 r=11.5", vec![start_lr, 1e-4, 11.5, 5.5, 2.5, 4.5, 4.5]),
    ];

    println!("atoms={n_atoms} steps={num_steps} start_lr={start_lr}");
    println!("{:<28} {:>10} {:>10} {:>7}", "case", "e_loss", "f_loss", "wall");
    for (label, genome) in &cases {
        let t = Instant::now();
        let record = evaluate_individual(&ctx, genome, 17);
        if record.failed {
            println!("{label:<28} {:>10} {:>10} {:>6.1?}", "FAILED", "FAILED", t.elapsed());
        } else {
            println!(
                "{label:<28} {:>10.5} {:>10.5} {:>6.1?}",
                record.fitness.get(0),
                record.fitness.get(1),
                t.elapsed()
            );
        }
    }
}
