//! Machine-readable baseline of the training hot path: steady-state
//! training step cost, the tensor/tape kernels it is built from (blocked
//! matmul, transposed-operand matmuls, bulk tanh, fused affine layer),
//! the batched-vs-scalar descriptor pass, and the population-level fused
//! validation sweep.
//!
//! Writes `BENCH_hotpath.json` (schema `dphpo-hotpath-v2`) into the
//! current directory — run from the repo root (or via
//! `scripts/bench_baseline.sh`) to refresh the checked-in baseline.
//! `--quick` trades stability for runtime (CI-friendly).

use std::time::Instant;

use dphpo_autograd::{Tape, Tensor, Unary};
use dphpo_dnnp::json::Json;
use dphpo_dnnp::model::forward_population;
use dphpo_dnnp::descriptor::merge_frame_caches;
use dphpo_dnnp::{
    forward_cached, train, train_population, DnnpModel, FrameCache, Supervision, TrainConfig,
};
use dphpo_md::generate::{generate_dataset, GenConfig};
use dphpo_md::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Best-of-`samples` wall time of `f`, in seconds (one warm-up call first).
fn time_best(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::MAX;
    for _ in 0..samples {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Nanoseconds per call for a kernel, timed in batches of `reps`.
fn ns_per_op(samples: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    time_best(samples, || {
        for _ in 0..reps {
            f();
        }
    }) * 1e9
        / reps as f64
}

fn data() -> (Dataset, Dataset) {
    // Same reference system as the criterion training bench.
    let mut rng = StdRng::seed_from_u64(6);
    let gen = GenConfig { n_frames: 24, ..GenConfig::reduced() };
    let mut ds = generate_dataset(&gen, &mut rng);
    ds.add_label_noise(0.0005, 0.03, &mut rng);
    ds.split(0.25, &mut rng)
}

/// Reference training config: `rcut = 11` gives ~17 pairs/atom on the
/// generated toy box, the closest match to the neighbor density of the
/// paper's production systems (water at 6 Å sees ~46 neighbors/atom).
/// The sparse `rcut = 6` variant (~3 pairs/atom) is also recorded — it is
/// dominated by per-node graph overhead rather than kernel throughput, so
/// tracking both catches regressions in either regime.
const REFERENCE_RCUT: f64 = 11.0;
const SPARSE_RCUT: f64 = 6.0;

fn config(rcut: f64, steps: usize) -> TrainConfig {
    TrainConfig {
        rcut,
        rcut_smth: 2.2,
        start_lr: 0.008,
        stop_lr: 1e-4,
        num_steps: steps,
        disp_freq: steps,
        val_max_frames: 2,
        ..TrainConfig::default()
    }
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    Tensor::matrix(rows, cols, (0..rows * cols).map(|_| rng.random_range(-1.0..1.0)).collect())
}

/// Tile a one-frame one-hot matrix `[n, S]` into `[B·n, S]`.
fn tile_onehot(onehot: &Tensor, batch: usize) -> Tensor {
    let rows = onehot.shape().rows();
    let cols = onehot.shape().cols();
    let mut out = Vec::with_capacity(batch * rows * cols);
    for _ in 0..batch {
        out.extend_from_slice(onehot.data());
    }
    Tensor::matrix(batch * rows, cols, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".into());
    let (samples, k_steps, mm_reps, aff_reps, act_reps) =
        if quick { (3, 20, 300, 60, 100) } else { (3, 100, 3000, 400, 1000) };
    let (train_ds, val_ds) = data();

    // Steady-state step cost by subtraction: t(2K) − t(K) spans exactly K
    // steps of the warm loop, cancelling model setup and cache building.
    let mut training = Vec::new();
    for rcut in [REFERENCE_RCUT, SPARSE_RCUT] {
        println!("timing training at rcut {rcut} ({k_steps} vs {} steps)...", 2 * k_steps);
        let t_short = time_best(samples, || {
            let mut rng = StdRng::seed_from_u64(7);
            let _ = train(&config(rcut, k_steps), &train_ds, &val_ds, &mut rng).unwrap();
        });
        let t_long = time_best(samples, || {
            let mut rng = StdRng::seed_from_u64(7);
            let _ = train(&config(rcut, 2 * k_steps), &train_ds, &val_ds, &mut rng).unwrap();
        });
        let ns_per_step = ((t_long - t_short).max(0.0) / k_steps as f64) * 1e9;
        training.push((rcut, ns_per_step));
    }

    println!("timing kernels...");
    let mut rng = StdRng::seed_from_u64(5);
    let a = random_matrix(64, 64, &mut rng);
    let b = random_matrix(64, 64, &mut rng);
    let matmul_ns = ns_per_op(samples, mm_reps, || {
        let _ = std::hint::black_box(&a).matmul(std::hint::black_box(&b));
    });
    let matmul_nt_ns = ns_per_op(samples, mm_reps, || {
        let _ = std::hint::black_box(&a).matmul_nt(std::hint::black_box(&b));
    });
    let matmul_tn_ns = ns_per_op(samples, mm_reps, || {
        let _ = std::hint::black_box(&a).matmul_tn(std::hint::black_box(&b));
    });
    // Bulk tanh through the tape's vectorized unary kernel.
    let t0 = random_matrix(64, 64, &mut rng);
    let ttape = Tape::new();
    let tanh_ns = ns_per_op(samples, act_reps, || {
        ttape.reset();
        let x = ttape.constant(t0.clone());
        let _ = std::hint::black_box(ttape.item(ttape.sum_all(ttape.tanh(x))));
    });

    // Fused affine layer, forward + weight gradient, on an arena tape —
    // the per-layer unit of work inside every training step.
    let x0 = random_matrix(256, 32, &mut rng);
    let w0 = random_matrix(32, 32, &mut rng);
    let b0 = Tensor::vector(&(0..32).map(|_| rng.random_range(-0.5..0.5)).collect::<Vec<_>>());
    let tape = Tape::new();
    let affine_cycle = |fused: bool| {
        tape.reset();
        let x = tape.constant(x0.clone());
        let w = tape.constant(w0.clone());
        let b = tape.constant(b0.clone());
        let h = if fused {
            tape.affine(x, w, b, Some(Unary::Tanh))
        } else {
            tape.tanh(tape.add_bias(tape.matmul(x, w), b))
        };
        let g = tape.grad(tape.sum_all(h), &[w])[0];
        let _ = std::hint::black_box(tape.item(tape.sum_all(g)));
    };
    let affine_fused_ns = ns_per_op(samples, aff_reps, || affine_cycle(true));
    let affine_unfused_ns = ns_per_op(samples, aff_reps, || affine_cycle(false));

    // Batched descriptor pass: the forward+forces graph over B frames as
    // one merged SoA cache versus B per-frame graphs. This is exactly the
    // transformation the trainer applies to its data-parallel batch.
    println!("timing batched vs scalar descriptor pass...");
    let batch_frames = 8.min(train_ds.frames.len());
    let bcfg = config(REFERENCE_RCUT, 1);
    let mut mrng = StdRng::seed_from_u64(9);
    let model = DnnpModel::new(bcfg.clone(), &train_ds, &mut mrng).expect("bench model");
    let frame_caches: Vec<FrameCache> = train_ds.frames[..batch_frames]
        .iter()
        .map(|f| model.build_cache(&f.positions))
        .collect();
    let cache_refs: Vec<&FrameCache> = frame_caches.iter().collect();
    let merged = merge_frame_caches(&cache_refs);
    let onehot_batch = tile_onehot(&model.onehot, batch_frames);
    let btape = Tape::new();
    let batch_reps = if quick { 20 } else { 200 };
    let scalar_pass_ns = ns_per_op(samples, batch_reps, || {
        for cache in &frame_caches {
            btape.reset();
            let taped = model.params.register(&btape);
            let graph =
                forward_cached(&btape, &taped, &bcfg, &model.stats, cache, &model.onehot, true);
            let _ = std::hint::black_box(
                btape.item(btape.sum_all(graph.forces.expect("forces"))),
            );
        }
    });
    let batched_pass_ns = ns_per_op(samples, batch_reps, || {
        btape.reset();
        let taped = model.params.register(&btape);
        let graph =
            forward_cached(&btape, &taped, &bcfg, &model.stats, &merged, &onehot_batch, true);
        let _ =
            std::hint::black_box(btape.item(btape.sum_all(graph.forces.expect("forces"))));
    });

    // Population-level evaluation: G genomes sharing the rcut bucket.
    // (a) the fused first-layer validation sweep versus G sequential
    // sweeps on the same merged batch; (b) end-to-end `train_population`
    // versus a sequential loop of `train` over the same jobs.
    println!("timing population-level evaluation...");
    let genomes = 4usize;
    let pop_steps = if quick { 10 } else { 40 };
    let pop_jobs: Vec<(TrainConfig, u64)> = (0..genomes)
        .map(|g| {
            let mut c = config(REFERENCE_RCUT, pop_steps);
            c.disp_freq = pop_steps / 2;
            c.fitting_neurons = vec![8 + g, 8];
            (c, 100 + g as u64)
        })
        .collect();
    let pop_models: Vec<DnnpModel> = pop_jobs
        .iter()
        .map(|(c, seed)| {
            let mut r = StdRng::seed_from_u64(*seed);
            DnnpModel::with_stats(c.clone(), &train_ds, model.stats.clone(), &mut r)
                .expect("bench model")
        })
        .collect();
    let sweep_reps = if quick { 10 } else { 100 };
    let sweep_sequential_ns = ns_per_op(samples, sweep_reps, || {
        for m in &pop_models {
            btape.reset();
            let taped = m.params.register(&btape);
            let graph = forward_cached(
                &btape,
                &taped,
                &m.config,
                &m.stats,
                &merged,
                &onehot_batch,
                true,
            );
            let _ = std::hint::black_box(
                btape.item(btape.sum_all(graph.forces.expect("forces"))),
            );
        }
    });
    let sweep_fused_ns = ns_per_op(samples, sweep_reps, || {
        btape.reset();
        let tapeds: Vec<_> = pop_models.iter().map(|m| m.params.register(&btape)).collect();
        let configs: Vec<&TrainConfig> = pop_models.iter().map(|m| &m.config).collect();
        let graphs = forward_population(
            &btape,
            &tapeds,
            &configs,
            &model.stats,
            &merged,
            &onehot_batch,
            true,
        );
        for graph in graphs {
            let _ = std::hint::black_box(
                btape.item(btape.sum_all(graph.forces.expect("forces"))),
            );
        }
    });
    let train_sequential_ns = time_best(samples, || {
        for (c, seed) in &pop_jobs {
            let mut r = StdRng::seed_from_u64(*seed);
            let _ = train(c, &train_ds, &val_ds, &mut r).unwrap();
        }
    }) * 1e9;
    let train_population_ns = time_best(samples, || {
        let _ = train_population(&pop_jobs, &train_ds, &val_ds, &Supervision::none()).unwrap();
    }) * 1e9;

    let doc = Json::object(vec![
        ("schema", Json::String("dphpo-hotpath-v2".into())),
        ("quick", Json::Bool(quick)),
        ("reference_rcut", Json::Number(REFERENCE_RCUT)),
        (
            "training",
            Json::Array(
                training
                    .iter()
                    .map(|&(rcut, ns)| {
                        Json::object(vec![
                            ("rcut", Json::Number(rcut)),
                            ("steps_measured", Json::Number(k_steps as f64)),
                            ("ns_per_step", Json::Number(ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "kernels",
            Json::object(vec![
                ("matmul_64x64_ns", Json::Number(matmul_ns)),
                ("matmul_nt_64x64_ns", Json::Number(matmul_nt_ns)),
                ("matmul_tn_64x64_ns", Json::Number(matmul_tn_ns)),
                ("tanh_64x64_ns", Json::Number(tanh_ns)),
                ("affine_fused_fwd_grad_256x32_ns", Json::Number(affine_fused_ns)),
                ("affine_unfused_fwd_grad_256x32_ns", Json::Number(affine_unfused_ns)),
            ]),
        ),
        (
            "batched",
            Json::object(vec![
                ("frames", Json::Number(batch_frames as f64)),
                ("scalar_fwd_forces_ns", Json::Number(scalar_pass_ns)),
                ("batched_fwd_forces_ns", Json::Number(batched_pass_ns)),
                ("speedup", Json::Number(scalar_pass_ns / batched_pass_ns)),
            ]),
        ),
        (
            "population",
            Json::object(vec![
                ("genomes", Json::Number(genomes as f64)),
                ("val_sweep_sequential_ns", Json::Number(sweep_sequential_ns)),
                ("val_sweep_fused_ns", Json::Number(sweep_fused_ns)),
                ("val_sweep_speedup", Json::Number(sweep_sequential_ns / sweep_fused_ns)),
                ("train_steps", Json::Number(pop_steps as f64)),
                ("train_sequential_ns", Json::Number(train_sequential_ns)),
                ("train_population_ns", Json::Number(train_population_ns)),
                (
                    "train_speedup",
                    Json::Number(train_sequential_ns / train_population_ns),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write baseline");
    println!("wrote {out_path}");
    for &(rcut, ns) in &training {
        println!("  training rcut {rcut}: {:.1} µs/step", ns / 1e3);
    }
    println!(
        "  matmul 64x64: {matmul_ns:.0} ns  (nt {matmul_nt_ns:.0} ns, tn {matmul_tn_ns:.0} ns, nt/mm {:.2})",
        matmul_nt_ns / matmul_ns
    );
    println!("  tanh 64x64: {tanh_ns:.0} ns");
    println!(
        "  affine 256x32 fwd+grad: fused {:.1} µs vs unfused {:.1} µs",
        affine_fused_ns / 1e3,
        affine_unfused_ns / 1e3
    );
    println!(
        "  batched descriptor pass ({batch_frames} frames): {:.1} µs vs scalar {:.1} µs ({:.2}x)",
        batched_pass_ns / 1e3,
        scalar_pass_ns / 1e3,
        scalar_pass_ns / batched_pass_ns
    );
    println!(
        "  population val sweep ({genomes} genomes): fused {:.1} µs vs sequential {:.1} µs ({:.2}x)",
        sweep_fused_ns / 1e3,
        sweep_sequential_ns / 1e3,
        sweep_sequential_ns / sweep_fused_ns
    );
    println!(
        "  population training ({genomes} genomes x {pop_steps} steps): {:.1} ms vs sequential {:.1} ms ({:.2}x)",
        train_population_ns / 1e6,
        train_sequential_ns / 1e6,
        train_sequential_ns / train_population_ns
    );
}
