//! Machine-readable baseline of the training hot path: steady-state
//! training step cost plus the tensor/tape kernels it is built from
//! (blocked matmul, transposed-operand matmuls, fused affine layer).
//!
//! Writes `BENCH_hotpath.json` into the current directory — run from the
//! repo root (or via `scripts/bench_baseline.sh`) to refresh the checked-in
//! baseline. `--quick` trades stability for runtime (CI-friendly).

use std::time::Instant;

use dphpo_autograd::{Tape, Tensor, Unary};
use dphpo_dnnp::json::Json;
use dphpo_dnnp::{train, TrainConfig};
use dphpo_md::generate::{generate_dataset, GenConfig};
use dphpo_md::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Best-of-`samples` wall time of `f`, in seconds (one warm-up call first).
fn time_best(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::MAX;
    for _ in 0..samples {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Nanoseconds per call for a kernel, timed in batches of `reps`.
fn ns_per_op(samples: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    time_best(samples, || {
        for _ in 0..reps {
            f();
        }
    }) * 1e9
        / reps as f64
}

fn data() -> (Dataset, Dataset) {
    // Same reference system as the criterion training bench.
    let mut rng = StdRng::seed_from_u64(6);
    let gen = GenConfig { n_frames: 24, ..GenConfig::reduced() };
    let mut ds = generate_dataset(&gen, &mut rng);
    ds.add_label_noise(0.0005, 0.03, &mut rng);
    ds.split(0.25, &mut rng)
}

/// Reference training config: `rcut = 11` gives ~17 pairs/atom on the
/// generated toy box, the closest match to the neighbor density of the
/// paper's production systems (water at 6 Å sees ~46 neighbors/atom).
/// The sparse `rcut = 6` variant (~3 pairs/atom) is also recorded — it is
/// dominated by per-node graph overhead rather than kernel throughput, so
/// tracking both catches regressions in either regime.
const REFERENCE_RCUT: f64 = 11.0;
const SPARSE_RCUT: f64 = 6.0;

fn config(rcut: f64, steps: usize) -> TrainConfig {
    TrainConfig {
        rcut,
        rcut_smth: 2.2,
        start_lr: 0.008,
        stop_lr: 1e-4,
        num_steps: steps,
        disp_freq: steps,
        val_max_frames: 2,
        ..TrainConfig::default()
    }
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    Tensor::matrix(rows, cols, (0..rows * cols).map(|_| rng.random_range(-1.0..1.0)).collect())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (samples, k_steps, mm_reps, aff_reps) =
        if quick { (1, 20, 300, 60) } else { (3, 100, 3000, 400) };
    let (train_ds, val_ds) = data();

    // Steady-state step cost by subtraction: t(2K) − t(K) spans exactly K
    // steps of the warm loop, cancelling model setup and cache building.
    let mut training = Vec::new();
    for rcut in [REFERENCE_RCUT, SPARSE_RCUT] {
        println!("timing training at rcut {rcut} ({k_steps} vs {} steps)...", 2 * k_steps);
        let t_short = time_best(samples, || {
            let mut rng = StdRng::seed_from_u64(7);
            let _ = train(&config(rcut, k_steps), &train_ds, &val_ds, &mut rng).unwrap();
        });
        let t_long = time_best(samples, || {
            let mut rng = StdRng::seed_from_u64(7);
            let _ = train(&config(rcut, 2 * k_steps), &train_ds, &val_ds, &mut rng).unwrap();
        });
        let ns_per_step = ((t_long - t_short).max(0.0) / k_steps as f64) * 1e9;
        training.push((rcut, ns_per_step));
    }

    println!("timing kernels...");
    let mut rng = StdRng::seed_from_u64(5);
    let a = random_matrix(64, 64, &mut rng);
    let b = random_matrix(64, 64, &mut rng);
    let matmul_ns = ns_per_op(samples, mm_reps, || {
        let _ = std::hint::black_box(&a).matmul(std::hint::black_box(&b));
    });
    let matmul_nt_ns = ns_per_op(samples, mm_reps, || {
        let _ = std::hint::black_box(&a).matmul_nt(std::hint::black_box(&b));
    });
    let matmul_tn_ns = ns_per_op(samples, mm_reps, || {
        let _ = std::hint::black_box(&a).matmul_tn(std::hint::black_box(&b));
    });

    // Fused affine layer, forward + weight gradient, on an arena tape —
    // the per-layer unit of work inside every training step.
    let x0 = random_matrix(256, 32, &mut rng);
    let w0 = random_matrix(32, 32, &mut rng);
    let b0 = Tensor::vector(&(0..32).map(|_| rng.random_range(-0.5..0.5)).collect::<Vec<_>>());
    let tape = Tape::new();
    let affine_cycle = |fused: bool| {
        tape.reset();
        let x = tape.constant(x0.clone());
        let w = tape.constant(w0.clone());
        let b = tape.constant(b0.clone());
        let h = if fused {
            tape.affine(x, w, b, Some(Unary::Tanh))
        } else {
            tape.tanh(tape.add_bias(tape.matmul(x, w), b))
        };
        let g = tape.grad(tape.sum_all(h), &[w])[0];
        let _ = std::hint::black_box(tape.item(tape.sum_all(g)));
    };
    let affine_fused_ns = ns_per_op(samples, aff_reps, || affine_cycle(true));
    let affine_unfused_ns = ns_per_op(samples, aff_reps, || affine_cycle(false));

    let doc = Json::object(vec![
        ("schema", Json::String("dphpo-hotpath-v1".into())),
        ("quick", Json::Bool(quick)),
        ("reference_rcut", Json::Number(REFERENCE_RCUT)),
        (
            "training",
            Json::Array(
                training
                    .iter()
                    .map(|&(rcut, ns)| {
                        Json::object(vec![
                            ("rcut", Json::Number(rcut)),
                            ("steps_measured", Json::Number(k_steps as f64)),
                            ("ns_per_step", Json::Number(ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "kernels",
            Json::object(vec![
                ("matmul_64x64_ns", Json::Number(matmul_ns)),
                ("matmul_nt_64x64_ns", Json::Number(matmul_nt_ns)),
                ("matmul_tn_64x64_ns", Json::Number(matmul_tn_ns)),
                ("affine_fused_fwd_grad_256x32_ns", Json::Number(affine_fused_ns)),
                ("affine_unfused_fwd_grad_256x32_ns", Json::Number(affine_unfused_ns)),
            ]),
        ),
    ]);
    let path = "BENCH_hotpath.json";
    std::fs::write(path, format!("{doc}\n")).expect("write baseline");
    println!("wrote {path}");
    for &(rcut, ns) in &training {
        println!("  training rcut {rcut}: {:.1} µs/step", ns / 1e3);
    }
    println!(
        "  matmul 64x64: {matmul_ns:.0} ns  (nt {matmul_nt_ns:.0} ns, tn {matmul_tn_ns:.0} ns)"
    );
    println!(
        "  affine 256x32 fwd+grad: fused {:.1} µs vs unfused {:.1} µs",
        affine_fused_ns / 1e3,
        affine_unfused_ns / 1e3
    );
}
