//! Regenerates the §3.1 comparison: the EA's 3500 trainings versus a
//! brute-force grid search, and — at this reproduction's scale — an actual
//! head-to-head of NSGA-II against a (subsampled) grid on the real
//! surrogate objective, showing the EA reaches a comparable frontier with
//! orders of magnitude fewer evaluations.

use dphpo_bench::harness::{experiment_scale, write_artifact};
use dphpo_core::representation::DeepMDRepresentation;
use dphpo_core::workflow::{evaluate_individual, EvalContext};
use dphpo_evo::{hypervolume_2d, pareto_front, Fitness};
use dphpo_hpc::CostModel;
use std::sync::Arc;

fn main() {
    let config = experiment_scale();
    let mut report = String::new();
    report.push_str("S3.1: EA evaluation count vs brute-force grid search\n\n");
    let per_run = config.pop_size * (config.generations + 1);
    report.push_str(&format!(
        "EA: {} trainings/run x {} runs = {} trainings (paper: 3500)\n",
        per_run,
        config.n_runs,
        per_run * config.n_runs
    ));
    report.push_str("grid at 10 points/parameter: 10^7 = 10,000,000 trainings\n");
    report.push_str(&format!(
        "ratio: {:.0}x fewer evaluations for the EA (paper: \"orders of magnitude\")\n\n",
        1e7 / (per_run * config.n_runs) as f64
    ));

    // Head-to-head at reduced scale: random search with the same budget as
    // one EA generation's offspring, on the true training objective, vs a
    // coarse factorial grid of equal size.
    let (train, val) = dphpo_core::experiment::build_dataset(&config);
    let ctx = EvalContext {
        base_config: config.base_train_config.clone(),
        train,
        val,
        cost_model: CostModel::default(),
        workdir: None,
    };
    let ctx = Arc::new(ctx);

    // 2 points per continuous gene, fixed mid categoricals → 16 grid points
    // (a 10/parameter grid is unaffordable even at reduced scale, which is
    // the paper's point).
    let ranges = DeepMDRepresentation::init_ranges();
    let grid_point = |mask: usize| -> Vec<f64> {
        let pick = |g: usize, (lo, hi): (f64, f64)| {
            if mask >> g & 1 == 0 {
                lo + 0.25 * (hi - lo)
            } else {
                lo + 0.75 * (hi - lo)
            }
        };
        vec![
            pick(0, ranges[0]),
            pick(1, ranges[1]),
            pick(2, ranges[2]),
            pick(3, ranges[3]),
            2.5, // none
            4.5, // tanh
            4.5, // tanh
        ]
    };
    let grid: Vec<Vec<f64>> = (0..16).map(grid_point).collect();
    let mut grid_points = Vec::new();
    for (k, genome) in grid.iter().enumerate() {
        let record = evaluate_individual(&ctx, genome, 1000 + k as u64);
        if !record.failed {
            grid_points.push((record.fitness.get(0), record.fitness.get(1)));
        }
    }
    let grid_fits: Vec<Fitness> = grid_points
        .iter()
        .map(|&(e, f)| Fitness::new(vec![e, f]))
        .collect();
    let grid_refs: Vec<&Fitness> = grid_fits.iter().collect();
    let grid_frontier = pareto_front(&grid_refs);
    let grid_hv = hypervolume_2d(&grid_points, (1.0, 1.0));
    report.push_str(&format!(
        "16-point factorial grid: {} evaluable, frontier size {}, hypervolume {:.4} (ref (1,1))\n",
        grid_points.len(),
        grid_frontier.len(),
        grid_hv
    ));
    report.push_str(
        "run `fig1` and `fig2_table2` for the EA frontier; the EA spends its \
         budget adaptively instead of on a fixed lattice\n",
    );

    print!("{report}");
    write_artifact("grid_vs_ea.txt", &report);
}
