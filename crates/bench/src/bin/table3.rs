//! Regenerates **Table 3**: full hyperparameters of three selected
//! chemically accurate solutions — lowest force loss, lowest energy loss,
//! and lowest runtime — from the aggregated final generations.

use dphpo_bench::harness::{load_or_run_experiment, write_artifact};
use dphpo_core::analysis::{analyze, analyze_with_thresholds, Analysis, CHEM_ACC_ENERGY};

fn row(analysis: &Analysis, idx: Option<usize>, field: &dyn Fn(&dphpo_core::SolutionRecord) -> String) -> String {
    match idx {
        Some(i) => field(&analysis.solutions[i]),
        None => "n/a".to_string(),
    }
}

fn main() {
    let result = load_or_run_experiment();
    let mut analysis = analyze(&result);
    let mut note = String::new();
    if analysis.accurate.is_empty() {
        // Fall back to the scale-matched criterion (see fig3 and
        // EXPERIMENTS.md): 1.12 x the best observed force RMSE.
        let best_force = analysis
            .solutions
            .iter()
            .filter(|s| !s.failed)
            .map(|s| s.force_loss)
            .fold(f64::MAX, f64::min);
        let scaled = 1.12 * best_force;
        analysis = analyze_with_thresholds(&result, scaled, CHEM_ACC_ENERGY);
        note = format!(
            "note: no solution met the paper-absolute cutoff; using the \
             scale-matched criterion force < {scaled:.4} eV/AA\n"
        );
    }

    let selections: Vec<(&str, Option<usize>)> = vec![
        ("solution 1 (lowest force)", analysis.lowest_force),
        ("solution 2 (lowest energy)", analysis.lowest_energy),
        ("solution 3 (lowest runtime)", analysis.lowest_runtime),
    ];

    let mut report = String::new();
    report.push_str(
        "Table 3: selected chemically-accurate solutions from the final generations\n",
    );
    report.push_str(&note);
    report.push('\n');
    report.push_str(&format!(
        "{:<20} {:>24} {:>24} {:>24}\n",
        "hyperparameter", selections[0].0, selections[1].0, selections[2].0
    ));

    type Field<'a> = (&'a str, Box<dyn Fn(&dphpo_core::SolutionRecord) -> String>);
    let fields: Vec<Field> = vec![
        ("start_lr", Box::new(|s| format!("{:.4}", s.decoded.start_lr))),
        ("stop_lr", Box::new(|s| format!("{:.1e}", s.decoded.stop_lr))),
        ("rcut", Box::new(|s| format!("{:.2}", s.decoded.rcut))),
        ("rcut_smth", Box::new(|s| format!("{:.2}", s.decoded.rcut_smth))),
        ("scale_by_worker", Box::new(|s| s.decoded.scale_by_worker.name().to_string())),
        ("desc_activ_func", Box::new(|s| s.decoded.desc_activ_func.name().to_string())),
        ("fitting_activ_func", Box::new(|s| s.decoded.fitting_activ_func.name().to_string())),
        ("runtime (min.)", Box::new(|s| format!("{:.1}", s.runtime_minutes))),
        ("energy loss (eV)", Box::new(|s| format!("{:.4}", s.energy_loss))),
        ("force loss (eV/AA)", Box::new(|s| format!("{:.4}", s.force_loss))),
        ("on frontier", Box::new(|s| s.on_frontier.to_string())),
    ];

    for (name, field) in &fields {
        report.push_str(&format!(
            "{name:<20} {:>24} {:>24} {:>24}\n",
            row(&analysis, selections[0].1, field),
            row(&analysis, selections[1].1, field),
            row(&analysis, selections[2].1, field),
        ));
    }
    report.push_str(
        "\npaper (full scale): solutions 1–2 on the frontier, runtimes 68–74 min, \
         rcut 10.1–11.3, scale none, tanh/softplus activations\n",
    );

    print!("{report}");
    write_artifact("table3.txt", &report);
}
