//! Calibration probe: trains a handful of hand-picked configurations on
//! the reduced-scale dataset and prints loss magnitudes and wall time, so
//! the experiment scale can be tuned to the paper's loss ballpark.

use std::sync::Arc;
use std::time::Instant;

use dphpo_core::workflow::{evaluate_individual, EvalContext};
use dphpo_core::ExperimentConfig;
use dphpo_hpc::CostModel;
use dphpo_md::generate::generate_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = ExperimentConfig::reduced();
    let mut rng = StdRng::seed_from_u64(config.master_seed ^ 0x0da7_a5e7);
    let t0 = Instant::now();
    let mut dataset = generate_dataset(&config.gen_config, &mut rng);
    dataset.add_label_noise(config.label_noise.0, config.label_noise.1, &mut rng);
    let (train_ds, val_ds) = dataset.split(0.25, &mut rng);
    println!(
        "dataset: {} train / {} val frames of {} atoms (generated in {:.1?})",
        train_ds.n_frames(),
        val_ds.n_frames(),
        train_ds.n_atoms(),
        t0.elapsed()
    );

    let ctx = EvalContext {
        base_config: config.base_train_config.clone(),
        train: Arc::new(train_ds),
        val: Arc::new(val_ds),
        cost_model: CostModel::default(),
        workdir: None,
    };

    // genome: [start_lr, stop_lr, rcut, rcut_smth, scale, desc_act, fit_act]
    // acts: 0 relu, 1 relu6, 2 softplus, 3 sigmoid, 4 tanh
    // scale: 0 linear, 1 sqrt, 2 none
    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("tanh/tanh none rcut=11 lr=5e-3", vec![5e-3, 1e-4, 11.0, 2.4, 2.5, 4.5, 4.5]),
        ("tanh/tanh none rcut=9  lr=5e-3", vec![5e-3, 1e-4, 9.0, 2.4, 2.5, 4.5, 4.5]),
        ("tanh/tanh none rcut=7  lr=5e-3", vec![5e-3, 1e-4, 7.0, 2.4, 2.5, 4.5, 4.5]),
        ("tanh/tanh none rcut=6  lr=5e-3", vec![5e-3, 1e-4, 6.05, 2.4, 2.5, 4.5, 4.5]),
        ("sigmoid desc     rcut=11", vec![5e-3, 1e-4, 11.0, 2.4, 2.5, 3.5, 4.5]),
        ("relu fitting     rcut=11", vec![5e-3, 1e-4, 11.0, 2.4, 2.5, 4.5, 0.5]),
        ("softplus/softplus rcut=11", vec![5e-3, 1e-4, 11.0, 2.4, 2.5, 2.5, 2.5]),
        ("tanh/tanh linear  rcut=11 lr=9e-3", vec![9e-3, 1e-4, 11.0, 2.4, 0.5, 4.5, 4.5]),
        ("tanh/tanh none low lr=1e-4", vec![1e-4, 1e-5, 11.0, 2.4, 2.5, 4.5, 4.5]),
        ("tanh/tanh none lr=1e-2 sqrt", vec![1e-2, 1e-4, 11.0, 2.4, 1.5, 4.5, 4.5]),
    ];

    println!("\n{:<36} {:>10} {:>10} {:>8} {:>7}", "case", "e_loss", "f_loss", "min", "wall");
    for (label, genome) in &cases {
        let t = Instant::now();
        let record = evaluate_individual(&ctx, genome, 17);
        let wall = t.elapsed();
        if record.failed {
            println!("{label:<36} {:>10} {:>10} {:>8.1} {:>6.1?}", "FAILED", "FAILED", record.minutes, wall);
        } else {
            println!(
                "{label:<36} {:>10.5} {:>10.5} {:>8.1} {:>6.1?}",
                record.fitness.get(0),
                record.fitness.get(1),
                record.minutes,
                wall
            );
        }
    }
}
