//! Perf-history regression report: diff the current benchmark snapshots
//! against the checked-in `BENCH_history.jsonl` trajectory.
//!
//! ```text
//! perf_report [--history <path>] [--check] [--append] [snapshot.json ...]
//! ```
//!
//! With no positional snapshots, the repo-root `BENCH_hotpath.json` and
//! `BENCH_obs.json` are read (missing files are skipped with a note).
//! Every snapshot is flattened into dotted numeric rows and diffed against
//! the history entries of the same schema family: per-row delta against
//! the history median, a MAD jitter bar, and a verdict — `ok`,
//! `REGRESSION` (a timing row more than 15% above its median), `new`
//! (no history yet), or `info` (non-timing rows, never gated). This
//! generalizes `bench_baseline.sh --check` to the hotpath, obs, and any
//! future schema at once: a snapshot's kind derives from its `schema` tag,
//! so new benchmark families join the gate without code changes.
//!
//! `--check` exits 1 when any row regressed (`scripts/perf_history.sh`
//! wires this behind `BENCH_CHECK=1`). `--append` appends each snapshot to
//! the history file *after* diffing, growing the trajectory one measured
//! point per run.

use std::path::PathBuf;

use dphpo_bench::history::{self, Verdict};
use dphpo_dnnp::json::Json;

fn path_arg(args: &[String], flag: &str) -> Option<PathBuf> {
    args.iter().position(|a| a == flag).map(|i| {
        PathBuf::from(
            args.get(i + 1).unwrap_or_else(|| panic!("{flag} requires a path argument")),
        )
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let do_append = args.iter().any(|a| a == "--append");
    let history_path =
        path_arg(&args, "--history").unwrap_or_else(|| PathBuf::from("BENCH_history.jsonl"));

    // Positional snapshot paths: everything that is not a flag (or the
    // --history value).
    let mut snapshots: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" | "--append" => {}
            "--history" => i += 1,
            flag if flag.starts_with("--") => {
                eprintln!("perf_report: unknown flag `{flag}`");
                eprintln!("usage: perf_report [--history <path>] [--check] [--append] [snapshot.json ...]");
                std::process::exit(2);
            }
            path => snapshots.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if snapshots.is_empty() {
        snapshots = vec![PathBuf::from("BENCH_hotpath.json"), PathBuf::from("BENCH_obs.json")];
    }

    let history = match history::load(&history_path) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("perf_report: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "# Perf report ({} history entries from {})\n",
        history.len(),
        history_path.display()
    );

    let mut regressions = 0usize;
    for path in &snapshots {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                println!("(skipping {}: not found)\n", path.display());
                continue;
            }
            Err(e) => {
                eprintln!("perf_report: read {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("perf_report: parse {}: {e:?}", path.display());
                std::process::exit(1);
            }
        };
        let fresh = match history::entry_from_snapshot(&doc) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("perf_report: {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let same_kind = history.iter().filter(|e| e.kind == fresh.kind).count();
        let rows = history::diff(&history, &fresh);
        regressions += rows.iter().filter(|r| r.verdict == Verdict::Regression).count();
        print!("{}", history::render_diff(&fresh, &rows, same_kind));
        println!();
        if do_append {
            if let Err(e) = history::append(&history_path, &fresh) {
                eprintln!("perf_report: {e}");
                std::process::exit(1);
            }
            println!("appended {} snapshot to {}\n", fresh.kind, history_path.display());
        }
    }

    if regressions > 0 {
        println!("perf report: {regressions} row(s) REGRESSED (>15% over history median)");
        if check {
            std::process::exit(1);
        }
    } else {
        println!("perf report: no regressions");
    }
}
