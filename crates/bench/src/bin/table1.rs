//! Regenerates **Table 1**: initialisation ranges and initial mutation
//! standard deviations of the seven-gene representation.

use dphpo_bench::harness::write_artifact;
use dphpo_core::representation::{DeepMDRepresentation, GENE_NAMES};

fn main() {
    let ranges = DeepMDRepresentation::init_ranges();
    let std = DeepMDRepresentation::initial_std();

    let mut out = String::new();
    out.push_str("Table 1: Initialization parameters for the experiments\n\n");
    out.push_str(&format!(
        "{:<20} {:<22} {:<12}\n",
        "hyperparameter", "initialization range", "mutation std"
    ));
    for ((name, (lo, hi)), sigma) in GENE_NAMES.iter().zip(ranges).zip(std) {
        out.push_str(&format!("{name:<20} ({lo:.3e}, {hi:.3e})   {sigma}\n"));
    }
    out.push_str(&format!(
        "\nper-generation sigma annealing factor: {}\n",
        DeepMDRepresentation::ANNEAL_FACTOR
    ));
    print!("{out}");
    write_artifact("table1.txt", &out);
}
