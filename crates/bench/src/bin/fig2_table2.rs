//! Regenerates **Figure 2** (the Pareto frontier of the aggregated final
//! generations) and **Table 2** (force and energy values of every solution
//! exactly on that frontier).

use dphpo_bench::harness::{load_or_run_experiment, write_artifact};
use dphpo_core::analysis::{analyze, ascii_level_plot};

fn main() {
    let result = load_or_run_experiment();
    let analysis = analyze(&result);

    let mut report = String::new();
    report.push_str("Figure 2: Pareto frontier of the aggregated final generations\n\n");

    // Scatter of the final solution set with the frontier called out.
    let all_points: Vec<(f64, f64)> = analysis
        .solutions
        .iter()
        .filter(|s| !s.failed)
        .map(|s| (s.energy_loss, s.force_loss))
        .collect();
    let fmax = all_points.iter().map(|p| p.1).fold(0.0, f64::max) * 1.05 + 1e-9;
    let emax = all_points.iter().map(|p| p.0).fold(0.0, f64::max) * 1.05 + 1e-9;
    report.push_str(&ascii_level_plot(&all_points, fmax, emax, 64, 16));
    report.push_str(&format!(
        "\n{} final solutions, {} on the exact Pareto frontier\n",
        analysis.solutions.len(),
        analysis.frontier.len()
    ));
    report.push_str("(paper: 8 frontier points clustered close to the origin)\n\n");

    report.push_str("Table 2: solutions exactly on the Pareto frontier\n\n");
    report.push_str(&format!(
        "{:<10} {:>20} {:>24}\n",
        "solution", "force error (eV/AA)", "energy error (eV/atom)"
    ));
    let mut csv = String::from("solution,force_error_ev_a,energy_error_ev_atom\n");
    for (k, (force, energy)) in analysis.table2().iter().enumerate() {
        report.push_str(&format!("{:<10} {force:>20.4} {energy:>24.4}\n", k + 1));
        csv.push_str(&format!("{},{force:.6},{energy:.6}\n", k + 1));
    }
    report.push_str(
        "\npaper values for reference (full scale): force 0.0357–0.0409, \
         energy 0.0004–0.0016\n",
    );

    print!("{report}");
    write_artifact("fig2_table2.txt", &report);
    write_artifact("table2.csv", &csv);
}
