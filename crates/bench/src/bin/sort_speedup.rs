//! Regenerates the §2.1.4 claim: the rank-based non-dominated sort gives a
//! significant speed-up over Deb's fast non-dominated sort (Burlacu 2022),
//! while producing identical fronts.

use std::time::Instant;

use dphpo_bench::harness::write_artifact;
use dphpo_evo::{fast_nondominated_sort, rank_ordinal_sort, Fitness};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_fitnesses(n: usize, rng: &mut StdRng) -> Vec<Fitness> {
    (0..n)
        .map(|_| Fitness::new(vec![rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)]))
        .collect()
}

fn time_it(f: impl Fn()) -> f64 {
    // Warm up once, then take the best of three (1-core machine: median-ish).
    f();
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut report = String::new();
    report.push_str("S2.1.4: rank-based sort vs Deb's fast non-dominated sort (2 objectives)\n\n");
    report.push_str(&format!(
        "{:>8} {:>14} {:>14} {:>10} {:>8}\n",
        "N", "Deb (ms)", "rank (ms)", "speedup", "fronts"
    ));
    for n in [100usize, 200, 400, 800, 1600, 3200, 6400] {
        let fitnesses = random_fitnesses(n, &mut rng);
        let refs: Vec<&Fitness> = fitnesses.iter().collect();
        let deb = time_it(|| {
            let _ = fast_nondominated_sort(&refs);
        });
        let rank = time_it(|| {
            let _ = rank_ordinal_sort(&refs);
        });
        let a = fast_nondominated_sort(&refs).normalised();
        let b = rank_ordinal_sort(&refs).normalised();
        assert_eq!(a, b, "sorts disagree at N={n}");
        report.push_str(&format!(
            "{n:>8} {:>14.3} {:>14.3} {:>9.1}x {:>8}\n",
            deb * 1e3,
            rank * 1e3,
            deb / rank,
            a.len()
        ));
    }
    report.push_str(
        "\nidentical fronts verified at every size; the rank-based sort's advantage \
         grows with population size (the paper's population is 200 per sort: \
         100 parents + 100 offspring)\n",
    );
    print!("{report}");
    write_artifact("sort_speedup.txt", &report);
}
