//! Regenerates **Figure 1**: energy-vs-force loss level plots per
//! generation over the five independent EA runs, plus the §3.1/§3.2
//! accounting (total trainings, failures per generation, grid-search
//! comparison).
//!
//! This is the binary that *runs the experiment* and caches the snapshot
//! (`results/experiment.json`) that `fig2_table2`, `fig3`, and `table3`
//! reuse. Pass `--smoke` for a fast test-scale run.
//!
//! Every campaign is journaled to `results/experiment.journal.jsonl`
//! (write-ahead, one JSONL record per completed evaluation or generation).
//! If the run is killed, pass `--resume <journal>` to replay the journaled
//! work and continue to a bit-identical result instead of retraining.
//!
//! Campaign modes (DESIGN.md §12):
//!
//! * default — the paper's generational barrier;
//! * `--steady-state` — the asynchronous steady-state loop on a fixed
//!   8-slot pool. Every artifact gets a `steady_` prefix
//!   (`steady_experiment.journal.jsonl`, `steady_fig1_report.txt`, …) so
//!   the generational artifacts are never overwritten;
//! * `--compare-modes` — runs *both* modes on a matched 8-slot pool at the
//!   selected scale and writes `results/mode_comparison.md` (wall clock,
//!   busy/idle minutes, utilization, hypervolume at equal budget), then
//!   exits without touching any other artifact.
//!
//! Telemetry (off by default, strictly observational):
//!
//! * `--trace out.json` — Chrome `trace_event` JSON (open in Perfetto or
//!   `chrome://tracing`): one process per EA run, one lane per worker,
//!   `eval` spans with nested training-step spans.
//! * `--metrics out.jsonl` — deterministic event/metric log, plus the
//!   wall-clock side channel next to it at `out.side.jsonl`.
//!
//! Either flag also appends a per-generation rollup table to the fig1
//! report. Campaign artifacts (journal, snapshot, figures) are
//! byte-identical with or without telemetry.
//!
//! Profiling (off by default, deterministic): `--profile <dir>` rewrites
//! `profile.json` (schema `dphpo-profile-v1`) and a collapsed-stack
//! `profile.folded` (open in speedscope or inferno) in `<dir>` at every
//! generation boundary, and appends the "where the microsecond goes"
//! attribution table plus the per-phase tape step budget to the fig1
//! report and the campaign report. Both artifacts are pure functions of
//! journaled data, so they are byte-identical across kill+resume, and
//! profiling on vs off changes no other artifact (DESIGN.md §14).

use std::path::PathBuf;
use std::sync::Arc;

use dphpo_bench::harness::{
    experiment_scale, journal_path, resume_campaign_and_report, results_dir, run_and_report,
    run_campaign_and_report, save_experiment, write_artifact, SavedExperiment,
};
use dphpo_core::analysis::{ascii_level_plot, failure_breakdown_table, level_plot_csv};
use dphpo_core::campaign_report::{counter_trace_json, markdown_report, REFERENCE_POINT};
use dphpo_core::experiment::{CampaignMode, ExperimentConfig, ExperimentResult};
use dphpo_obs::{chrome, export, rollup, MemoryRecorder, Recorder};

/// Every flag `fig1` understands: `(name, takes a path argument, help)`.
/// `--list-flags` prints the names one per line; `scripts/verify.sh` greps
/// the fig1 command lines in README.md/EXPERIMENTS.md against that list so
/// the docs can never reference a flag this binary does not parse.
const FLAGS: &[(&str, bool, &str)] = &[
    ("--smoke", false, "fast test-scale campaign instead of the reduced scale"),
    ("--steady-state", false, "asynchronous steady-state campaign on a fixed 8-slot pool (steady_* artifacts)"),
    ("--compare-modes", false, "run both campaign modes on a matched 8-slot pool, write results/mode_comparison.md, exit"),
    ("--resume", true, "replay a write-ahead journal and continue bit-identically"),
    ("--trace", true, "write a Chrome trace_event JSON export"),
    ("--metrics", true, "write the deterministic event/metric JSONL export"),
    ("--status", false, "keep a live, atomically rewritten campaign_status.json"),
    ("--report", false, "write the markdown campaign report and Chrome counter tracks"),
    ("--profile", true, "rewrite deterministic profile artifacts (profile.json, profile.folded) in a directory at every boundary and append attribution tables to the reports"),
    ("--verify-journal", true, "offline journal integrity check (frames, last snapshot, first corrupt offset); exit nonzero on damage"),
    ("--compact", true, "rewrite a journal to its last snapshot plus the arrival suffix (generational: boundaries plus unfinished suffix)"),
    ("--list-flags", false, "print every known flag, one per line, and exit"),
];

/// Slot count for `--steady-state` and `--compare-modes`: fixed (not
/// `available_parallelism`) so the simulated-clock utilization numbers are
/// reproducible on any host, and larger than one so the barrier cost the
/// comparison measures actually exists.
const FIXED_SLOTS: usize = 8;

/// Reject any `--flag` this binary does not understand. A typo'd flag
/// silently running the full campaign is the failure mode this prevents.
fn validate_flags() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        match FLAGS.iter().find(|(name, _, _)| name == arg) {
            Some((_, takes_value, _)) => {
                if *takes_value {
                    i += 1; // skip the flag's path argument
                }
            }
            None => {
                eprintln!("fig1: unknown flag `{arg}`\n\nknown flags:");
                for (name, takes_value, help) in FLAGS {
                    let shown = if *takes_value { format!("{name} <path>") } else { (*name).to_string() };
                    eprintln!("  {shown:<22} {help}");
                }
                std::process::exit(2);
            }
        }
        i += 1;
    }
}

/// The path following `flag`, when present.
fn path_arg(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).map(|i| {
        PathBuf::from(
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} requires a path argument")),
        )
    })
}

/// The journal to resume from, when `--resume <path>` was passed.
fn resume_arg() -> Option<PathBuf> {
    path_arg("--resume")
}

/// Whether a bare flag (no argument) was passed.
fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn write_file(path: &PathBuf, content: &str) {
    match std::fs::write(path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Simulated-clock totals of one campaign, summed over every run and every
/// generation/epoch of its pool reports.
struct ModeTotals {
    evaluations: usize,
    wall: f64,
    busy: f64,
    idle: f64,
    lost: f64,
    backoff: f64,
    utilization: f64,
    hypervolume: f64,
}

fn mode_totals(result: &ExperimentResult, slots: usize) -> ModeTotals {
    let (mut wall, mut busy, mut idle, mut lost, mut backoff) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for r in result.pool_reports.iter().flatten() {
        wall += r.wall_minutes;
        busy += r.busy_minutes.iter().sum::<f64>();
        idle += r.idle_minutes.iter().sum::<f64>();
        lost += r.lost_death_minutes.iter().sum::<f64>()
            + r.lost_speculation_minutes.iter().sum::<f64>();
        backoff += r.backoff_slot_minutes.iter().sum::<f64>();
    }
    let capacity = wall * slots as f64;
    let finals: Vec<f64> = result
        .status
        .runs
        .iter()
        .filter_map(|r| r.generations.last().map(|g| g.hypervolume))
        .collect();
    ModeTotals {
        evaluations: result.total_evaluations(),
        wall,
        busy,
        idle,
        lost,
        backoff,
        utilization: if capacity > 0.0 { busy / capacity * 100.0 } else { 0.0 },
        hypervolume: if finals.is_empty() {
            0.0
        } else {
            finals.iter().sum::<f64>() / finals.len() as f64
        },
    }
}

/// Run both campaign modes on a matched fixed-slot pool at the same scale,
/// seed, and evaluation budget, and render the comparison as markdown. The
/// numbers are simulated-clock minutes, so the document is deterministic.
fn run_mode_comparison(base: &ExperimentConfig) -> String {
    let mut gen_cfg = base.clone();
    gen_cfg.mode = CampaignMode::Generational;
    gen_cfg.pool.n_workers = FIXED_SLOTS;
    let mut steady_cfg = gen_cfg.clone();
    steady_cfg.mode = CampaignMode::SteadyState;

    println!(
        "mode comparison: {} runs x pop {} x {} generations on {} slots (both modes, seed {})",
        gen_cfg.n_runs,
        gen_cfg.pop_size,
        gen_cfg.generations + 1,
        FIXED_SLOTS,
        gen_cfg.master_seed,
    );
    eprintln!("-- generational campaign --");
    let gen_result = run_and_report(&gen_cfg);
    eprintln!("-- steady-state campaign --");
    let steady_result = run_and_report(&steady_cfg);

    let g = mode_totals(&gen_result, FIXED_SLOTS);
    let s = mode_totals(&steady_result, FIXED_SLOTS);

    let mut md = String::new();
    md.push_str("# Campaign-mode comparison: generational barrier vs steady-state\n\n");
    md.push_str(&format!(
        "Matched pools: {} runs × pop {} × {} generations = {} trainings per mode, \
         {} worker slots, master seed {}, fault probability {}. All minutes are the \
         scheduler's deterministic simulated clock (DESIGN.md §12), summed over every \
         run; utilization is `Σbusy / (Σwall × slots)`; hypervolume is the mean final \
         archive hypervolume over runs against the reference point ({}, {}).\n\n",
        gen_cfg.n_runs,
        gen_cfg.pop_size,
        gen_cfg.generations + 1,
        g.evaluations,
        FIXED_SLOTS,
        gen_cfg.master_seed,
        gen_cfg.fault_probability,
        REFERENCE_POINT.0,
        REFERENCE_POINT.1,
    ));
    md.push_str(
        "| mode | trainings | wall (min) | busy (min) | idle (min) | lost (min) | backoff (min) | utilization | mean final hypervolume |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for (name, t) in [("generational", &g), ("steady-state", &s)] {
        md.push_str(&format!(
            "| {name} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1}% | {:.4e} |\n",
            t.evaluations, t.wall, t.busy, t.idle, t.lost, t.backoff, t.utilization, t.hypervolume,
        ));
    }
    md.push_str(&format!(
        "\nAt an equal evaluation budget the steady-state campaign spends {:.1} idle \
         slot-minutes against the generational barrier's {:.1} ({:.0}% less): a freed \
         slot immediately receives the next bred child instead of waiting for the \
         generation's stragglers. The saving lands on the wall clock — {:.1} vs {:.1} \
         simulated minutes — while utilization rises from {:.1}% to {:.1}%. (Busy \
         minutes differ somewhat between modes: after generation 0 each mode breeds \
         different children, and training cost depends on the genome.)\n",
        s.idle,
        g.idle,
        if g.idle > 0.0 { (1.0 - s.idle / g.idle) * 100.0 } else { 0.0 },
        s.wall,
        g.wall,
        g.utilization,
        s.utilization,
    ));
    if s.idle >= g.idle {
        md.push_str(
            "\n**WARNING:** steady-state idle is not below generational idle at this \
             scale — the saturation argument does not hold here.\n",
        );
    }
    md
}

fn main() {
    validate_flags();
    if has_flag("--list-flags") {
        for (name, _, _) in FLAGS {
            println!("{name}");
        }
        return;
    }

    // Offline journal maintenance: integrity check and compaction run
    // without touching the campaign or any other artifact.
    if let Some(path) = path_arg("--verify-journal") {
        let report = match dphpo_core::journal::verify(&path) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("fig1: cannot verify {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        println!("journal:        {}", path.display());
        println!("format version: {}", report.version);
        println!("frames:         {}", report.frames);
        println!(
            "records:        {} evals, {} generations, {} snapshots",
            report.evals, report.generations, report.snapshots
        );
        match report.last_snapshot {
            Some((run, arrivals)) => {
                println!("last snapshot:  run {run} at {arrivals} arrivals")
            }
            None => println!("last snapshot:  none"),
        }
        println!("valid bytes:    {} of {}", report.valid_len, report.total_len);
        match report.first_corrupt_offset {
            Some(offset) => {
                println!("DAMAGED: first corrupt frame at byte {offset} (run salvage)");
                std::process::exit(1);
            }
            None => println!("integrity:      ok"),
        }
        return;
    }
    if let Some(path) = path_arg("--compact") {
        match dphpo_core::journal::compact(&path) {
            Ok(report) => println!(
                "compacted {}: {} -> {} frames, {} -> {} bytes",
                path.display(),
                report.frames_before,
                report.frames_after,
                report.bytes_before,
                report.bytes_after,
            ),
            Err(e) => {
                eprintln!("fig1: cannot compact {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }

    let steady = has_flag("--steady-state");
    let mut config = experiment_scale();
    if steady {
        config.mode = CampaignMode::SteadyState;
        config.pool.n_workers = FIXED_SLOTS;
    }

    if has_flag("--compare-modes") {
        let md = run_mode_comparison(&config);
        write_artifact("mode_comparison.md", &md);
        print!("{md}");
        return;
    }

    // Steady-state artifacts live under a `steady_` prefix so the
    // generational artifacts every other figure binary consumes are never
    // overwritten by a steady campaign.
    let prefix = if steady { "steady_" } else { "" };
    let row_label = if steady { "epoch" } else { "generation" };

    let trace_path = path_arg("--trace");
    let metrics_path = path_arg("--metrics");
    let recorder = (trace_path.is_some() || metrics_path.is_some())
        .then(|| Arc::new(MemoryRecorder::with_wall_clock()));
    let total = config.n_runs * config.pop_size * (config.generations + 1);
    println!(
        "Figure 1: {} runs x pop {} x {} {row_label}s (0-{}) = {} DNNP trainings{}",
        config.n_runs,
        config.pop_size,
        config.generations + 1,
        config.generations,
        total,
        if steady {
            format!(" [steady-state, {FIXED_SLOTS} slots]")
        } else {
            String::new()
        },
    );
    // Observatory flags: `--status` keeps a live, atomically rewritten
    // campaign_status.json next to the other artifacts; `--report` writes
    // the end-of-run markdown report and the status-derived Chrome counter
    // tracks. Both are deterministic: a killed-and-resumed campaign ends
    // with the same bytes as an uninterrupted one.
    let want_report = has_flag("--report");
    let status_path = (has_flag("--status") || want_report)
        .then(|| results_dir().join(format!("{prefix}campaign_status.json")));
    let profile_dir = path_arg("--profile");
    let rec_arc = recorder.clone().map(|r| r as Arc<dyn Recorder>);
    let default_journal = if steady {
        results_dir().join("steady_experiment.journal.jsonl")
    } else {
        journal_path()
    };
    let result = match resume_arg() {
        Some(journal) => resume_campaign_and_report(
            &config,
            &journal,
            status_path.as_deref(),
            rec_arc,
            profile_dir.as_deref(),
        ),
        None => run_campaign_and_report(
            &config,
            &default_journal,
            status_path.as_deref(),
            rec_arc,
            profile_dir.as_deref(),
        ),
    };
    if steady {
        write_artifact(
            "steady_experiment.json",
            &SavedExperiment::from_result(&result).to_json_string(),
        );
    } else {
        save_experiment(&result);
    }

    // CSV of every individual of every generation (the raw level-plot data).
    let csv = level_plot_csv(&result);
    write_artifact(&format!("{prefix}fig1_levels.csv"), &csv);

    // ASCII density plots, one per generation, aggregated over runs. The
    // paper culls generation-0 outliers (force > 0.6 or energy > 0.03) for
    // clarity; the same limits bound our axes.
    let mut report = String::new();
    report.push_str(&format!(
        "Figure 1: energy (y, eV/atom) vs force (x, eV/AA) losses per {row_label}\n"
    ));
    report.push_str("aggregated over all runs; axis limits match the paper's culled panel\n\n");
    for generation in 0..=config.generations {
        let points: Vec<(f64, f64)> = result
            .runs
            .iter()
            .flat_map(|run| {
                run.history[generation].population.iter().map(|ind| {
                    let f = ind.fitness();
                    (f.get(0), f.get(1))
                })
            })
            .collect();
        let finite = points
            .iter()
            .filter(|(e, f)| e.is_finite() && f.is_finite() && *e < 1e17 && *f < 1e17)
            .count();
        report.push_str(&format!(
            "--- {row_label} {generation} ({} individuals, {} evaluable) ---\n",
            points.len(),
            finite
        ));
        report.push_str(&ascii_level_plot(&points, 0.6, 0.03, 64, 16));
        report.push('\n');
    }

    // §3.1: evaluation-count accounting.
    report.push_str(&format!(
        "total DNNP trainings: {} (paper: 3500 at full scale)\n",
        result.total_evaluations()
    ));
    report.push_str(
        "brute-force grid at 10 points/parameter would need 10^7 = 10,000,000 trainings\n",
    );

    // §3.2: failure accounting ("25 failed trainings spread across all five
    // jobs ... none in the last generation").
    report.push_str(&format!("\nfailed trainings per {row_label} (all runs):\n"));
    let failures = result.failures_per_generation();
    for (generation, count) in failures.iter().enumerate() {
        report.push_str(&format!("  {row_label} {generation}: {count}\n"));
    }
    report.push_str(&format!(
        "total failures: {}; failures in final {row_label}: {}\n",
        failures.iter().sum::<usize>(),
        failures.last().copied().unwrap_or(0)
    ));

    // Supervision breakdown: why evaluations failed (divergence sentinel,
    // deadline, exhausted retries, cancellation) and what the faults cost
    // the scheduler, per generation across all runs.
    report.push_str("\nfailure breakdown (scheduler supervision, all runs):\n");
    report.push_str(&failure_breakdown_table(&result));

    // Search quality per generation: archive hypervolume against the fixed
    // reference point (the level-plot axis limits), one column per run.
    report.push_str(&format!(
        "\narchive hypervolume per {row_label} (reference point: {} eV/atom, {} eV/AA):\n",
        REFERENCE_POINT.0, REFERENCE_POINT.1
    ));
    report.push_str("gen |");
    for run in &result.status.runs {
        report.push_str(&format!("    run {} |", run.run));
    }
    report.push_str("      mean\n");
    for generation in 0..=config.generations {
        report.push_str(&format!("{generation:>3} |"));
        let mut sum = 0.0;
        let mut n = 0usize;
        for run in &result.status.runs {
            match run.generations.get(generation) {
                Some(row) => {
                    report.push_str(&format!(" {:>8.3e} |", row.hypervolume));
                    sum += row.hypervolume;
                    n += 1;
                }
                None => report.push_str(&format!(" {:>8} |", "-")),
            }
        }
        let mean = if n > 0 { sum / n as f64 } else { 0.0 };
        report.push_str(&format!(" {mean:>8.3e}\n"));
    }

    // Steady-state campaigns exist to keep the pool saturated, so their
    // report carries the measured slot accounting (simulated clock).
    if steady {
        let t = mode_totals(&result, config.pool.n_workers);
        report.push_str(&format!(
            "\nslot accounting ({} slots, simulated minutes, all runs):\n  \
             wall {:.1}  busy {:.1}  idle {:.1}  lost {:.1}  backoff {:.1}  utilization {:.1}%\n",
            config.pool.n_workers, t.wall, t.busy, t.idle, t.lost, t.backoff, t.utilization,
        ));
    }

    // Telemetry exports (only when --trace/--metrics was passed): the
    // deterministic snapshot feeds the Chrome trace, the event log, and a
    // per-generation rollup appended to this report. Wall-clock stamps go
    // to a separate side-channel file so the deterministic exports stay
    // bit-identical across runs.
    if let Some(rec) = &recorder {
        let snap = rec.snapshot();
        if let Some(path) = &trace_path {
            write_file(path, &chrome::trace_json(&snap));
        }
        if let Some(path) = &metrics_path {
            write_file(path, &export::events_jsonl(&snap));
            let side = path.with_extension("side.jsonl");
            write_file(&side, &export::side_channel_jsonl(&snap));
        }
        report.push_str(&format!("\ntelemetry rollup (per {row_label}, all runs):\n"));
        report.push_str(&rollup::generation_rollup(&snap));
    }

    // Deterministic profile tables: the journal-derived attribution tree
    // ("where the microsecond goes") and the base configuration's per-phase
    // tape-node step budget — the same data `<dir>/profile.json` carries.
    let profile_tables = profile_dir.as_ref().map(|_| {
        let tree = dphpo_core::profile::campaign_profile(&result);
        let (train, val) = dphpo_core::experiment::build_dataset(&config);
        let budget = dphpo_dnnp::step_budget(&config.base_train_config, &train, &val)
            .expect("step-budget census");
        (dphpo_obs::profile::markdown_table(&tree), budget.markdown())
    });
    if let Some((attribution, budget)) = &profile_tables {
        report.push_str("\nwhere the microsecond goes (sim-clock attribution):\n");
        report.push_str(attribution);
        report.push_str("\nstep budget (tape nodes per phase, base configuration):\n");
        report.push_str(budget);
    }

    // End-of-run campaign report (markdown) plus the status-derived Chrome
    // counter tracks (hypervolume, queue depth, utilization % on the
    // simulated clock — loadable in Perfetto alongside `--trace`). The
    // profile tables ride along only when `--profile` was passed, so the
    // report stays byte-identical for unprofiled campaigns.
    if want_report {
        let mut md = markdown_report(&result.status);
        if let Some((attribution, budget)) = &profile_tables {
            md.push_str("\n## Where the microsecond goes\n\n");
            md.push_str(attribution);
            md.push_str("\n## Step budget\n\n");
            md.push_str(budget);
        }
        write_artifact(&format!("{prefix}campaign_report.md"), &md);
        write_artifact(
            &format!("{prefix}campaign_counters.trace.json"),
            &counter_trace_json(&result.status),
        );
    }

    print!("{report}");
    write_artifact(&format!("{prefix}fig1_report.txt"), &report);
}
