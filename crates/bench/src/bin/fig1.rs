//! Regenerates **Figure 1**: energy-vs-force loss level plots per
//! generation over the five independent EA runs, plus the §3.1/§3.2
//! accounting (total trainings, failures per generation, grid-search
//! comparison).
//!
//! This is the binary that *runs the experiment* and caches the snapshot
//! (`results/experiment.json`) that `fig2_table2`, `fig3`, and `table3`
//! reuse. Pass `--smoke` for a fast test-scale run.
//!
//! Every campaign is journaled to `results/experiment.journal.jsonl`
//! (write-ahead, one JSONL record per completed evaluation or generation).
//! If the run is killed, pass `--resume <journal>` to replay the journaled
//! work and continue to a bit-identical result instead of retraining.
//!
//! Telemetry (off by default, strictly observational):
//!
//! * `--trace out.json` — Chrome `trace_event` JSON (open in Perfetto or
//!   `chrome://tracing`): one process per EA run, one lane per worker,
//!   `eval` spans with nested training-step spans.
//! * `--metrics out.jsonl` — deterministic event/metric log, plus the
//!   wall-clock side channel next to it at `out.side.jsonl`.
//!
//! Either flag also appends a per-generation rollup table to the fig1
//! report. Campaign artifacts (journal, snapshot, figures) are
//! byte-identical with or without telemetry.

use std::path::PathBuf;
use std::sync::Arc;

use dphpo_bench::harness::{
    experiment_scale, journal_path, resume_campaign_and_report, results_dir,
    run_campaign_and_report, save_experiment, write_artifact,
};
use dphpo_core::analysis::{ascii_level_plot, failure_breakdown_table, level_plot_csv};
use dphpo_core::campaign_report::{counter_trace_json, markdown_report, REFERENCE_POINT};
use dphpo_obs::{chrome, export, rollup, MemoryRecorder, Recorder};

/// The path following `flag`, when present.
fn path_arg(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).map(|i| {
        PathBuf::from(
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} requires a path argument")),
        )
    })
}

/// The journal to resume from, when `--resume <path>` was passed.
fn resume_arg() -> Option<PathBuf> {
    path_arg("--resume")
}

/// Whether a bare flag (no argument) was passed.
fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn write_file(path: &PathBuf, content: &str) {
    match std::fs::write(path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

fn main() {
    let config = experiment_scale();
    let trace_path = path_arg("--trace");
    let metrics_path = path_arg("--metrics");
    let recorder = (trace_path.is_some() || metrics_path.is_some())
        .then(|| Arc::new(MemoryRecorder::with_wall_clock()));
    let total = config.n_runs * config.pop_size * (config.generations + 1);
    println!(
        "Figure 1: {} runs x pop {} x {} generations (0-{}) = {} DNNP trainings",
        config.n_runs,
        config.pop_size,
        config.generations + 1,
        config.generations,
        total
    );
    // Observatory flags: `--status` keeps a live, atomically rewritten
    // campaign_status.json next to the other artifacts; `--report` writes
    // the end-of-run markdown report and the status-derived Chrome counter
    // tracks. Both are deterministic: a killed-and-resumed campaign ends
    // with the same bytes as an uninterrupted one.
    let want_report = has_flag("--report");
    let status_path =
        (has_flag("--status") || want_report).then(|| results_dir().join("campaign_status.json"));
    let rec_arc = recorder.clone().map(|r| r as Arc<dyn Recorder>);
    let result = match resume_arg() {
        Some(journal) => {
            resume_campaign_and_report(&config, &journal, status_path.as_deref(), rec_arc)
        }
        None => {
            run_campaign_and_report(&config, &journal_path(), status_path.as_deref(), rec_arc)
        }
    };
    save_experiment(&result);

    // CSV of every individual of every generation (the raw level-plot data).
    let csv = level_plot_csv(&result);
    write_artifact("fig1_levels.csv", &csv);

    // ASCII density plots, one per generation, aggregated over runs. The
    // paper culls generation-0 outliers (force > 0.6 or energy > 0.03) for
    // clarity; the same limits bound our axes.
    let mut report = String::new();
    report.push_str("Figure 1: energy (y, eV/atom) vs force (x, eV/AA) losses per generation\n");
    report.push_str("aggregated over all runs; axis limits match the paper's culled panel\n\n");
    for generation in 0..=config.generations {
        let points: Vec<(f64, f64)> = result
            .runs
            .iter()
            .flat_map(|run| {
                run.history[generation].population.iter().map(|ind| {
                    let f = ind.fitness();
                    (f.get(0), f.get(1))
                })
            })
            .collect();
        let finite = points
            .iter()
            .filter(|(e, f)| e.is_finite() && f.is_finite() && *e < 1e17 && *f < 1e17)
            .count();
        report.push_str(&format!(
            "--- generation {generation} ({} individuals, {} evaluable) ---\n",
            points.len(),
            finite
        ));
        report.push_str(&ascii_level_plot(&points, 0.6, 0.03, 64, 16));
        report.push('\n');
    }

    // §3.1: evaluation-count accounting.
    report.push_str(&format!(
        "total DNNP trainings: {} (paper: 3500 at full scale)\n",
        result.total_evaluations()
    ));
    report.push_str(
        "brute-force grid at 10 points/parameter would need 10^7 = 10,000,000 trainings\n",
    );

    // §3.2: failure accounting ("25 failed trainings spread across all five
    // jobs ... none in the last generation").
    report.push_str("\nfailed trainings per generation (all runs):\n");
    let failures = result.failures_per_generation();
    for (generation, count) in failures.iter().enumerate() {
        report.push_str(&format!("  generation {generation}: {count}\n"));
    }
    report.push_str(&format!(
        "total failures: {}; failures in final generation: {}\n",
        failures.iter().sum::<usize>(),
        failures.last().copied().unwrap_or(0)
    ));

    // Supervision breakdown: why evaluations failed (divergence sentinel,
    // deadline, exhausted retries, cancellation) and what the faults cost
    // the scheduler, per generation across all runs.
    report.push_str("\nfailure breakdown (scheduler supervision, all runs):\n");
    report.push_str(&failure_breakdown_table(&result));

    // Search quality per generation: archive hypervolume against the fixed
    // reference point (the level-plot axis limits), one column per run.
    report.push_str(&format!(
        "\narchive hypervolume per generation (reference point: {} eV/atom, {} eV/AA):\n",
        REFERENCE_POINT.0, REFERENCE_POINT.1
    ));
    report.push_str("gen |");
    for run in &result.status.runs {
        report.push_str(&format!("    run {} |", run.run));
    }
    report.push_str("      mean\n");
    for generation in 0..=config.generations {
        report.push_str(&format!("{generation:>3} |"));
        let mut sum = 0.0;
        let mut n = 0usize;
        for run in &result.status.runs {
            match run.generations.get(generation) {
                Some(row) => {
                    report.push_str(&format!(" {:>8.3e} |", row.hypervolume));
                    sum += row.hypervolume;
                    n += 1;
                }
                None => report.push_str(&format!(" {:>8} |", "-")),
            }
        }
        let mean = if n > 0 { sum / n as f64 } else { 0.0 };
        report.push_str(&format!(" {mean:>8.3e}\n"));
    }

    // Telemetry exports (only when --trace/--metrics was passed): the
    // deterministic snapshot feeds the Chrome trace, the event log, and a
    // per-generation rollup appended to this report. Wall-clock stamps go
    // to a separate side-channel file so the deterministic exports stay
    // bit-identical across runs.
    if let Some(rec) = &recorder {
        let snap = rec.snapshot();
        if let Some(path) = &trace_path {
            write_file(path, &chrome::trace_json(&snap));
        }
        if let Some(path) = &metrics_path {
            write_file(path, &export::events_jsonl(&snap));
            let side = path.with_extension("side.jsonl");
            write_file(&side, &export::side_channel_jsonl(&snap));
        }
        report.push_str("\ntelemetry rollup (per generation, all runs):\n");
        report.push_str(&rollup::generation_rollup(&snap));
    }

    // End-of-run campaign report (markdown) plus the status-derived Chrome
    // counter tracks (hypervolume, queue depth, utilization % on the
    // simulated clock — loadable in Perfetto alongside `--trace`).
    if want_report {
        write_artifact("campaign_report.md", &markdown_report(&result.status));
        write_artifact("campaign_counters.trace.json", &counter_trace_json(&result.status));
    }

    print!("{report}");
    write_artifact("fig1_report.txt", &report);
}
