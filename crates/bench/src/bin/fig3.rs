//! Regenerates **Figure 3**: the parallel-coordinates view of every final
//! solution (hyperparameters, runtime, losses, chemical-accuracy and
//! frontier flags) plus the textual findings §3.2 draws from it.

use dphpo_bench::harness::{load_or_run_experiment, write_artifact};
use dphpo_core::analysis::{analyze, analyze_with_thresholds, CHEM_ACC_ENERGY, CHEM_ACC_FORCE};

fn main() {
    let result = load_or_run_experiment();
    let strict = analyze(&result);

    // The paper's 0.04 eV/AA cutoff sits 12 % above its best observed force
    // RMSE (0.0357). At reduced scale our loss floor differs, so when the
    // strict absolute cutoff admits nothing we additionally report the
    // scale-matched criterion: 1.12 x our own best force RMSE (energy
    // threshold unchanged; our energies are already in the paper's decade).
    let best_force = strict
        .solutions
        .iter()
        .filter(|s| !s.failed)
        .map(|s| s.force_loss)
        .fold(f64::MAX, f64::min);
    let scaled_force = 1.12 * best_force;
    let (analysis, criterion) = if strict.accurate.is_empty() {
        (
            analyze_with_thresholds(&result, scaled_force, CHEM_ACC_ENERGY),
            format!("scale-matched: force < {scaled_force:.4} (=1.12 x best {best_force:.4}), energy < {CHEM_ACC_ENERGY}"),
        )
    } else {
        (strict, format!("paper-absolute: force < {CHEM_ACC_FORCE}, energy < {CHEM_ACC_ENERGY}"))
    };

    write_artifact("fig3_parallel_coordinates.csv", &analysis.parallel_coordinates_csv());

    let mut report = String::new();
    report.push_str("Figure 3 findings (final-generation solution set)\n");
    report.push_str(&format!("chemical-accuracy criterion used: {criterion}\n\n"));
    report.push_str(&format!(
        "solutions: {} total, {} chemically accurate, {} on frontier, {} failed\n\n",
        analysis.solutions.len(),
        analysis.accurate.len(),
        analysis.frontier.len(),
        analysis.solutions.iter().filter(|s| s.failed).count()
    ));

    // §3.2 finding: no accurate solution with small rcut (paper: ≥ 8.5 Å).
    match analysis.min_accurate_rcut() {
        Some(rcut) => report.push_str(&format!(
            "minimum rcut among chemically accurate solutions: {rcut:.2} AA \
             (paper: no accurate solution below 8.5 AA)\n"
        )),
        None => report.push_str("no chemically accurate solutions at this scale\n"),
    }

    // rcut distribution among accurate vs all.
    let rcut_stats = |idx: &[usize]| -> (f64, f64) {
        if idx.is_empty() {
            return (f64::NAN, f64::NAN);
        }
        let values: Vec<f64> =
            idx.iter().map(|&i| analysis.solutions[i].decoded.rcut).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().copied().fold(f64::MAX, f64::min);
        (mean, min)
    };
    let all_idx: Vec<usize> = (0..analysis.solutions.len())
        .filter(|&i| !analysis.solutions[i].failed)
        .collect();
    let (mean_all, _) = rcut_stats(&all_idx);
    let (mean_acc, _) = rcut_stats(&analysis.accurate);
    report.push_str(&format!(
        "mean rcut: {mean_all:.2} AA over all solutions, {mean_acc:.2} AA over accurate ones\n\n"
    ));

    // Activation-function findings.
    report.push_str("descriptor activation counts among accurate solutions:\n");
    for (name, count) in analysis.accurate_activation_counts(true) {
        report.push_str(&format!("  {name:<10} {count}\n"));
    }
    report.push_str("fitting activation counts among accurate solutions:\n");
    for (name, count) in analysis.accurate_activation_counts(false) {
        report.push_str(&format!("  {name:<10} {count}\n"));
    }
    report.push_str(
        "(paper: both relu variants drop out of the fitting net; sigmoid \
         descriptor never chemically accurate)\n\n",
    );

    // LR-scaling finding.
    report.push_str("learning-rate scaling counts among accurate solutions:\n");
    for (name, count) in analysis.accurate_scaling_counts() {
        report.push_str(&format!("  {name:<10} {count}\n"));
    }
    report.push_str(
        "(paper: sqrt and none provide excellent results — more accurate \
         solutions than the default linear scaling)\n\n",
    );

    // Runtime finding ("all under 80 minutes").
    let max_runtime = analysis
        .solutions
        .iter()
        .filter(|s| !s.failed && s.runtime_minutes.is_finite())
        .map(|s| s.runtime_minutes)
        .fold(0.0, f64::max);
    report.push_str(&format!(
        "maximum final-generation runtime: {max_runtime:.1} min (paper: all under 80)\n"
    ));

    // start_lr / stop_lr distributions among accurate solutions.
    if !analysis.accurate.is_empty() {
        let lrs: Vec<f64> =
            analysis.accurate.iter().map(|&i| analysis.solutions[i].decoded.start_lr).collect();
        let stops: Vec<f64> =
            analysis.accurate.iter().map(|&i| analysis.solutions[i].decoded.stop_lr).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        report.push_str(&format!(
            "accurate start_lr: mean {:.4}, min {:.4} (paper mass in 0.002–0.004+; default 0.001)\n",
            mean(&lrs),
            lrs.iter().copied().fold(f64::MAX, f64::min)
        ));
        report.push_str(&format!(
            "accurate stop_lr: mean {:.2e}, min {:.2e} (paper: all above 1e-5; default 1e-8)\n",
            mean(&stops),
            stops.iter().copied().fold(f64::MAX, f64::min)
        ));
    }

    print!("{report}");
    write_artifact("fig3_findings.txt", &report);
}
