//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. σ-annealing (×0.85/generation) on vs off;
//! 2. MAXINT penalty vs silently culling failed evaluations;
//! 3. worker-failure-rate sensitivity of the evaluation pool;
//! 4. Deb vs rank-ordinal sorting inside the full NSGA-II loop.
//!
//! All run on synthetic objectives (ZDT1 / synthetic tasks) so the whole
//! suite finishes in seconds.

use dphpo_bench::harness::write_artifact;
use dphpo_evo::nsga2::{run_nsga2, EvalResult, Nsga2Config};
use dphpo_evo::problems::zdt1;
use dphpo_evo::{
    fast_nondominated_sort, hypervolume_2d, pareto_front, rank_ordinal_sort, Fitness,
};
use dphpo_hpc::{run_batch, EvalOutcome, FaultInjector, PoolConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn zdt1_hv(anneal: f64, seed: u64, failure_rate: f64, penalty: bool) -> f64 {
    let problem = zdt1();
    let config = Nsga2Config {
        pop_size: 32,
        generations: 30,
        init_ranges: problem.bounds(),
        bounds: problem.bounds(),
        std: vec![0.1; problem.dims()],
        anneal_factor: anneal,
    };
    let mut fail_rng = StdRng::seed_from_u64(seed ^ 0xbad);
    let mut evaluator = |genomes: &[Vec<f64>]| {
        genomes
            .iter()
            .map(|g| {
                if failure_rate > 0.0 && fail_rng.random_range(0.0..1.0) < failure_rate {
                    if penalty {
                        return EvalResult::fitness(Fitness::penalty(2));
                    }
                    // "Culling" alternative: a NaN-free worst-but-finite
                    // sentinel that does NOT dominate-sort to the back as
                    // reliably (mimics ad-hoc handling).
                    return EvalResult::fitness(Fitness::new(vec![1.0, 1.0]));
                }
                EvalResult::fitness(Fitness::new(problem.evaluate(g)))
            })
            .collect::<Vec<_>>()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let result = run_nsga2(&config, &mut evaluator, &mut rng);
    let pop = result.final_population();
    let fits: Vec<&Fitness> = pop.iter().filter(|i| !i.is_failed()).map(|i| i.fitness()).collect();
    let front = pareto_front(&fits);
    let pts: Vec<(f64, f64)> = front.iter().map(|&i| (fits[i].get(0), fits[i].get(1))).collect();
    hypervolume_2d(&pts, (11.0, 11.0))
}

fn main() {
    let mut report = String::new();

    // 1. Annealing ablation.
    report.push_str("ablation 1: mutation-sigma annealing (ZDT1, pop 32, 30 gens, 5 seeds)\n");
    for anneal in [1.0, 0.95, 0.85, 0.70] {
        let hvs: Vec<f64> = (0..5).map(|s| zdt1_hv(anneal, s, 0.0, true)).collect();
        let mean = hvs.iter().sum::<f64>() / hvs.len() as f64;
        report.push_str(&format!("  anneal x{anneal:<5} mean final hypervolume {mean:.3}\n"));
    }
    report.push_str("  (the paper's x0.85 trades late-run exploration for exploitation)\n\n");

    // 2. Penalty semantics ablation.
    report.push_str("ablation 2: MAXINT penalty vs worst-finite sentinel (10% failures)\n");
    for (label, penalty) in [("MAXINT penalty", true), ("finite sentinel", false)] {
        let hvs: Vec<f64> = (0..5).map(|s| zdt1_hv(0.95, s, 0.10, penalty)).collect();
        let mean = hvs.iter().sum::<f64>() / hvs.len() as f64;
        report.push_str(&format!("  {label:<18} mean final hypervolume {mean:.3}\n"));
    }
    report.push_str("  (MAXINT guarantees failures sort behind every genuine solution)\n\n");

    // 3. Worker-failure-rate sensitivity.
    report.push_str("ablation 3: pool throughput vs worker-death rate (100 tasks, 10 workers)\n");
    let inputs: Vec<u64> = (0..100).collect();
    for rate in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let config = PoolConfig { n_workers: 10, nanny: false, max_attempts: 5, ..PoolConfig::default() };
        let faults = FaultInjector::new(rate, 11);
        let (records, pool_report) = run_batch(
            &inputs,
            |_, &x| EvalOutcome { value: Ok(x), minutes: 70.0 },
            &config,
            &faults,
        );
        let completed = records.iter().filter(|r| r.value.is_ok()).count();
        report.push_str(&format!(
            "  death rate {rate:<5} completed {completed:>3}/100, deaths {:>2}, retried {:>2}, makespan {:>7.1} min\n",
            pool_report.worker_deaths, pool_report.retried_tasks, pool_report.makespan_minutes
        ));
    }
    report.push_str("  (without nannies the scheduler reassigns; throughput degrades gracefully)\n\n");

    // 4. Sorting algorithm inside the loop (wall time of the sort stage).
    report.push_str("ablation 4: sort algorithm on merged pools of the paper's size\n");
    let mut rng = StdRng::seed_from_u64(3);
    for n in [200usize, 2000] {
        let fits: Vec<Fitness> = (0..n)
            .map(|_| Fitness::new(vec![rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)]))
            .collect();
        let refs: Vec<&Fitness> = fits.iter().collect();
        let reps = 200;
        let t = std::time::Instant::now();
        for _ in 0..reps {
            let _ = fast_nondominated_sort(&refs);
        }
        let deb = t.elapsed().as_secs_f64() / reps as f64;
        let t = std::time::Instant::now();
        for _ in 0..reps {
            let _ = rank_ordinal_sort(&refs);
        }
        let rank = t.elapsed().as_secs_f64() / reps as f64;
        report.push_str(&format!(
            "  N={n:<5} deb {:.3} ms  rank {:.3} ms  ({:.1}x)\n",
            deb * 1e3,
            rank * 1e3,
            deb / rank
        ));
    }

    print!("{report}");
    write_artifact("ablations.txt", &report);
}
