//! Telemetry overhead guard: what the recorder hook costs a training step.
//!
//! The contract the numbers guard: the **disabled** path (no-op recorder,
//! one `enabled()` branch per instrumentation site) must cost less than
//! 2% of a training step, and so must the **profiler-enabled** path (live
//! in-memory recorder plus the allocation metering and per-phase wall
//! twins the deterministic profiler consumes — see DESIGN.md §14). Either
//! budget breached fails the run with a non-zero exit.
//!
//! Two estimators, because they fail differently:
//!
//! * **micro** — the trainer's per-step instrumentation block timed in
//!   isolation, no-op vs live. Nanosecond-stable; `derived_*_overhead_pct`
//!   (block cost over the measured step cost) is the guarded number.
//! * **macro** — steady-state ns/step of whole training runs by
//!   subtraction, unobserved vs no-op vs live. Honest end-to-end, but on a
//!   shared machine its run-to-run jitter (several percent) swamps a
//!   sub-2% effect; it is recorded to catch gross regressions only.
//!
//! Writes `BENCH_obs.json` into the current directory — run from the repo
//! root to refresh the checked-in baseline. `--quick` trades stability for
//! runtime (CI-friendly).

use std::time::Instant;

use dphpo_autograd::Tape;
use dphpo_dnnp::json::Json;
use dphpo_dnnp::supervise::Supervision;
use dphpo_dnnp::{train_supervised, TrainConfig};
use dphpo_md::generate::{generate_dataset, GenConfig};
use dphpo_md::Dataset;
use dphpo_obs::{cats, names, Event, MemoryRecorder, Recorder, SpanCtx, When, NOOP};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Wall time of every thunk per interleaved round (`samples` rounds ×
/// `fns.len()` arms), one warm-up call each first. Interleaving puts slow
/// machine drift on every arm equally; the caller then pairs arms *within*
/// a round, so drift between rounds cancels out of the subtraction instead
/// of landing on it (taking each arm's best over *different* rounds is how
/// the baseline once recorded a negative no-op "cost").
fn time_rounds(samples: usize, fns: &mut [&mut dyn FnMut()]) -> Vec<Vec<f64>> {
    for f in fns.iter_mut() {
        f();
    }
    (0..samples)
        .map(|round| {
            // Alternate the arm order every round (boustrophedon) so any
            // drift *within* a round biases each arm in both directions
            // equally across the sample set.
            let n = fns.len();
            let mut times = vec![0.0; n];
            let order: Vec<usize> =
                if round % 2 == 0 { (0..n).collect() } else { (0..n).rev().collect() };
            for i in order {
                let t = Instant::now();
                fns[i]();
                times[i] = t.elapsed().as_secs_f64();
            }
            times
        })
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn data() -> (Dataset, Dataset) {
    // Same reference system as the hotpath baseline.
    let mut rng = StdRng::seed_from_u64(6);
    let gen = GenConfig { n_frames: 24, ..GenConfig::reduced() };
    let mut ds = generate_dataset(&gen, &mut rng);
    ds.add_label_noise(0.0005, 0.03, &mut rng);
    ds.split(0.25, &mut rng)
}

/// Reference config matching `hotpath`'s dense regime (~17 pairs/atom).
fn config(steps: usize) -> TrainConfig {
    TrainConfig {
        rcut: 11.0,
        rcut_smth: 2.2,
        start_lr: 0.008,
        stop_lr: 1e-4,
        num_steps: steps,
        disp_freq: steps,
        val_max_frames: 2,
        ..TrainConfig::default()
    }
}

fn run_training(steps: usize, train_ds: &Dataset, val_ds: &Dataset, recorder: Option<&dyn Recorder>) {
    let sup = Supervision { recorder, span: SpanCtx::root(7, 0), ..Supervision::none() };
    let mut rng = StdRng::seed_from_u64(7);
    let _ = train_supervised(&config(steps), train_ds, val_ds, &mut rng, &sup).unwrap();
}

/// Nanoseconds per call for a micro block, timed in batches of `reps`
/// (best of `samples`, one warm-up batch first).
fn ns_per_op(samples: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut run = || {
        for _ in 0..reps {
            f();
        }
    };
    run();
    let mut best = f64::MAX;
    for _ in 0..samples {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e9 / reps as f64
}

/// The trainer's per-step instrumentation block, shape-for-shape: the
/// `obs()` resolution, the allocation-metering arm, the gated metric
/// calls (tape allocation stats and per-phase wall twins included), and
/// the `train.step` span. With the no-op recorder the whole block folds
/// to the `enabled()` branches — that is the disabled path whose cost
/// the 2% target bounds. The live arm is the profiler-enabled path:
/// everything the deterministic profiler consumes rides on these calls,
/// so its per-step budget is this block's cost, and it carries the same
/// 2% target.
fn step_block(sup: &Supervision<'_>, tape: &Tape, step: usize, loss: f64) {
    let obs = sup.obs();
    let t0 = obs.map(|_| Instant::now());
    if obs.is_some() && !tape.alloc_metering() {
        tape.set_alloc_metering(true);
    }
    // Phase wall twins, resolved exactly as the trainer does: the graph
    // phase reuses the step timer; backward and optimizer get their own.
    let graph_wall_ns = t0.map(|t0| t0.elapsed().as_nanos() as f64);
    let backward_t0 = obs.map(|_| Instant::now());
    let backward_wall_ns = backward_t0.map(|t0| t0.elapsed().as_nanos() as f64);
    let optimizer_t0 = obs.map(|_| Instant::now());
    let optimizer_wall_ns = optimizer_t0.map(|t0| t0.elapsed().as_nanos() as f64);
    if let Some(rec) = obs {
        rec.counter_add(names::C_STEPS, 1);
        rec.observe(names::H_LOSS, loss);
        rec.observe(names::H_LR, 0.001);
        rec.observe(names::H_GRAD_NORM, 3.2);
        rec.gauge_set(names::G_TAPE_NODES, 1000.0);
        rec.gauge_set(names::G_TAPE_POOLED, 12.0);
        let alloc = tape.take_alloc_stats();
        rec.counter_add(names::C_TAPE_POOL_HITS, alloc.pool_hits);
        rec.counter_add(names::C_TAPE_POOL_MISSES, alloc.pool_misses);
        rec.counter_add(names::C_TAPE_LEASES, alloc.leases);
        rec.gauge_set(names::G_TAPE_LEASED_HW, alloc.leased_bytes_hw as f64);
        rec.gauge_set(names::G_TAPE_RETAINED, tape.retained_bytes() as f64);
        if let Some(t0) = t0 {
            rec.observe(names::H_STEP_WALL_NS, t0.elapsed().as_nanos() as f64);
        }
        if let (Some(g), Some(b), Some(o)) =
            (graph_wall_ns, backward_wall_ns, optimizer_wall_ns)
        {
            rec.observe(names::H_PHASE_GRAPH_WALL_NS, g);
            rec.observe(names::H_PHASE_BACKWARD_WALL_NS, b);
            rec.observe(names::H_PHASE_OPTIMIZER_WALL_NS, o);
        }
        rec.record(Event {
            name: names::TRAIN_STEP,
            cat: cats::TRAIN,
            ctx: sup.span,
            step: Some(step as u64),
            when: When::InTask(loss),
            dur_min: 0.1,
            worker: None,
            args: vec![("loss", loss), ("lr", 0.001), ("grad_norm", 3.2)],
        });
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The subtraction estimator amplifies jitter (it differences two ~K-step
    // wall times), so the full run uses more samples and a longer window
    // than the hotpath baseline does, on top of the interleaved sampling.
    let (samples, k_steps) = if quick { (2, 20) } else { (16, 200) };
    let (train_ds, val_ds) = data();
    let (train_ds, val_ds) = (&train_ds, &val_ds);
    let memory = MemoryRecorder::new();
    let recorders: [Option<&dyn Recorder>; 3] = [None, Some(&NOOP), Some(&memory)];

    // Steady-state ns/step by subtraction: t(2K) − t(K) spans exactly K
    // warm steps, cancelling model setup and descriptor-cache building.
    // All six (recorder × length) arms are sampled in ONE interleaved pass
    // and the subtraction pairs the K- and 2K-step times of the *same*
    // round (median across rounds), so drift between rounds cancels.
    println!(
        "timing {k_steps}- and {}-step runs (unobserved / no-op / MemoryRecorder), \
         interleaved...",
        2 * k_steps
    );
    let mut arms: Vec<Box<dyn FnMut()>> = [k_steps, 2 * k_steps]
        .iter()
        .flat_map(|&steps| {
            recorders.iter().map(move |&rec| {
                Box::new(move || run_training(steps, train_ds, val_ds, rec)) as Box<dyn FnMut()>
            })
        })
        .collect();
    let mut refs: Vec<&mut dyn FnMut()> = arms.iter_mut().map(|b| b.as_mut() as _).collect();
    let rounds = time_rounds(samples, &mut refs);
    drop(arms);

    let n_arms = recorders.len();
    let per_round_diffs =
        |i: usize| rounds.iter().map(|r| r[n_arms + i] - r[i]).collect::<Vec<f64>>();
    let per_step = |i: usize| (median(per_round_diffs(i)).max(0.0) / k_steps as f64) * 1e9;
    let (baseline_ns, noop_ns, memory_ns) = (per_step(0), per_step(1), per_step(2));
    // Honest noise bar for the macro estimator: the median absolute
    // deviation of the baseline arm's per-round differences, as a percent
    // of their median (MAD matches the median estimator and shrugs off the
    // occasional garbage round a range-based bar would amplify). Macro
    // overheads smaller than this are indistinguishable from jitter.
    let base_diffs = per_round_diffs(0);
    let mid = median(base_diffs.clone());
    let mad = median(base_diffs.iter().map(|d| (d - mid).abs()).collect());
    let macro_jitter_pct = mad / mid.max(f64::MIN_POSITIVE) * 100.0;

    println!("timing the per-step instrumentation block in isolation...");
    let (micro_samples, micro_reps) = if quick { (3, 10_000) } else { (7, 200_000) };
    let sup_noop = Supervision { recorder: Some(&NOOP), span: SpanCtx::root(7, 0), ..Supervision::none() };
    let micro_recorder = MemoryRecorder::new();
    let sup_live = Supervision {
        recorder: Some(&micro_recorder),
        span: SpanCtx::root(7, 0),
        ..Supervision::none()
    };
    // Separate tapes per arm: the live arm flips metering on (as the
    // trainer does), the no-op arm must keep the unmetered fast path.
    let tape_noop = Tape::new();
    let tape_live = Tape::new();
    let mut step = 0usize;
    let noop_block_ns = ns_per_op(micro_samples, micro_reps, || {
        step = step.wrapping_add(1);
        step_block(std::hint::black_box(&sup_noop), &tape_noop, step, std::hint::black_box(0.37));
    });
    // Bound the live recorder's buffer: time against a recorder that is
    // drained (recreated) per batch would hide reallocation, so instead the
    // block appends to one recorder and the batch is sized to keep memory
    // modest while still amortizing warm-up.
    let live_reps = micro_reps.min(50_000);
    let memory_block_ns = ns_per_op(micro_samples, live_reps, || {
        step = step.wrapping_add(1);
        step_block(std::hint::black_box(&sup_live), &tape_live, step, std::hint::black_box(0.37));
    });

    let macro_pct = |ns: f64| (ns - baseline_ns) / baseline_ns * 100.0;
    let derived_pct = |block_ns: f64| block_ns / baseline_ns * 100.0;
    let derived_noop_pct = derived_pct(noop_block_ns);
    let derived_memory_pct = derived_pct(memory_block_ns);

    let doc = Json::object(vec![
        ("schema", Json::String("dphpo-obs-v3".into())),
        ("quick", Json::Bool(quick)),
        ("steps_measured", Json::Number(k_steps as f64)),
        ("baseline_ns_per_step", Json::Number(baseline_ns)),
        ("macro_noop_ns_per_step", Json::Number(noop_ns)),
        ("macro_memory_ns_per_step", Json::Number(memory_ns)),
        ("macro_noop_overhead_pct", Json::Number(macro_pct(noop_ns))),
        ("macro_memory_overhead_pct", Json::Number(macro_pct(memory_ns))),
        ("macro_jitter_pct", Json::Number(macro_jitter_pct)),
        ("noop_block_ns_per_step", Json::Number(noop_block_ns)),
        ("memory_block_ns_per_step", Json::Number(memory_block_ns)),
        ("derived_noop_overhead_pct", Json::Number(derived_noop_pct)),
        ("derived_memory_overhead_pct", Json::Number(derived_memory_pct)),
        ("target_noop_overhead_pct", Json::Number(2.0)),
        ("target_profiler_overhead_pct", Json::Number(2.0)),
    ]);
    let path = "BENCH_obs.json";
    std::fs::write(path, format!("{doc}\n")).expect("write baseline");
    println!("wrote {path}");
    println!(
        "macro (paired subtraction; gross-regression guard only, jitter ±{macro_jitter_pct:.2}%):"
    );
    println!("  unobserved:     {:.1} µs/step", baseline_ns / 1e3);
    println!("  no-op recorder: {:.1} µs/step ({:+.2}%)", noop_ns / 1e3, macro_pct(noop_ns));
    println!("  MemoryRecorder: {:.1} µs/step ({:+.2}%)", memory_ns / 1e3, macro_pct(memory_ns));
    println!("micro (per-step instrumentation block; the guarded numbers):");
    println!("  no-op block:    {noop_block_ns:.1} ns/step = {derived_noop_pct:.4}% of a step");
    println!(
        "  profiler block: {memory_block_ns:.1} ns/step = {derived_memory_pct:.4}% of a step"
    );
    let mut failed = false;
    if derived_noop_pct >= 2.0 {
        println!("FAIL: disabled-telemetry overhead {derived_noop_pct:.3}% exceeds the 2% target");
        failed = true;
    }
    if derived_memory_pct >= 2.0 {
        println!(
            "FAIL: profiler-enabled overhead {derived_memory_pct:.3}% exceeds the 2% target"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
