//! Regenerates the §2.1.2 runtime claims: a 40k-step training of the
//! 160-atom system takes under 2 hours on a 6-GPU Summit node versus about
//! 7 days on CPU (≈65× speedup), and the 100-node allocation finishes the
//! whole EA inside its 12-hour walltime.

use dphpo_bench::harness::write_artifact;
use dphpo_hpc::{paper_job, Allocation, CostModel};

fn main() {
    let model = CostModel::default();
    let mut report = String::new();
    report.push_str("S2.1.2 runtime model (paper-scale 40k-step trainings)\n\n");
    report.push_str(&format!(
        "{:>6} {:>12} {:>14} {:>10}\n",
        "rcut", "GPU (min)", "CPU (days)", "speedup"
    ));
    for rcut in [6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0] {
        let job = paper_job(rcut);
        report.push_str(&format!(
            "{rcut:>6.1} {:>12.1} {:>14.2} {:>9.1}x\n",
            model.gpu_minutes_mean(&job),
            model.cpu_minutes_mean(&job) / 60.0 / 24.0,
            model.speedup(&job)
        ));
    }
    report.push_str("\npaper: <2 h on GPU node vs ~7 days on CPU, ~65x per node\n");

    let allocation = Allocation::paper();
    let worst = model.gpu_minutes_mean(&paper_job(12.0));
    report.push_str(&format!(
        "\nallocation: {} nodes x {} GPUs, walltime {} min\n",
        allocation.n_nodes,
        allocation.node.gpus,
        allocation.walltime_minutes
    ));
    report.push_str(&format!(
        "worst-case training {worst:.1} min -> {} sequential generations fit the walltime \
         (7 needed: initial + 6 EA steps)\n",
        allocation.rounds_within_walltime(worst)
    ));

    print!("{report}");
    write_artifact("speedup.txt", &report);
}
