//! Molecular-dynamics integrators: velocity Verlet (NVE) and a BAOAB
//! Langevin thermostat (NVT), in eV/Å/amu/fs units.

use rand::Rng;

use crate::cell::Cell;
use crate::potential::{MeltPotential, Species, KB_EV};

/// Acceleration conversion: 1 eV/Å/amu = `ACC_CONV` Å/fs².
pub const ACC_CONV: f64 = 9.648_533e-3;

/// Kinetic-energy conversion: 1 amu·(Å/fs)² = `KE_CONV` eV.
pub const KE_CONV: f64 = 103.642_7;

/// Mutable state of an MD simulation.
#[derive(Clone, Debug)]
pub struct MdState {
    /// Wrapped positions (Å).
    pub positions: Vec<[f64; 3]>,
    /// Velocities (Å/fs).
    pub velocities: Vec<[f64; 3]>,
    /// Current forces (eV/Å).
    pub forces: Vec<[f64; 3]>,
    /// Current potential energy (eV).
    pub potential_energy: f64,
}

impl MdState {
    /// Initialise from positions with Maxwell–Boltzmann velocities at
    /// `temperature` (K).
    pub fn new<R: Rng + ?Sized>(
        cell: &Cell,
        potential: &MeltPotential,
        species: &[Species],
        positions: Vec<[f64; 3]>,
        temperature: f64,
        rng: &mut R,
    ) -> Self {
        let velocities = maxwell_boltzmann(species, temperature, rng);
        let (potential_energy, forces) = potential.energy_forces(cell, species, &positions);
        MdState { positions, velocities, forces, potential_energy }
    }

    /// Kinetic energy in eV.
    pub fn kinetic_energy(&self, species: &[Species]) -> f64 {
        self.velocities
            .iter()
            .zip(species.iter())
            .map(|(v, s)| {
                0.5 * s.mass() * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]) * KE_CONV
            })
            .sum()
    }

    /// Instantaneous temperature in K.
    pub fn temperature(&self, species: &[Species]) -> f64 {
        let ke = self.kinetic_energy(species);
        2.0 * ke / (3.0 * species.len() as f64 * KB_EV)
    }

    /// Total (kinetic + potential) energy in eV.
    pub fn total_energy(&self, species: &[Species]) -> f64 {
        self.kinetic_energy(species) + self.potential_energy
    }
}

/// Gaussian sample (Marsaglia polar; duplicated from dphpo-evo to keep the
/// crates independent).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Maxwell–Boltzmann velocity draw at `temperature` K with the centre-of-
/// mass drift removed.
pub fn maxwell_boltzmann<R: Rng + ?Sized>(
    species: &[Species],
    temperature: f64,
    rng: &mut R,
) -> Vec<[f64; 3]> {
    let mut v: Vec<[f64; 3]> = species
        .iter()
        .map(|s| {
            let sigma = (KB_EV * temperature / (s.mass() * KE_CONV)).sqrt();
            [sigma * gaussian(rng), sigma * gaussian(rng), sigma * gaussian(rng)]
        })
        .collect();
    // Remove net momentum.
    let total_mass: f64 = species.iter().map(|s| s.mass()).sum();
    for k in 0..3 {
        let p: f64 = v.iter().zip(species).map(|(vi, s)| s.mass() * vi[k]).sum();
        let drift = p / total_mass;
        for vi in &mut v {
            vi[k] -= drift;
        }
    }
    v
}

/// One velocity-Verlet step (NVE), `dt` in fs. Recomputes forces.
#[allow(clippy::needless_range_loop)] // `i` walks four parallel per-atom arrays
pub fn nve_step(
    cell: &Cell,
    potential: &MeltPotential,
    species: &[Species],
    state: &mut MdState,
    dt: f64,
) {
    let n = species.len();
    for i in 0..n {
        let inv_m = ACC_CONV / species[i].mass();
        for k in 0..3 {
            state.velocities[i][k] += 0.5 * dt * state.forces[i][k] * inv_m;
            state.positions[i][k] += dt * state.velocities[i][k];
        }
        state.positions[i] = cell.wrap(state.positions[i]);
    }
    let (e, f) = potential.energy_forces(cell, species, &state.positions);
    state.potential_energy = e;
    state.forces = f;
    for i in 0..n {
        let inv_m = ACC_CONV / species[i].mass();
        for k in 0..3 {
            state.velocities[i][k] += 0.5 * dt * state.forces[i][k] * inv_m;
        }
    }
}

/// One BAOAB Langevin step (NVT): half-kick, half-drift, Ornstein–Uhlenbeck
/// velocity refresh, half-drift, force recompute, half-kick.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // `i` walks four parallel per-atom arrays
pub fn langevin_step<R: Rng + ?Sized>(
    cell: &Cell,
    potential: &MeltPotential,
    species: &[Species],
    state: &mut MdState,
    dt: f64,
    temperature: f64,
    friction: f64,
    rng: &mut R,
) {
    let n = species.len();
    let c1 = (-friction * dt).exp();
    // B + A halves.
    for i in 0..n {
        let inv_m = ACC_CONV / species[i].mass();
        for k in 0..3 {
            state.velocities[i][k] += 0.5 * dt * state.forces[i][k] * inv_m;
            state.positions[i][k] += 0.5 * dt * state.velocities[i][k];
        }
    }
    // O: exact OU solution.
    for i in 0..n {
        let sigma = (KB_EV * temperature / (species[i].mass() * KE_CONV)).sqrt();
        let c2 = sigma * (1.0 - c1 * c1).sqrt();
        for k in 0..3 {
            state.velocities[i][k] = c1 * state.velocities[i][k] + c2 * gaussian(rng);
        }
    }
    // A half, then force refresh, then B half.
    for i in 0..n {
        for k in 0..3 {
            state.positions[i][k] += 0.5 * dt * state.velocities[i][k];
        }
        state.positions[i] = cell.wrap(state.positions[i]);
    }
    let (e, f) = potential.energy_forces(cell, species, &state.positions);
    state.potential_energy = e;
    state.forces = f;
    for i in 0..n {
        let inv_m = ACC_CONV / species[i].mass();
        for k in 0..3 {
            state.velocities[i][k] += 0.5 * dt * state.forces[i][k] * inv_m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::lattice_positions;
    use crate::potential::{melt_composition, shuffled_composition};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_system(seed: u64) -> (Cell, MeltPotential, Vec<Species>, MdState) {
        let cell = Cell::cubic(11.0);
        let potential = MeltPotential::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let species = shuffled_composition(20, &mut rng);
        let positions = lattice_positions(&cell, 20, 0.15, &mut rng);
        let mut state = MdState::new(&cell, &potential, &species, positions, 498.0, &mut rng);
        // Damped small-step warmup off the lattice start (see generate.rs).
        for _ in 0..150 {
            langevin_step(&cell, &potential, &species, &mut state, 0.25, 498.0, 0.5, &mut rng);
        }
        (cell, potential, species, state)
    }

    #[test]
    fn maxwell_boltzmann_temperature_and_momentum() {
        let species = melt_composition(160);
        let mut rng = StdRng::seed_from_u64(1);
        let v = maxwell_boltzmann(&species, 498.0, &mut rng);
        // Net momentum removed.
        for k in 0..3 {
            let p: f64 = v.iter().zip(&species).map(|(vi, s)| s.mass() * vi[k]).sum();
            assert!(p.abs() < 1e-9, "net momentum {p}");
        }
        // Temperature near target (tolerant: 160 atoms, stochastic).
        let ke: f64 = v
            .iter()
            .zip(&species)
            .map(|(vi, s)| 0.5 * s.mass() * (vi[0].powi(2) + vi[1].powi(2) + vi[2].powi(2)) * KE_CONV)
            .sum();
        let t = 2.0 * ke / (3.0 * 160.0 * KB_EV);
        assert!((t - 498.0).abs() < 80.0, "temperature {t}");
    }

    #[test]
    fn nve_conserves_energy() {
        let (cell, potential, species, mut state) = small_system(2);
        // Relax with a few strongly damped Langevin steps first so we start
        // from a reasonable configuration, then measure NVE drift.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            langevin_step(&cell, &potential, &species, &mut state, 0.5, 498.0, 0.05, &mut rng);
        }
        let e0 = state.total_energy(&species);
        for _ in 0..200 {
            nve_step(&cell, &potential, &species, &mut state, 0.25);
        }
        let e1 = state.total_energy(&species);
        let ke = state.kinetic_energy(&species).max(1.0);
        assert!(
            (e1 - e0).abs() < 0.05 * ke,
            "energy drift {} vs kinetic scale {ke}",
            e1 - e0
        );
    }

    #[test]
    fn langevin_equilibrates_to_target_temperature() {
        let (cell, potential, species, mut state) = small_system(4);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..600 {
            langevin_step(&cell, &potential, &species, &mut state, 1.0, 498.0, 0.02, &mut rng);
        }
        // Average over a window to smooth instantaneous fluctuation.
        let mut t_sum = 0.0;
        let window = 400;
        for _ in 0..window {
            langevin_step(&cell, &potential, &species, &mut state, 1.0, 498.0, 0.02, &mut rng);
            t_sum += state.temperature(&species);
        }
        let t_avg = t_sum / window as f64;
        assert!(
            (t_avg - 498.0).abs() < 150.0,
            "thermostat failed to hold 498 K: got {t_avg}"
        );
    }

    #[test]
    fn positions_stay_wrapped() {
        let (cell, potential, species, mut state) = small_system(6);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            langevin_step(&cell, &potential, &species, &mut state, 1.0, 498.0, 0.02, &mut rng);
        }
        for p in &state.positions {
            for c in p.iter() {
                assert!((0.0..cell.length()).contains(c));
            }
        }
    }

    #[test]
    fn atoms_do_not_fuse() {
        // The repulsive core must keep unlike ions from collapsing.
        let (cell, potential, species, mut state) = small_system(8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            langevin_step(&cell, &potential, &species, &mut state, 1.0, 498.0, 0.02, &mut rng);
        }
        let mut min_r = f64::MAX;
        for i in 0..species.len() {
            for j in (i + 1)..species.len() {
                min_r = min_r.min(cell.distance(state.positions[i], state.positions[j]));
            }
        }
        assert!(min_r > 1.2, "ions fused: min pair distance {min_r}");
    }
}
