//! Minimal NumPy `.npy` (format version 1.0) reader/writer for
//! little-endian `f64` arrays — the paper's in-house scripts convert the
//! CP2K trajectory into "energy, force, box values in Numpy arrays" for
//! DeePMD, and [`crate::export`] reproduces that artifact byte-for-byte
//! loadable by `numpy.load`.

/// A dense row-major f64 array with an arbitrary shape.
#[derive(Clone, Debug, PartialEq)]
pub struct NpyArray {
    /// Dimension sizes.
    pub shape: Vec<usize>,
    /// Row-major data; length = product of `shape`.
    pub data: Vec<f64>,
}

impl NpyArray {
    /// Construct, checking shape/data consistency.
    pub fn new(shape: Vec<usize>, data: Vec<f64>) -> Result<Self, String> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(format!(
                "shape {shape:?} expects {expected} elements, got {}",
                data.len()
            ));
        }
        Ok(NpyArray { shape, data })
    }

    /// Serialise into `.npy` bytes (format 1.0, `<f8`, C order).
    pub fn to_bytes(&self) -> Vec<u8> {
        let shape_str = match self.shape.len() {
            0 => "()".to_string(),
            1 => format!("({},)", self.shape[0]),
            _ => format!(
                "({})",
                self.shape.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(", ")
            ),
        };
        let mut header = format!(
            "{{'descr': '<f8', 'fortran_order': False, 'shape': {shape_str}, }}"
        );
        // Pad with spaces so that magic(6)+version(2)+len(2)+header is a
        // multiple of 64, ending in a newline (the format's requirement).
        let unpadded = 6 + 2 + 2 + header.len() + 1;
        let padding = (64 - unpadded % 64) % 64;
        header.push_str(&" ".repeat(padding));
        header.push('\n');

        let mut out = Vec::with_capacity(10 + header.len() + self.data.len() * 8);
        out.extend_from_slice(b"\x93NUMPY");
        out.push(1); // major
        out.push(0); // minor
        out.extend_from_slice(&(header.len() as u16).to_le_bytes());
        out.extend_from_slice(header.as_bytes());
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parse `.npy` bytes (format 1.0/2.0, `<f8`, C order only).
    pub fn from_bytes(bytes: &[u8]) -> Result<NpyArray, String> {
        if bytes.len() < 10 || &bytes[..6] != b"\x93NUMPY" {
            return Err("not an .npy file".into());
        }
        let major = bytes[6];
        let (header_len, header_start) = match major {
            1 => (u16::from_le_bytes([bytes[8], bytes[9]]) as usize, 10),
            2 => {
                if bytes.len() < 12 {
                    return Err("truncated v2 header".into());
                }
                (
                    u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize,
                    12,
                )
            }
            v => return Err(format!("unsupported npy version {v}")),
        };
        let header_end = header_start + header_len;
        if bytes.len() < header_end {
            return Err("truncated header".into());
        }
        let header = std::str::from_utf8(&bytes[header_start..header_end])
            .map_err(|_| "non-UTF8 header".to_string())?;
        if !header.contains("'<f8'") {
            return Err(format!("unsupported dtype in header: {header}"));
        }
        if header.contains("'fortran_order': True") {
            return Err("fortran order unsupported".into());
        }
        let shape_part = header
            .split("'shape':")
            .nth(1)
            .ok_or("missing shape")?
            .trim_start()
            .strip_prefix('(')
            .ok_or("malformed shape")?;
        let inner: &str = shape_part.split(')').next().ok_or("malformed shape")?;
        let shape: Vec<usize> = inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| s.parse::<usize>().map_err(|_| format!("bad dim '{s}'")))
            .collect::<Result<_, _>>()?;
        let count: usize = shape.iter().product();
        let body = &bytes[header_end..];
        if body.len() < count * 8 {
            return Err(format!("expected {} data bytes, got {}", count * 8, body.len()));
        }
        let data = body[..count * 8]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(NpyArray { shape, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_1d_and_2d() {
        for shape in [vec![5], vec![2, 3], vec![4, 3]] {
            let count: usize = shape.iter().product();
            let data: Vec<f64> = (0..count).map(|i| i as f64 * 1.5 - 3.0).collect();
            let arr = NpyArray::new(shape.clone(), data.clone()).unwrap();
            let bytes = arr.to_bytes();
            let back = NpyArray::from_bytes(&bytes).unwrap();
            assert_eq!(back.shape, shape);
            assert_eq!(back.data, data);
        }
    }

    #[test]
    fn header_is_64_byte_aligned_and_magic_correct() {
        let arr = NpyArray::new(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let bytes = arr.to_bytes();
        assert_eq!(&bytes[..6], b"\x93NUMPY");
        assert_eq!(bytes[6], 1);
        let header_len = u16::from_le_bytes([bytes[8], bytes[9]]) as usize;
        assert_eq!((10 + header_len) % 64, 0, "numpy requires 64-byte alignment");
        // Header ends with newline per the spec.
        assert_eq!(bytes[10 + header_len - 1], b'\n');
    }

    #[test]
    fn rejects_garbage() {
        assert!(NpyArray::from_bytes(b"hello world").is_err());
        assert!(NpyArray::from_bytes(b"").is_err());
        let arr = NpyArray::new(vec![2], vec![1.0, 2.0]).unwrap();
        let mut bytes = arr.to_bytes();
        bytes.truncate(bytes.len() - 4); // cut into the data section
        assert!(NpyArray::from_bytes(&bytes).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(NpyArray::new(vec![3, 3], vec![0.0; 8]).is_err());
    }

    #[test]
    fn special_values_round_trip() {
        let data = vec![f64::MAX, f64::MIN_POSITIVE, -0.0, 1e-300];
        let arr = NpyArray::new(vec![4], data.clone()).unwrap();
        let back = NpyArray::from_bytes(&arr.to_bytes()).unwrap();
        assert_eq!(back.data, data);
    }
}
