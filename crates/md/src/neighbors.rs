//! Neighbor-pair enumeration under periodic boundary conditions.
//!
//! Two strategies are provided: a brute-force O(N²) minimum-image scan
//! (exact for any cutoff, the right tool at the paper's 160-atom scale) and
//! a linked-cell list that is O(N) when the cutoff is small relative to the
//! box. Both produce identical directed pair lists (tested).

use crate::cell::Cell;

/// A directed neighbor pair `i → j` within the cutoff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pair {
    /// Central atom index.
    pub i: usize,
    /// Neighbor atom index.
    pub j: usize,
    /// Minimum-image displacement `r_j − r_i`.
    pub disp: [f64; 3],
    /// Distance `|disp|`.
    pub r: f64,
}

/// Directed pairs (both `i→j` and `j→i`) with `0 < r < rcut`, brute force.
pub fn pairs_brute_force(cell: &Cell, positions: &[[f64; 3]], rcut: f64) -> Vec<Pair> {
    assert!(rcut > 0.0, "non-positive cutoff");
    let n = positions.len();
    let rcut2 = rcut * rcut;
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = cell.min_image(positions[i], positions[j]);
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            if r2 < rcut2 && r2 > 0.0 {
                let r = r2.sqrt();
                pairs.push(Pair { i, j, disp: d, r });
                pairs.push(Pair { i: j, j: i, disp: [-d[0], -d[1], -d[2]], r });
            }
        }
    }
    pairs
}

/// Linked-cell neighbor search. Falls back to [`pairs_brute_force`] when the
/// box is too small to host a 3×3×3 cell grid at this cutoff (the paper's
/// regime: rcut up to 12 Å in a 17.84 Å box).
pub fn pairs_cell_list(cell: &Cell, positions: &[[f64; 3]], rcut: f64) -> Vec<Pair> {
    assert!(rcut > 0.0, "non-positive cutoff");
    let l = cell.length();
    let m = (l / rcut).floor() as usize;
    if m < 3 {
        return pairs_brute_force(cell, positions, rcut);
    }
    let cell_len = l / m as f64;
    let cell_of = |p: [f64; 3]| -> [usize; 3] {
        let w = cell.wrap(p);
        let mut c = [0usize; 3];
        for k in 0..3 {
            c[k] = ((w[k] / cell_len) as usize).min(m - 1);
        }
        c
    };
    let idx = |c: [usize; 3]| -> usize { (c[0] * m + c[1]) * m + c[2] };

    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); m * m * m];
    for (a, &p) in positions.iter().enumerate() {
        bins[idx(cell_of(p))].push(a);
    }

    let rcut2 = rcut * rcut;
    let mut pairs = Vec::new();
    for cx in 0..m {
        for cy in 0..m {
            for cz in 0..m {
                let home = &bins[idx([cx, cy, cz])];
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dz in -1i64..=1 {
                            let nb = [
                                ((cx as i64 + dx).rem_euclid(m as i64)) as usize,
                                ((cy as i64 + dy).rem_euclid(m as i64)) as usize,
                                ((cz as i64 + dz).rem_euclid(m as i64)) as usize,
                            ];
                            let other = &bins[idx(nb)];
                            for &i in home {
                                for &j in other {
                                    if i == j {
                                        continue;
                                    }
                                    let d = cell.min_image(positions[i], positions[j]);
                                    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                                    if r2 < rcut2 && r2 > 0.0 {
                                        pairs.push(Pair { i, j, disp: d, r: r2.sqrt() });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // With periodic wrap-around and m == 3 the same neighbor cell can be
    // visited from more than one offset; deduplicate.
    pairs.sort_unstable_by_key(|a| (a.i, a.j));
    pairs.dedup_by(|a, b| a.i == b.i && a.j == b.j);
    pairs
}

/// Sorted copy of a pair list for order-insensitive comparisons.
pub fn sorted_pairs(mut pairs: Vec<Pair>) -> Vec<Pair> {
    pairs.sort_unstable_by_key(|a| (a.i, a.j));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_positions(n: usize, l: f64, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| [rng.random_range(0.0..l), rng.random_range(0.0..l), rng.random_range(0.0..l)])
            .collect()
    }

    #[test]
    fn brute_force_pairs_are_symmetric() {
        let cell = Cell::cubic(10.0);
        let pos = random_positions(20, 10.0, 1);
        let pairs = pairs_brute_force(&cell, &pos, 4.0);
        assert_eq!(pairs.len() % 2, 0);
        for p in &pairs {
            assert!(pairs.iter().any(|q| q.i == p.j && q.j == p.i));
            assert!(p.r < 4.0 && p.r > 0.0);
        }
    }

    #[test]
    fn pair_across_boundary_found() {
        let cell = Cell::cubic(10.0);
        let pos = vec![[0.5, 5.0, 5.0], [9.5, 5.0, 5.0]];
        let pairs = pairs_brute_force(&cell, &pos, 2.0);
        assert_eq!(pairs.len(), 2);
        assert!((pairs[0].r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cell_list_matches_brute_force_small_cutoff() {
        let cell = Cell::cubic(12.0);
        let pos = random_positions(60, 12.0, 7);
        for rcut in [2.0, 3.0, 3.9] {
            let a = sorted_pairs(pairs_brute_force(&cell, &pos, rcut));
            let b = sorted_pairs(pairs_cell_list(&cell, &pos, rcut));
            assert_eq!(a.len(), b.len(), "rcut {rcut}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!((x.i, x.j), (y.i, y.j));
                assert!((x.r - y.r).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cell_list_falls_back_for_large_cutoff() {
        // rcut 6 in a 12 box → m = 2 < 3 → brute-force fallback, still exact.
        let cell = Cell::cubic(12.0);
        let pos = random_positions(30, 12.0, 3);
        let a = sorted_pairs(pairs_brute_force(&cell, &pos, 6.0));
        let b = sorted_pairs(pairs_cell_list(&cell, &pos, 6.0));
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_pairs_even_for_duplicate_positions() {
        let cell = Cell::cubic(10.0);
        let pos = vec![[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]];
        let pairs = pairs_brute_force(&cell, &pos, 3.0);
        // Identical positions have r = 0 and are skipped (r² > 0 filter).
        assert!(pairs.is_empty());
    }

    #[test]
    fn larger_cutoff_never_loses_pairs() {
        let cell = Cell::cubic(17.84);
        let pos = random_positions(40, 17.84, 11);
        let small = pairs_brute_force(&cell, &pos, 6.0);
        let large = pairs_brute_force(&cell, &pos, 12.0);
        assert!(large.len() >= small.len());
        let large_set: std::collections::HashSet<(usize, usize)> =
            large.iter().map(|p| (p.i, p.j)).collect();
        for p in &small {
            assert!(large_set.contains(&(p.i, p.j)));
        }
    }
}
