//! DeePMD data-directory export — the paper's §2.1.3 conversion step:
//! "converted to input data formats compatible with DeePMD (energy, force,
//! box values in Numpy arrays) using in-house scripts".
//!
//! Layout produced (DeePMD "System" convention):
//!
//! ```text
//! <root>/
//!   type.raw            # species index per atom, one per line
//!   type_map.raw        # species names in index order
//!   set.000/
//!     coord.npy         # [n_frames, 3·n_atoms]
//!     energy.npy        # [n_frames]
//!     force.npy         # [n_frames, 3·n_atoms]
//!     box.npy           # [n_frames, 9] (flattened 3×3 cell)
//! ```

use std::path::Path;

use crate::generate::Dataset;
use crate::npy::NpyArray;
use crate::potential::Species;

/// Build the four arrays in memory (frames × flattened per-frame data).
pub fn dataset_arrays(dataset: &Dataset) -> (NpyArray, NpyArray, NpyArray, NpyArray) {
    let n_frames = dataset.n_frames();
    let n_atoms = dataset.n_atoms();
    let mut coord = Vec::with_capacity(n_frames * n_atoms * 3);
    let mut force = Vec::with_capacity(n_frames * n_atoms * 3);
    let mut energy = Vec::with_capacity(n_frames);
    let mut boxes = Vec::with_capacity(n_frames * 9);
    let l = dataset.cell.length();
    for frame in &dataset.frames {
        coord.extend(frame.positions.iter().flatten().copied());
        force.extend(frame.forces.iter().flatten().copied());
        energy.push(frame.energy);
        boxes.extend_from_slice(&[l, 0.0, 0.0, 0.0, l, 0.0, 0.0, 0.0, l]);
    }
    (
        NpyArray::new(vec![n_frames, n_atoms * 3], coord).expect("coord shape"),
        NpyArray::new(vec![n_frames], energy).expect("energy shape"),
        NpyArray::new(vec![n_frames, n_atoms * 3], force).expect("force shape"),
        NpyArray::new(vec![n_frames, 9], boxes).expect("box shape"),
    )
}

/// Write a DeePMD-layout data directory.
pub fn write_deepmd_dir(dataset: &Dataset, root: &Path) -> Result<(), String> {
    let set_dir = root.join("set.000");
    std::fs::create_dir_all(&set_dir).map_err(|e| e.to_string())?;

    let type_raw: String = dataset
        .species
        .iter()
        .map(|s| format!("{}\n", s.index()))
        .collect();
    std::fs::write(root.join("type.raw"), type_raw).map_err(|e| e.to_string())?;
    let type_map: String = Species::ALL.iter().map(|s| format!("{s:?}\n")).collect();
    std::fs::write(root.join("type_map.raw"), type_map).map_err(|e| e.to_string())?;

    let (coord, energy, force, boxes) = dataset_arrays(dataset);
    for (name, arr) in [
        ("coord.npy", &coord),
        ("energy.npy", &energy),
        ("force.npy", &force),
        ("box.npy", &boxes),
    ] {
        std::fs::write(set_dir.join(name), arr.to_bytes()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Read a DeePMD-layout directory back into a [`Dataset`].
pub fn read_deepmd_dir(root: &Path) -> Result<Dataset, String> {
    let set_dir = root.join("set.000");
    let load = |name: &str| -> Result<NpyArray, String> {
        let bytes = std::fs::read(set_dir.join(name)).map_err(|e| format!("{name}: {e}"))?;
        NpyArray::from_bytes(&bytes).map_err(|e| format!("{name}: {e}"))
    };
    let coord = load("coord.npy")?;
    let energy = load("energy.npy")?;
    let force = load("force.npy")?;
    let boxes = load("box.npy")?;

    let type_raw =
        std::fs::read_to_string(root.join("type.raw")).map_err(|e| e.to_string())?;
    let species: Vec<Species> = type_raw
        .lines()
        .map(|line| {
            line.trim()
                .parse::<usize>()
                .ok()
                .and_then(|i| Species::ALL.get(i).copied())
                .ok_or_else(|| format!("bad type.raw line '{line}'"))
        })
        .collect::<Result<_, _>>()?;

    let n_frames = energy.shape[0];
    let n_atoms = species.len();
    if coord.shape != vec![n_frames, n_atoms * 3] || force.shape != coord.shape {
        return Err("coord/force shape mismatch with type.raw".into());
    }
    let box_len = boxes.data.first().copied().ok_or("empty box array")?;
    let cell = crate::cell::Cell::cubic(box_len);

    let frames = (0..n_frames)
        .map(|f| {
            let chunk = &coord.data[f * n_atoms * 3..(f + 1) * n_atoms * 3];
            let positions = chunk.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
            let fchunk = &force.data[f * n_atoms * 3..(f + 1) * n_atoms * 3];
            let forces = fchunk.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
            crate::generate::Frame { positions, energy: energy.data[f], forces }
        })
        .collect();
    Ok(Dataset { cell, species, frames })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_dataset, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dphpo-export-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn arrays_have_deepmd_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 4;
        let ds = generate_dataset(&gen, &mut rng);
        let (coord, energy, force, boxes) = dataset_arrays(&ds);
        assert_eq!(coord.shape, vec![4, 60]);
        assert_eq!(energy.shape, vec![4]);
        assert_eq!(force.shape, vec![4, 60]);
        assert_eq!(boxes.shape, vec![4, 9]);
        // Diagonal box entries carry the cell length.
        assert_eq!(boxes.data[0], ds.cell.length());
        assert_eq!(boxes.data[4], ds.cell.length());
        assert_eq!(boxes.data[1], 0.0);
    }

    #[test]
    fn directory_round_trips_exactly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 3;
        let ds = generate_dataset(&gen, &mut rng);
        let dir = tmp_dir("roundtrip");
        write_deepmd_dir(&ds, &dir).unwrap();
        assert!(dir.join("set.000/coord.npy").exists());
        assert!(dir.join("type.raw").exists());
        let back = read_deepmd_dir(&dir).unwrap();
        assert_eq!(back.species, ds.species);
        assert_eq!(back.n_frames(), ds.n_frames());
        for (a, b) in back.frames.iter().zip(ds.frames.iter()) {
            assert_eq!(a.energy, b.energy);
            assert_eq!(a.positions, b.positions);
            assert_eq!(a.forces, b.forces);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_rejects_inconsistent_directory() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 2;
        let ds = generate_dataset(&gen, &mut rng);
        let dir = tmp_dir("inconsistent");
        write_deepmd_dir(&ds, &dir).unwrap();
        // Corrupt type.raw so atom counts disagree with coord.npy.
        std::fs::write(dir.join("type.raw"), "0\n1\n").unwrap();
        assert!(read_deepmd_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
