//! Extended-XYZ trajectory I/O: the lingua franca for inspecting
//! molecular-dynamics output in standard viewers (OVITO, VMD, ASE). Each
//! frame carries the cell, energy, and per-atom forces in the comment-line
//! key/value convention.

use std::fmt::Write as _;

use crate::cell::Cell;
use crate::generate::{Dataset, Frame};
use crate::potential::Species;

fn species_symbol(s: Species) -> &'static str {
    match s {
        Species::Al => "Al",
        Species::K => "K",
        Species::Cl => "Cl",
    }
}

fn species_from_symbol(sym: &str) -> Option<Species> {
    match sym {
        "Al" => Some(Species::Al),
        "K" => Some(Species::K),
        "Cl" => Some(Species::Cl),
        _ => None,
    }
}

/// Render a dataset as extended-XYZ text (all frames concatenated).
pub fn to_extxyz(dataset: &Dataset) -> String {
    let mut out = String::new();
    let l = dataset.cell.length();
    for frame in &dataset.frames {
        let _ = writeln!(out, "{}", dataset.n_atoms());
        let _ = writeln!(
            out,
            "Lattice=\"{l} 0.0 0.0 0.0 {l} 0.0 0.0 0.0 {l}\" \
             Properties=species:S:1:pos:R:3:forces:R:3 energy={:.10}",
            frame.energy
        );
        for (s, (p, f)) in dataset
            .species
            .iter()
            .zip(frame.positions.iter().zip(frame.forces.iter()))
        {
            let _ = writeln!(
                out,
                "{} {:.8} {:.8} {:.8} {:.8} {:.8} {:.8}",
                species_symbol(*s),
                p[0],
                p[1],
                p[2],
                f[0],
                f[1],
                f[2]
            );
        }
    }
    out
}

/// Parse extended-XYZ text produced by [`to_extxyz`].
pub fn from_extxyz(text: &str) -> Result<Dataset, String> {
    let mut lines = text.lines().peekable();
    let mut species: Option<Vec<Species>> = None;
    let mut cell: Option<Cell> = None;
    let mut frames = Vec::new();

    while let Some(count_line) = lines.next() {
        let count_line = count_line.trim();
        if count_line.is_empty() {
            continue;
        }
        let n: usize = count_line
            .parse()
            .map_err(|_| format!("bad atom count '{count_line}'"))?;
        let header = lines.next().ok_or("missing comment line")?;

        // Cell from Lattice="lx 0 0 0 ly 0 0 0 lz".
        let lattice = header
            .split("Lattice=\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .ok_or("missing Lattice")?;
        let entries: Vec<f64> = lattice
            .split_whitespace()
            .map(|v| v.parse::<f64>().map_err(|_| format!("bad lattice entry '{v}'")))
            .collect::<Result<_, _>>()?;
        if entries.len() != 9 {
            return Err("lattice must have 9 entries".into());
        }
        let this_cell = Cell::cubic(entries[0]);
        if let Some(c) = cell {
            if (c.length() - this_cell.length()).abs() > 1e-9 {
                return Err("mixed cells unsupported".into());
            }
        }
        cell = Some(this_cell);

        let energy: f64 = header
            .split("energy=")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .ok_or("missing energy")?
            .parse()
            .map_err(|_| "bad energy value".to_string())?;

        let mut frame_species = Vec::with_capacity(n);
        let mut positions = Vec::with_capacity(n);
        let mut forces = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines.next().ok_or("truncated frame")?;
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 7 {
                return Err(format!("expected 7 columns, got {}", fields.len()));
            }
            frame_species.push(
                species_from_symbol(fields[0])
                    .ok_or_else(|| format!("unknown species '{}'", fields[0]))?,
            );
            let mut nums = [0.0f64; 6];
            for (k, v) in fields[1..].iter().enumerate() {
                nums[k] = v.parse().map_err(|_| format!("bad number '{v}'"))?;
            }
            positions.push([nums[0], nums[1], nums[2]]);
            forces.push([nums[3], nums[4], nums[5]]);
        }
        match &species {
            None => species = Some(frame_species),
            Some(existing) => {
                if *existing != frame_species {
                    return Err("species changed between frames".into());
                }
            }
        }
        frames.push(Frame { positions, energy, forces });
    }

    Ok(Dataset {
        cell: cell.ok_or("no frames found")?,
        species: species.unwrap_or_default(),
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_dataset, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn extxyz_round_trips() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 3;
        let ds = generate_dataset(&gen, &mut rng);
        let text = to_extxyz(&ds);
        let back = from_extxyz(&text).unwrap();
        assert_eq!(back.species, ds.species);
        assert_eq!(back.n_frames(), 3);
        assert!((back.cell.length() - ds.cell.length()).abs() < 1e-9);
        for (a, b) in back.frames.iter().zip(ds.frames.iter()) {
            assert!((a.energy - b.energy).abs() < 1e-9);
            for (pa, pb) in a.positions.iter().zip(b.positions.iter()) {
                for k in 0..3 {
                    assert!((pa[k] - pb[k]).abs() < 1e-7);
                }
            }
        }
    }

    #[test]
    fn frame_shape_is_viewer_compatible() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 1;
        gen.n_atoms = 10;
        let ds = generate_dataset(&gen, &mut rng);
        let text = to_extxyz(&ds);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0].trim(), "10");
        assert!(lines[1].contains("Lattice="));
        assert!(lines[1].contains("Properties=species:S:1:pos:R:3:forces:R:3"));
        assert_eq!(lines.len(), 12); // count + comment + 10 atoms
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(from_extxyz("not a number\n").is_err());
        assert!(from_extxyz("2\nmissing lattice line\nAl 0 0 0 0 0 0\n").is_err());
        assert!(from_extxyz("").is_err());
        // Truncated atom block.
        let text = "2\nLattice=\"5 0 0 0 5 0 0 0 5\" energy=1.0\nAl 0 0 0 0 0 0\n";
        assert!(from_extxyz(text).is_err());
    }
}
