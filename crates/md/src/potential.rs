//! The classical reference potential that stands in for CP2K DFT.
//!
//! The paper's ground truth is first-principles molecular dynamics of a
//! molten 66.7 % AlCl₃ / 33.3 % KCl mixture. We substitute a Born–Mayer–
//! Huggins-style ionic melt model: exponential short-range repulsion plus a
//! Yukawa-screened Coulomb interaction,
//!
//! ```text
//! U_ij(r) = B_ij · exp((σ_ij − r)/ρ)  +  k_e·q_i·q_j / r · exp(−r/λ)
//! ```
//!
//! The screened Coulomb term leaves genuine, configuration-dependent energy
//! in the 6–9 Å shell, which is what couples the learned potential's
//! accuracy to the `rcut` hyperparameter the way the paper observes
//! (no chemically accurate model below rcut ≈ 8.5 Å).
//!
//! Units: eV, Å, amu, elementary charge. `k_e = e²/(4πε₀) = 14.3996 eV·Å`.

use crate::cell::Cell;

/// Coulomb constant in eV·Å per elementary-charge².
pub const COULOMB_EV_A: f64 = 14.399_645;

/// Boltzmann constant in eV/K.
pub const KB_EV: f64 = 8.617_333e-5;

/// Ion species in the molten AlCl₃–KCl system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Species {
    /// Aluminium, +3.
    Al,
    /// Potassium, +1.
    K,
    /// Chloride, −1.
    Cl,
}

impl Species {
    /// Formal ionic charge in units of `e`.
    pub fn charge(&self) -> f64 {
        match self {
            Species::Al => 3.0,
            Species::K => 1.0,
            Species::Cl => -1.0,
        }
    }

    /// Atomic mass in amu.
    pub fn mass(&self) -> f64 {
        match self {
            Species::Al => 26.982,
            Species::K => 39.098,
            Species::Cl => 35.453,
        }
    }

    /// Effective ionic radius in Å (sets the repulsive contact distance).
    pub fn radius(&self) -> f64 {
        match self {
            Species::Al => 1.00,
            Species::K => 1.52,
            Species::Cl => 1.81,
        }
    }

    /// Repulsion prefactor contribution (combined geometrically per pair).
    pub fn softness(&self) -> f64 {
        match self {
            Species::Al => 6.0,
            Species::K => 2.0,
            Species::Cl => 2.0,
        }
    }

    /// Dense species index used by descriptors and datasets.
    pub fn index(&self) -> usize {
        match self {
            Species::Al => 0,
            Species::K => 1,
            Species::Cl => 2,
        }
    }

    /// Number of species in the system.
    pub const COUNT: usize = 3;

    /// All species, ordered by [`Species::index`].
    pub const ALL: [Species; 3] = [Species::Al, Species::K, Species::Cl];
}

/// [`melt_composition`] shuffled with the given RNG, so that consecutive
/// lattice sites get mixed species (a block of adjacent +3 ions makes the
/// starting configuration explosively repulsive).
pub fn shuffled_composition<R: rand::Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Species> {
    let mut species = melt_composition(n);
    for i in (1..species.len()).rev() {
        let j = rng.random_range(0..=i);
        species.swap(i, j);
    }
    species
}

/// The paper's composition: 66.7 % AlCl₃ / 33.3 % KCl with 160 atoms is
/// 32 Al³⁺, 16 K⁺, 112 Cl⁻ (charge neutral). This returns that species list
/// scaled to `n` atoms (n must be a multiple of 10).
pub fn melt_composition(n: usize) -> Vec<Species> {
    assert!(n >= 10 && n.is_multiple_of(10), "composition requires a multiple of 10 atoms, got {n}");
    let y = n / 10; // KCl formula units; AlCl3 units = 2y
    let n_al = 2 * y;
    let n_k = y;
    let n_cl = 7 * y;
    let mut species = Vec::with_capacity(n);
    species.extend(std::iter::repeat_n(Species::Al, n_al));
    species.extend(std::iter::repeat_n(Species::K, n_k));
    species.extend(std::iter::repeat_n(Species::Cl, n_cl));
    species
}

/// Born–Mayer–Huggins + screened-Coulomb pair potential.
///
/// `charge_factor` applies *effective (partial) charges*, standard practice
/// in empirical molten-salt force fields (typically 0.7–0.8× formal): bare
/// ±3/∓1 formal-charge Coulomb forces are substantially stiffer than the
/// screened forces DFT produces, and the partial charges bring the force
/// scale — and hence achievable force RMSEs — into the regime where the
/// paper's 0.04 eV/Å chemical-accuracy threshold is meaningful.
#[derive(Clone, Copy, Debug)]
pub struct MeltPotential {
    /// Repulsion decay length ρ (Å).
    pub rho: f64,
    /// Coulomb screening length λ (Å).
    pub lambda: f64,
    /// Effective-charge scaling applied to each formal charge.
    pub charge_factor: f64,
}

impl Default for MeltPotential {
    fn default() -> Self {
        MeltPotential { rho: 0.33, lambda: 3.0, charge_factor: 0.75 }
    }
}

impl MeltPotential {
    fn pair_params(&self, a: Species, b: Species) -> (f64, f64) {
        let sigma = a.radius() + b.radius();
        let bij = (a.softness() * b.softness()).sqrt();
        (sigma, bij)
    }

    fn qq(&self, a: Species, b: Species) -> f64 {
        self.charge_factor * a.charge() * self.charge_factor * b.charge()
    }

    /// Pair energy at separation `r`.
    pub fn pair_energy(&self, a: Species, b: Species, r: f64) -> f64 {
        let (sigma, bij) = self.pair_params(a, b);
        let rep = bij * ((sigma - r) / self.rho).exp();
        let coul = COULOMB_EV_A * self.qq(a, b) / r * (-r / self.lambda).exp();
        rep + coul
    }

    /// Derivative dU/dr of the pair energy.
    pub fn pair_force_mag(&self, a: Species, b: Species, r: f64) -> f64 {
        let (sigma, bij) = self.pair_params(a, b);
        let d_rep = -bij / self.rho * ((sigma - r) / self.rho).exp();
        let qq = COULOMB_EV_A * self.qq(a, b);
        let screen = (-r / self.lambda).exp();
        let d_coul = -qq * screen * (1.0 / (r * r) + 1.0 / (self.lambda * r));
        d_rep + d_coul
    }

    /// Total potential energy and per-atom forces for a configuration under
    /// the minimum-image convention (all pairs, no cutoff: this is the
    /// "exact DFT" ground truth the learned potential is trained against).
    pub fn energy_forces(
        &self,
        cell: &Cell,
        species: &[Species],
        positions: &[[f64; 3]],
    ) -> (f64, Vec<[f64; 3]>) {
        assert_eq!(species.len(), positions.len());
        let n = positions.len();
        let mut energy = 0.0;
        let mut forces = vec![[0.0; 3]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = cell.min_image(positions[i], positions[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                let r = r2.sqrt();
                energy += self.pair_energy(species[i], species[j], r);
                // F_j = −dU/dr · r̂ (direction from i to j); F_i = −F_j.
                let du = self.pair_force_mag(species[i], species[j], r);
                let coeff = -du / r;
                for k in 0..3 {
                    forces[j][k] += coeff * d[k];
                    forces[i][k] -= coeff * d[k];
                }
            }
        }
        (energy, forces)
    }

    /// Energy only (used by tests and finite differencing).
    pub fn energy(&self, cell: &Cell, species: &[Species], positions: &[[f64; 3]]) -> f64 {
        self.energy_forces(cell, species, positions).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_is_neutral_and_sized() {
        for n in [10, 40, 160] {
            let s = melt_composition(n);
            assert_eq!(s.len(), n);
            let q: f64 = s.iter().map(|sp| sp.charge()).sum();
            assert_eq!(q, 0.0, "non-neutral composition for n={n}");
        }
        let s = melt_composition(160);
        assert_eq!(s.iter().filter(|&&x| x == Species::Al).count(), 32);
        assert_eq!(s.iter().filter(|&&x| x == Species::K).count(), 16);
        assert_eq!(s.iter().filter(|&&x| x == Species::Cl).count(), 112);
    }

    #[test]
    #[should_panic(expected = "multiple of 10")]
    fn composition_rejects_bad_counts() {
        melt_composition(7);
    }

    #[test]
    fn unlike_pairs_have_attractive_well() {
        let p = MeltPotential::default();
        // Al–Cl should have a minimum somewhere between contact and 4 Å.
        let mut best = (0.0, f64::MAX);
        let mut r = 1.5;
        while r < 6.0 {
            let u = p.pair_energy(Species::Al, Species::Cl, r);
            if u < best.1 {
                best = (r, u);
            }
            r += 0.01;
        }
        assert!(best.1 < -1.0, "no attractive well: {best:?}");
        assert!(best.0 > 1.8 && best.0 < 4.0, "well at odd distance {}", best.0);
    }

    #[test]
    fn like_pairs_are_repulsive() {
        let p = MeltPotential::default();
        for r in [2.0, 3.0, 4.0, 6.0] {
            assert!(p.pair_energy(Species::Al, Species::Al, r) > 0.0);
            assert!(p.pair_energy(Species::Cl, Species::Cl, r) > 0.0);
        }
    }

    #[test]
    fn pair_force_matches_energy_derivative() {
        let p = MeltPotential::default();
        let h = 1e-6;
        for (a, b) in [(Species::Al, Species::Cl), (Species::K, Species::Cl), (Species::Cl, Species::Cl)] {
            for r in [2.0, 3.5, 5.0, 8.0] {
                let fd = (p.pair_energy(a, b, r + h) - p.pair_energy(a, b, r - h)) / (2.0 * h);
                let an = p.pair_force_mag(a, b, r);
                assert!((fd - an).abs() < 1e-6 * (1.0 + an.abs()), "{a:?}-{b:?} r={r}: {fd} vs {an}");
            }
        }
    }

    #[test]
    fn tail_energy_is_significant_in_6_to_9_shell() {
        // The substitution argument: there must be real interaction energy
        // between 6 and 9 Å so that rcut genuinely matters.
        let p = MeltPotential::default();
        let u6 = p.pair_energy(Species::Al, Species::Cl, 6.0).abs();
        let u9 = p.pair_energy(Species::Al, Species::Cl, 9.0).abs();
        assert!(u6 > 0.05, "tail at 6 Å too small: {u6}");
        assert!(u9 > 0.002, "tail at 9 Å vanished: {u9}");
        assert!(u6 > u9, "screened Coulomb must decay");
    }

    #[test]
    fn forces_match_finite_difference_of_total_energy() {
        let p = MeltPotential::default();
        let cell = Cell::cubic(8.0);
        let species = vec![Species::Al, Species::Cl, Species::Cl, Species::K];
        let positions = vec![
            [0.5, 0.5, 0.5],
            [3.0, 0.8, 0.4],
            [0.2, 3.5, 3.0],
            [5.0, 5.0, 5.0],
        ];
        let (_, forces) = p.energy_forces(&cell, &species, &positions);
        let h = 1e-6;
        for i in 0..positions.len() {
            for k in 0..3 {
                let mut pp = positions.clone();
                let mut pm = positions.clone();
                pp[i][k] += h;
                pm[i][k] -= h;
                let fd = -(p.energy(&cell, &species, &pp) - p.energy(&cell, &species, &pm))
                    / (2.0 * h);
                assert!(
                    (fd - forces[i][k]).abs() < 1e-5 * (1.0 + fd.abs()),
                    "atom {i} comp {k}: fd {fd} vs analytic {}",
                    forces[i][k]
                );
            }
        }
    }

    #[test]
    fn net_force_is_zero() {
        let p = MeltPotential::default();
        let cell = Cell::cubic(9.0);
        let species = melt_composition(10);
        let positions: Vec<[f64; 3]> = (0..10)
            .map(|i| {
                let f = i as f64;
                [1.0 + 0.83 * f, 2.0 + 1.31 * f % 9.0, (0.57 * f * f) % 9.0]
            })
            .collect();
        let (_, forces) = p.energy_forces(&cell, &species, &positions);
        for k in 0..3 {
            let net: f64 = forces.iter().map(|f| f[k]).sum();
            assert!(net.abs() < 1e-9, "net force component {k} = {net}");
        }
    }
}
