//! Trajectory sampling and dataset assembly — the substitute for the
//! paper's CP2K first-principles trajectory and its conversion into
//! DeePMD-compatible training arrays.

use rand::Rng;

use crate::cell::Cell;
use crate::integrate::{langevin_step, MdState};
use crate::potential::{shuffled_composition, MeltPotential, Species};

/// One labelled configuration: positions with reference energy and forces.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Atomic positions (Å), wrapped into the cell.
    pub positions: Vec<[f64; 3]>,
    /// Reference total potential energy (eV).
    pub energy: f64,
    /// Reference forces (eV/Å).
    pub forces: Vec<[f64; 3]>,
}

/// A labelled dataset of frames sharing one cell and species list.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The periodic cell.
    pub cell: Cell,
    /// Species of each atom (fixed across frames).
    pub species: Vec<Species>,
    /// Labelled frames.
    pub frames: Vec<Frame>,
}

impl Dataset {
    /// Number of atoms per frame.
    pub fn n_atoms(&self) -> usize {
        self.species.len()
    }

    /// Number of frames.
    pub fn n_frames(&self) -> usize {
        self.frames.len()
    }

    /// Mean energy per atom across all frames (used for output bias
    /// initialisation, as DeePMD does).
    pub fn mean_energy_per_atom(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let total: f64 = self.frames.iter().map(|f| f.energy).sum();
        total / (self.frames.len() as f64 * self.n_atoms() as f64)
    }

    /// Add Gaussian label noise modelling the DFT convergence/noise floor:
    /// `sigma_e_per_atom` (eV/atom) on energies, `sigma_f` (eV/Å) per force
    /// component. This pins the best achievable validation RMSE near the
    /// paper's observed floor (≈0.03 eV/Å force, ≈5·10⁻⁴ eV/atom energy).
    pub fn add_label_noise<R: Rng + ?Sized>(
        &mut self,
        sigma_e_per_atom: f64,
        sigma_f: f64,
        rng: &mut R,
    ) {
        let n = self.n_atoms() as f64;
        for frame in &mut self.frames {
            frame.energy += sigma_e_per_atom * n.sqrt() * gaussian(rng);
            for f in &mut frame.forces {
                for fk in f.iter_mut() {
                    *fk += sigma_f * gaussian(rng);
                }
            }
        }
    }

    /// Shuffle frames and split off `validation_fraction` of them as the
    /// validation set (the paper withholds 25 %).
    pub fn split<R: Rng + ?Sized>(mut self, validation_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&validation_fraction), "bad validation fraction");
        // Fisher–Yates shuffle.
        for i in (1..self.frames.len()).rev() {
            let j = rng.random_range(0..=i);
            self.frames.swap(i, j);
        }
        let n_val = ((self.frames.len() as f64) * validation_fraction).round() as usize;
        let val_frames = self.frames.split_off(self.frames.len() - n_val);
        let val = Dataset { cell: self.cell, species: self.species.clone(), frames: val_frames };
        (self, val)
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Jittered simple-cubic starting positions (avoids overlaps that would
/// blow up the exponential repulsion on step one).
pub fn lattice_positions<R: Rng + ?Sized>(
    cell: &Cell,
    n: usize,
    jitter: f64,
    rng: &mut R,
) -> Vec<[f64; 3]> {
    let m = (n as f64).cbrt().ceil() as usize;
    let spacing = cell.length() / m as f64;
    let mut positions = Vec::with_capacity(n);
    'outer: for x in 0..m {
        for y in 0..m {
            for z in 0..m {
                if positions.len() >= n {
                    break 'outer;
                }
                let p = [
                    (x as f64 + 0.5) * spacing + jitter * spacing * gaussian(rng),
                    (y as f64 + 0.5) * spacing + jitter * spacing * gaussian(rng),
                    (z as f64 + 0.5) * spacing + jitter * spacing * gaussian(rng),
                ];
                positions.push(cell.wrap(p));
            }
        }
    }
    positions
}

/// Configuration for synthetic-FPMD dataset generation.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of atoms (multiple of 10; the paper uses 160).
    pub n_atoms: usize,
    /// Cubic box side (Å; the paper uses 17.84).
    pub box_len: f64,
    /// Thermostat temperature (K; the paper simulates at 498).
    pub temperature: f64,
    /// Time step (fs).
    pub dt_fs: f64,
    /// Langevin friction (1/fs).
    pub friction: f64,
    /// Equilibration steps before sampling begins.
    pub equil_steps: usize,
    /// Steps between sampled frames (decorrelation interval).
    pub sample_every: usize,
    /// Number of frames to sample.
    pub n_frames: usize,
}

impl GenConfig {
    /// Paper-scale generation parameters (expensive: 160 atoms).
    pub fn paper_scale() -> Self {
        GenConfig {
            n_atoms: 160,
            box_len: 17.84,
            temperature: 498.0,
            dt_fs: 1.0,
            friction: 0.02,
            equil_steps: 2_000,
            sample_every: 20,
            n_frames: 1_000,
        }
    }

    /// Default reduced scale used by the HPO experiments: 20 atoms in the
    /// paper's box so the rcut ∈ (6, 12) Å hyperparameter keeps the same
    /// geometric relationship to the cell (see DESIGN.md §2, scale
    /// substitution).
    pub fn reduced() -> Self {
        GenConfig {
            n_atoms: 20,
            box_len: 17.84,
            temperature: 498.0,
            dt_fs: 1.5,
            friction: 0.05,
            equil_steps: 400,
            sample_every: 10,
            n_frames: 120,
        }
    }

    /// Tiny scale for unit tests.
    pub fn tiny() -> Self {
        GenConfig {
            n_atoms: 20,
            box_len: 11.0,
            temperature: 498.0,
            dt_fs: 1.5,
            friction: 0.1,
            equil_steps: 100,
            sample_every: 5,
            n_frames: 12,
        }
    }
}

/// Run the synthetic FPMD simulation and sample a labelled dataset.
pub fn generate_dataset<R: Rng + ?Sized>(config: &GenConfig, rng: &mut R) -> Dataset {
    let cell = Cell::cubic(config.box_len);
    let potential = MeltPotential::default();
    let species = shuffled_composition(config.n_atoms, rng);
    let positions = lattice_positions(&cell, config.n_atoms, 0.1, rng);
    let mut state = MdState::new(&cell, &potential, &species, positions, config.temperature, rng);

    // Damped warmup with a reduced time step: the jittered lattice start can
    // sit high on the repulsive wall, and full-step integration there is
    // unstable.
    for _ in 0..config.equil_steps / 4 {
        langevin_step(
            &cell,
            &potential,
            &species,
            &mut state,
            config.dt_fs * 0.25,
            config.temperature,
            (config.friction * 10.0).min(0.5),
            rng,
        );
    }
    for _ in 0..config.equil_steps {
        langevin_step(
            &cell,
            &potential,
            &species,
            &mut state,
            config.dt_fs,
            config.temperature,
            config.friction,
            rng,
        );
    }

    let mut frames = Vec::with_capacity(config.n_frames);
    for _ in 0..config.n_frames {
        for _ in 0..config.sample_every {
            langevin_step(
                &cell,
                &potential,
                &species,
                &mut state,
                config.dt_fs,
                config.temperature,
                config.friction,
                rng,
            );
        }
        frames.push(Frame {
            positions: state.positions.clone(),
            energy: state.potential_energy,
            forces: state.forces.clone(),
        });
    }
    Dataset { cell, species, frames }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lattice_positions_fit_in_cell() {
        let cell = Cell::cubic(10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let pos = lattice_positions(&cell, 27, 0.05, &mut rng);
        assert_eq!(pos.len(), 27);
        for p in &pos {
            for c in p.iter() {
                assert!((0.0..10.0).contains(c));
            }
        }
    }

    #[test]
    fn generated_dataset_has_consistent_labels() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = generate_dataset(&GenConfig::tiny(), &mut rng);
        assert_eq!(ds.n_frames(), 12);
        assert_eq!(ds.n_atoms(), 20);
        let potential = MeltPotential::default();
        // Labels must exactly match the reference potential (no noise yet).
        for frame in &ds.frames {
            let (e, f) = potential.energy_forces(&ds.cell, &ds.species, &frame.positions);
            assert!((e - frame.energy).abs() < 1e-9);
            for (a, b) in f.iter().zip(frame.forces.iter()) {
                for k in 0..3 {
                    assert!((a[k] - b[k]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn frames_are_decorrelated_not_identical() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = generate_dataset(&GenConfig::tiny(), &mut rng);
        let a = &ds.frames[0];
        let b = &ds.frames[1];
        let moved = a
            .positions
            .iter()
            .zip(b.positions.iter())
            .any(|(p, q)| ds.cell.distance(*p, *q) > 0.05);
        assert!(moved, "consecutive samples identical — MD not advancing");
        assert_ne!(a.energy, b.energy);
    }

    #[test]
    fn split_respects_fraction_and_preserves_total() {
        let mut rng = StdRng::seed_from_u64(4);
        let ds = generate_dataset(&GenConfig::tiny(), &mut rng);
        let total = ds.n_frames();
        let (train, val) = ds.split(0.25, &mut rng);
        assert_eq!(train.n_frames() + val.n_frames(), total);
        assert_eq!(val.n_frames(), 3); // 25 % of 12
        assert_eq!(train.species, val.species);
    }

    #[test]
    fn label_noise_perturbs_at_requested_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let clean = generate_dataset(&GenConfig::tiny(), &mut rng);
        let mut noisy = clean.clone();
        noisy.add_label_noise(0.0005, 0.03, &mut rng);
        let mut force_sq = 0.0;
        let mut count = 0usize;
        for (a, b) in clean.frames.iter().zip(noisy.frames.iter()) {
            assert_ne!(a.energy, b.energy);
            for (fa, fb) in a.forces.iter().zip(b.forces.iter()) {
                for k in 0..3 {
                    force_sq += (fa[k] - fb[k]).powi(2);
                    count += 1;
                }
            }
        }
        let rmse = (force_sq / count as f64).sqrt();
        assert!((rmse - 0.03).abs() < 0.01, "force noise rmse {rmse}");
    }

    #[test]
    fn mean_energy_per_atom_is_negative_for_bound_melt() {
        let mut rng = StdRng::seed_from_u64(6);
        let ds = generate_dataset(&GenConfig::tiny(), &mut rng);
        assert!(
            ds.mean_energy_per_atom() < 0.0,
            "melt should be bound: {} eV/atom",
            ds.mean_energy_per_atom()
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let ds = generate_dataset(&GenConfig::tiny(), &mut rng);
            ds.frames.iter().map(|f| f.energy).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
