//! Trajectory analysis: radial distribution functions and mean-squared
//! displacement. The paper's motivation is molten-salt *structure and
//! dynamics* ("local structure, dynamics, and speciation in molten salts");
//! these observables validate that the synthetic melt actually behaves like
//! a liquid and give deployed DNNP simulations something physical to be
//! compared on.

use crate::generate::Dataset;
use crate::potential::Species;

/// A radial distribution function g(r) histogram.
#[derive(Clone, Debug)]
pub struct Rdf {
    /// Bin centers (Å).
    pub r: Vec<f64>,
    /// g(r) values.
    pub g: Vec<f64>,
}

impl Rdf {
    /// The position (Å) of the first maximum of g(r) — the nearest-neighbor
    /// shell distance.
    pub fn first_peak(&self) -> Option<(f64, f64)> {
        self.r
            .iter()
            .zip(self.g.iter())
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(&r, &g)| (r, g))
    }
}

/// Compute the partial RDF between species `a` and `b` over all frames of a
/// dataset, up to `r_max` with `bins` bins.
pub fn partial_rdf(dataset: &Dataset, a: Species, b: Species, r_max: f64, bins: usize) -> Rdf {
    assert!(bins > 0 && r_max > 0.0);
    let cell = &dataset.cell;
    let dr = r_max / bins as f64;
    let mut counts = vec![0.0f64; bins];
    let idx_a: Vec<usize> = (0..dataset.n_atoms())
        .filter(|&i| dataset.species[i] == a)
        .collect();
    let idx_b: Vec<usize> = (0..dataset.n_atoms())
        .filter(|&i| dataset.species[i] == b)
        .collect();
    let n_a = idx_a.len() as f64;
    let n_b = idx_b.len() as f64;
    if idx_a.is_empty() || idx_b.is_empty() || dataset.frames.is_empty() {
        return Rdf {
            r: (0..bins).map(|k| (k as f64 + 0.5) * dr).collect(),
            g: vec![0.0; bins],
        };
    }

    for frame in &dataset.frames {
        for &i in &idx_a {
            for &j in &idx_b {
                if i == j {
                    continue;
                }
                let r = cell.distance(frame.positions[i], frame.positions[j]);
                if r < r_max {
                    counts[(r / dr) as usize] += 1.0;
                }
            }
        }
    }

    // Normalise by the ideal-gas shell count: ρ_b · 4πr²dr per a-atom.
    let volume = cell.volume();
    let rho_b = n_b / volume;
    let frames = dataset.frames.len() as f64;
    let same = a == b;
    let r: Vec<f64> = (0..bins).map(|k| (k as f64 + 0.5) * dr).collect();
    let g: Vec<f64> = counts
        .iter()
        .enumerate()
        .map(|(k, &c)| {
            let shell = 4.0 * std::f64::consts::PI * r[k] * r[k] * dr;
            // For identical species the pair count excludes self, so the
            // ideal reference density is (n_b − 1)/V per central atom.
            let rho = if same { (n_b - 1.0) / volume } else { rho_b };
            c / (frames * n_a * rho * shell)
        })
        .collect();
    Rdf { r, g }
}

/// Mean-squared displacement (Å²) per frame lag, computed from a sequence
/// of *consecutive* frames (the generator's `sample_every` sets the time
/// spacing). Uses unwrapped displacement via minimum image per step.
pub fn mean_squared_displacement(dataset: &Dataset, max_lag: usize) -> Vec<f64> {
    let n_frames = dataset.n_frames();
    let n_atoms = dataset.n_atoms();
    if n_frames < 2 {
        return vec![0.0; max_lag.min(1)];
    }
    let cell = &dataset.cell;

    // Unwrap trajectories: accumulate minimum-image steps.
    let mut unwrapped: Vec<Vec<[f64; 3]>> = Vec::with_capacity(n_frames);
    unwrapped.push(dataset.frames[0].positions.clone());
    for f in 1..n_frames {
        let prev_wrapped = &dataset.frames[f - 1].positions;
        let cur_wrapped = &dataset.frames[f].positions;
        let prev_un = unwrapped[f - 1].clone();
        let mut cur_un = Vec::with_capacity(n_atoms);
        for i in 0..n_atoms {
            let step = cell.min_image(prev_wrapped[i], cur_wrapped[i]);
            cur_un.push([
                prev_un[i][0] + step[0],
                prev_un[i][1] + step[1],
                prev_un[i][2] + step[2],
            ]);
        }
        unwrapped.push(cur_un);
    }

    let lags = max_lag.min(n_frames - 1);
    (1..=lags)
        .map(|lag| {
            let mut sq = 0.0;
            let mut count = 0usize;
            for start in 0..(n_frames - lag) {
                for (a, b) in unwrapped[start].iter().zip(&unwrapped[start + lag]) {
                    sq += (b[0] - a[0]).powi(2) + (b[1] - a[1]).powi(2) + (b[2] - a[2]).powi(2);
                    count += 1;
                }
            }
            sq / count as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_dataset, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn melt() -> Dataset {
        let mut rng = StdRng::seed_from_u64(5);
        let gen = GenConfig {
            n_atoms: 20,
            box_len: 11.0,
            n_frames: 20,
            equil_steps: 300,
            sample_every: 5,
            ..GenConfig::tiny()
        };
        generate_dataset(&gen, &mut rng)
    }

    #[test]
    fn unlike_rdf_has_contact_peak_and_excluded_core() {
        let ds = melt();
        let rdf = partial_rdf(&ds, Species::Al, Species::Cl, 5.5, 55);
        // Hard core: essentially nothing below ~1.5 Å.
        let low: f64 = rdf
            .r
            .iter()
            .zip(&rdf.g)
            .filter(|(&r, _)| r < 1.5)
            .map(|(_, &g)| g)
            .sum();
        assert!(low < 0.05, "core not excluded: {low}");
        // First shell: a clear peak above the ideal-gas baseline.
        let (peak_r, peak_g) = rdf.first_peak().unwrap();
        assert!(
            (1.6..4.0).contains(&peak_r),
            "Al–Cl first shell at odd distance {peak_r}"
        );
        assert!(peak_g > 1.5, "no structuring: peak g(r) = {peak_g}");
    }

    #[test]
    fn like_rdf_is_pushed_outward() {
        // Coulomb repulsion keeps like ions farther apart than unlike ones.
        let ds = melt();
        let unlike = partial_rdf(&ds, Species::Al, Species::Cl, 5.5, 55);
        let like = partial_rdf(&ds, Species::Cl, Species::Cl, 5.5, 55);
        let first_r = |rdf: &Rdf| {
            rdf.r
                .iter()
                .zip(&rdf.g)
                .find(|(_, &g)| g > 0.5)
                .map(|(&r, _)| r)
                .unwrap_or(f64::MAX)
        };
        assert!(
            first_r(&like) > first_r(&unlike),
            "like ions should sit farther out"
        );
    }

    #[test]
    fn missing_species_pair_gives_zero_rdf() {
        // A dataset holding only the first 10 atoms may lack K; the RDF
        // must degrade gracefully rather than divide by zero.
        let ds = melt();
        let mut no_k = ds.clone();
        let keep: Vec<usize> = (0..no_k.n_atoms())
            .filter(|&i| no_k.species[i] != Species::K)
            .collect();
        no_k.species = keep.iter().map(|&i| ds.species[i]).collect();
        for frame in &mut no_k.frames {
            frame.positions = keep.iter().map(|&i| frame.positions[i]).collect();
            frame.forces = keep.iter().map(|&i| frame.forces[i]).collect();
        }
        let rdf = partial_rdf(&no_k, Species::K, Species::Cl, 5.0, 10);
        assert!(rdf.g.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn msd_grows_in_a_liquid() {
        let ds = melt();
        let msd = mean_squared_displacement(&ds, 10);
        assert_eq!(msd.len(), 10);
        assert!(msd[0] > 0.0, "atoms must move between samples");
        // Diffusive growth: long-lag MSD exceeds short-lag MSD.
        assert!(
            msd[9] > msd[0],
            "MSD should grow with lag in a melt: {:?}",
            msd
        );
    }

    #[test]
    fn msd_of_static_frames_is_zero() {
        let ds = melt();
        let mut frozen = ds.clone();
        let first = frozen.frames[0].clone();
        for frame in &mut frozen.frames {
            frame.positions = first.positions.clone();
        }
        let msd = mean_squared_displacement(&frozen, 5);
        assert!(msd.iter().all(|&v| v.abs() < 1e-12));
    }
}
