//! Periodic cubic simulation cell and minimum-image geometry.

/// A cubic periodic box of side length `L` (Å), matching the paper's
/// 17.84 Å molten-salt cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cell {
    length: f64,
}

impl Cell {
    /// A cubic cell with the given side length in Å.
    pub fn cubic(length: f64) -> Self {
        assert!(length > 0.0 && length.is_finite(), "invalid cell length {length}");
        Cell { length }
    }

    /// The paper's simulation cell: 17.84 Å.
    pub fn paper() -> Self {
        Cell::cubic(17.84)
    }

    /// Side length in Å.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Cell volume in Å³.
    pub fn volume(&self) -> f64 {
        self.length * self.length * self.length
    }

    /// Wrap a coordinate into `[0, L)`.
    pub fn wrap_coord(&self, x: f64) -> f64 {
        let l = self.length;
        let w = x - l * (x / l).floor();
        // Guard the x == -0.0 / rounding edge so the result is in [0, L).
        if w >= l {
            w - l
        } else {
            w
        }
    }

    /// Wrap a position vector into the primary cell.
    pub fn wrap(&self, p: [f64; 3]) -> [f64; 3] {
        [self.wrap_coord(p[0]), self.wrap_coord(p[1]), self.wrap_coord(p[2])]
    }

    /// Minimum-image displacement from `a` to `b` (`b - a`, shifted into
    /// `[-L/2, L/2)` per component).
    pub fn min_image(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let l = self.length;
        let mut d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        for v in &mut d {
            *v -= l * (*v / l).round();
        }
        d
    }

    /// Minimum-image distance between `a` and `b`.
    pub fn distance(&self, a: [f64; 3], b: [f64; 3]) -> f64 {
        let d = self.min_image(a, b);
        (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_into_primary_cell() {
        let c = Cell::cubic(10.0);
        assert!((c.wrap_coord(12.5) - 2.5).abs() < 1e-12);
        assert!((c.wrap_coord(-0.5) - 9.5).abs() < 1e-12);
        assert_eq!(c.wrap_coord(0.0), 0.0);
        let w = c.wrap([11.0, -1.0, 5.0]);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 9.0).abs() < 1e-12);
        assert_eq!(w[2], 5.0);
    }

    #[test]
    fn wrap_result_always_in_range() {
        let c = Cell::cubic(7.3);
        for i in -50..50 {
            let x = i as f64 * 1.7;
            let w = c.wrap_coord(x);
            assert!((0.0..7.3).contains(&w), "wrap({x}) = {w}");
        }
    }

    #[test]
    fn min_image_picks_nearest_copy() {
        let c = Cell::cubic(10.0);
        // 9.0 → 1.0 across the boundary is distance 2, not 8.
        let d = c.min_image([9.0, 0.0, 0.0], [1.0, 0.0, 0.0]);
        assert!((d[0] - 2.0).abs() < 1e-12);
        assert!((c.distance([9.0, 0.0, 0.0], [1.0, 0.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_image_is_antisymmetric() {
        let c = Cell::cubic(17.84);
        let a = [1.0, 2.0, 3.0];
        let b = [15.0, 0.5, 17.0];
        let dab = c.min_image(a, b);
        let dba = c.min_image(b, a);
        for k in 0..3 {
            assert!((dab[k] + dba[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn distance_bounded_by_half_diagonal() {
        let c = Cell::cubic(10.0);
        let max = 10.0 * (3.0f64).sqrt() / 2.0;
        for &(a, b) in &[
            ([0.0, 0.0, 0.0], [5.0, 5.0, 5.0]),
            ([1.0, 9.0, 4.0], [9.0, 1.0, 6.0]),
        ] {
            assert!(c.distance(a, b) <= max + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "invalid cell length")]
    fn rejects_nonpositive_length() {
        Cell::cubic(0.0);
    }
}
