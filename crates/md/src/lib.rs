//! # dphpo-md
//!
//! Synthetic first-principles molecular dynamics substrate.
//!
//! The paper trains its neural-network potential on a 250k-frame CP2K DFT
//! trajectory of molten 66.7 % AlCl₃ / 33.3 % KCl (160 atoms, 17.84 Å box,
//! 498 K). That data is unavailable here, so this crate generates the
//! closest synthetic equivalent: a Born–Mayer–Huggins + screened-Coulomb
//! ionic melt simulated with a BAOAB Langevin thermostat, sampled into
//! labelled (positions → energy, forces) frames with a configurable
//! DFT-like label-noise floor, shuffled, and split 75/25 into train and
//! validation sets exactly as the paper's in-house scripts did.
//!
//! See DESIGN.md §2 for the full substitution argument.
//!
//! ```
//! use dphpo_md::generate::{generate_dataset, GenConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut config = GenConfig::tiny();
//! config.n_frames = 4;
//! let dataset = generate_dataset(&config, &mut rng);
//! let (train, val) = dataset.split(0.25, &mut rng);
//! assert_eq!(train.n_frames(), 3);
//! assert_eq!(val.n_frames(), 1);
//! ```

pub mod analysis;
pub mod cell;
pub mod export;
pub mod generate;
pub mod integrate;
pub mod neighbors;
pub mod npy;
pub mod potential;
pub mod xyz;

pub use cell::Cell;
pub use generate::{generate_dataset, Dataset, Frame, GenConfig};
pub use integrate::MdState;
pub use neighbors::{pairs_brute_force, pairs_cell_list, Pair};
pub use analysis::{mean_squared_displacement, partial_rdf, Rdf};
pub use export::{read_deepmd_dir, write_deepmd_dir};
pub use npy::NpyArray;
pub use potential::{melt_composition, shuffled_composition, MeltPotential, Species, COULOMB_EV_A, KB_EV};
pub use xyz::{from_extxyz, to_extxyz};
