//! JSONL export: one line per event, followed by one line per metric.

use crate::json::{escape, fmt_num};
use crate::names::SIDE_PREFIX;
use crate::recorder::{Event, TelemetrySnapshot, When, NO_TASK};

fn event_line(e: &Event) -> String {
    let mut s = String::with_capacity(160);
    s.push_str(&format!(
        "{{\"type\":\"event\",\"name\":\"{}\",\"cat\":\"{}\",\"id\":\"{:#018x}\",\"run\":{},\"gen\":{}",
        escape(e.name),
        escape(e.cat),
        e.span_id(),
        e.ctx.run,
        e.ctx.gen
    ));
    if e.ctx.task != NO_TASK {
        s.push_str(&format!(",\"task\":{},\"attempt\":{}", e.ctx.task, e.ctx.attempt));
    }
    if let Some(step) = e.step {
        s.push_str(&format!(",\"step\":{step}"));
    }
    match e.when {
        When::Sim(t) => s.push_str(&format!(",\"when\":\"sim\",\"t_min\":{}", fmt_num(t))),
        When::InTask(t) => s.push_str(&format!(",\"when\":\"in_task\",\"t_min\":{}", fmt_num(t))),
        When::Unplaced => s.push_str(",\"when\":\"unplaced\""),
    }
    if e.dur_min > 0.0 {
        s.push_str(&format!(",\"dur_min\":{}", fmt_num(e.dur_min)));
    }
    if let Some(w) = e.worker {
        s.push_str(&format!(",\"worker\":{w}"));
    }
    if !e.args.is_empty() {
        s.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", escape(k), fmt_num(*v)));
        }
        s.push('}');
    }
    s.push('}');
    s
}

/// Deterministic JSONL export of a snapshot: event lines in snapshot order,
/// then `counter`/`gauge`/`hist` lines sorted by name. Events and metrics
/// whose name starts with `side.` — wall-clock readings, journal byte
/// offsets, racy scheduler state — are **excluded**; use
/// [`side_channel_jsonl`] for those.
pub fn events_jsonl(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for e in &snap.events {
        if e.name.starts_with(SIDE_PREFIX) {
            continue;
        }
        out.push_str(&event_line(e));
        out.push('\n');
    }
    for (name, v) in &snap.counters {
        if name.starts_with(SIDE_PREFIX) {
            continue;
        }
        out.push_str(&format!("{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}\n", escape(name)));
    }
    for (name, g) in &snap.gauges {
        if name.starts_with(SIDE_PREFIX) {
            continue;
        }
        out.push_str(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"last\":{},\"max\":{}}}\n",
            escape(name),
            fmt_num(g.last),
            fmt_num(g.max)
        ));
    }
    for (name, h) in &snap.histograms {
        if name.starts_with(SIDE_PREFIX) {
            continue;
        }
        out.push_str(&hist_line(name, h));
    }
    out
}

fn hist_line(name: &str, h: &crate::metrics::HistogramSnapshot) -> String {
    let buckets: Vec<String> =
        h.buckets.iter().map(|(lo, c)| format!("[{},{c}]", fmt_num(*lo))).collect();
    format!(
        "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}\n",
        escape(name),
        h.count,
        fmt_num(h.sum),
        fmt_num(h.min),
        fmt_num(h.max),
        buckets.join(",")
    )
}

/// Non-deterministic side channel: `side.*` events (e.g. journal byte
/// offsets), wall-clock stamps per event (when the recorder captured them),
/// and `side.*` metrics. Kept out of [`events_jsonl`] so the deterministic
/// export stays bit-identical across runs.
///
/// The export ends with a summary block — one `{"type":"summary",...}` line
/// per event name carrying wall stamps (count, first/last stamp) and one
/// per `side.*` histogram (count/total/p50/p99, quantiles at the log₂
/// bucket resolution) — so wall data is usable without post-processing.
pub fn side_channel_jsonl(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for e in &snap.events {
        if e.name.starts_with(SIDE_PREFIX) {
            out.push_str(&event_line(e));
            out.push('\n');
        }
    }
    for (e, wall) in snap.events.iter().zip(&snap.wall_us) {
        if let Some(us) = wall {
            out.push_str(&format!(
                "{{\"type\":\"wall\",\"id\":\"{:#018x}\",\"name\":\"{}\",\"wall_us\":{us}}}\n",
                e.span_id(),
                escape(e.name)
            ));
        }
    }
    for (name, v) in &snap.counters {
        if name.starts_with(SIDE_PREFIX) {
            out.push_str(&format!("{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}\n", escape(name)));
        }
    }
    for (name, g) in &snap.gauges {
        if name.starts_with(SIDE_PREFIX) {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"last\":{},\"max\":{}}}\n",
                escape(name),
                fmt_num(g.last),
                fmt_num(g.max)
            ));
        }
    }
    for (name, h) in &snap.histograms {
        if name.starts_with(SIDE_PREFIX) {
            out.push_str(&hist_line(name, h));
        }
    }
    // Summary block: wall-stamp aggregates per event name, then per-name
    // quantile summaries of the side histograms.
    let mut stamps: std::collections::BTreeMap<&str, (u64, u64, u64)> = std::collections::BTreeMap::new();
    for (e, wall) in snap.events.iter().zip(&snap.wall_us) {
        if let Some(us) = wall {
            let entry = stamps.entry(e.name).or_insert((0, *us, *us));
            entry.0 += 1;
            entry.1 = entry.1.min(*us);
            entry.2 = entry.2.max(*us);
        }
    }
    for (name, (count, first, last)) in &stamps {
        out.push_str(&format!(
            "{{\"type\":\"summary\",\"kind\":\"wall_stamps\",\"name\":\"{}\",\"count\":{count},\"first_us\":{first},\"last_us\":{last}}}\n",
            escape(name)
        ));
    }
    for (name, h) in &snap.histograms {
        if name.starts_with(SIDE_PREFIX) {
            out.push_str(&format!(
                "{{\"type\":\"summary\",\"kind\":\"hist\",\"name\":\"{}\",\"count\":{},\"total\":{},\"p50\":{},\"p99\":{}}}\n",
                escape(name),
                h.count,
                fmt_num(h.sum),
                fmt_num(h.quantile(0.5)),
                fmt_num(h.quantile(0.99))
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemoryRecorder, Recorder, SpanCtx};
    use crate::{cats, names};

    #[test]
    fn event_lines_are_one_json_object_per_line() {
        let r = MemoryRecorder::new();
        r.record(Event {
            name: names::EVAL,
            cat: cats::SCHED,
            ctx: SpanCtx::root(9, 1).with_gen(2).with_task(3, 1),
            step: None,
            when: When::Sim(4.5),
            dur_min: 2.0,
            worker: Some(0),
            args: vec![("ok", 1.0), ("minutes", 2.0)],
        });
        r.counter_add(names::C_STEPS, 10);
        r.observe(names::H_LOSS, 0.5);
        let out = events_jsonl(&r.snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"event\""));
        assert!(lines[0].contains("\"run\":1,\"gen\":2,\"task\":3,\"attempt\":1"));
        assert!(lines[0].contains("\"when\":\"sim\",\"t_min\":4.5"));
        assert!(lines[0].contains("\"args\":{\"ok\":1,\"minutes\":2}"));
        assert!(lines[1].contains("\"type\":\"counter\""));
        assert!(lines[2].contains("\"type\":\"hist\""));
        assert!(lines[2].contains("\"buckets\":[[0.5,1]]"));
        for l in &lines {
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }

    #[test]
    fn side_metrics_are_segregated() {
        let r = MemoryRecorder::new();
        r.observe(names::H_STEP_WALL_NS, 123.0);
        r.observe(names::H_LOSS, 0.5);
        r.gauge_set(names::G_QUARANTINED, 1.0);
        let mut append =
            Event::instant(names::JOURNAL_APPEND, cats::JOURNAL, SpanCtx::root(7, 0));
        append.args = vec![("offset", 512.0)];
        r.record(append);
        let snap = r.snapshot();
        let det = events_jsonl(&snap);
        assert!(!det.contains("side."));
        assert!(det.contains(names::H_LOSS));
        let side = side_channel_jsonl(&snap);
        assert!(side.contains(names::H_STEP_WALL_NS));
        assert!(side.contains(names::G_QUARANTINED));
        assert!(side.contains(names::JOURNAL_APPEND));
        assert!(side.contains("\"offset\":512"));
        assert!(!side.contains("\"train.loss\""));
    }

    #[test]
    fn side_channel_ends_with_summary_block() {
        let r = MemoryRecorder::with_wall_clock();
        r.record(Event::instant(names::JOURNAL_APPEND, cats::JOURNAL, SpanCtx::root(7, 0)));
        r.record(Event::instant(names::JOURNAL_APPEND, cats::JOURNAL, SpanCtx::root(7, 0)));
        for v in [100.0, 200.0, 400.0, 100_000.0] {
            r.observe(names::H_STEP_WALL_NS, v);
        }
        let side = side_channel_jsonl(&r.snapshot());
        let summaries: Vec<&str> =
            side.lines().filter(|l| l.contains("\"type\":\"summary\"")).collect();
        // Wall-stamp summaries per event name plus one per side histogram;
        // all summary lines sit at the end of the export.
        assert!(summaries.iter().any(|l| {
            l.contains("\"kind\":\"wall_stamps\"")
                && l.contains("\"name\":\"side.journal.append\"")
                && l.contains("\"count\":2")
        }));
        let hist = summaries
            .iter()
            .find(|l| l.contains("\"kind\":\"hist\""))
            .expect("histogram summary line");
        assert!(hist.contains("\"name\":\"side.step_wall_ns\""));
        assert!(hist.contains("\"count\":4"));
        assert!(hist.contains("\"total\":100700"));
        // p50 falls in the bucket holding 200 ([128, 256)); p99 in the
        // bucket holding the 100 µs outlier ([65536, 131072)).
        assert!(hist.contains("\"p50\":128"), "{hist}");
        assert!(hist.contains("\"p99\":65536"), "{hist}");
        let n = side.lines().count();
        let first_summary =
            side.lines().position(|l| l.contains("\"type\":\"summary\"")).unwrap();
        assert_eq!(n - first_summary, summaries.len());
    }

    #[test]
    fn wall_stamps_only_in_side_channel() {
        let r = MemoryRecorder::with_wall_clock();
        r.record(Event::instant("x", "t", SpanCtx::default()));
        let snap = r.snapshot();
        assert!(!events_jsonl(&snap).contains("wall_us"));
        assert!(side_channel_jsonl(&snap).contains("wall_us"));
    }
}
