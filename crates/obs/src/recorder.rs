//! The `Recorder` trait, span identity, and the in-memory recorder.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::{GaugeValue, Histogram, HistogramSnapshot};

/// Sentinel task id for spans that belong to no scheduler task
/// (generation spans, batch submissions).
pub const NO_TASK: u32 = u32::MAX;

/// splitmix64 — the same mixer the scheduler's fault injector uses, copied
/// here so this crate stays a leaf.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Identity of a span: which run/generation/task/attempt produced it.
///
/// Span ids derived from this context via [`SpanCtx::span_id`] are pure
/// functions of the campaign coordinates — no thread ids, no wall clock —
/// so re-running a campaign reproduces them bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanCtx {
    /// Base seed of the run (the EA run seed, not the per-task train seed).
    pub seed: u64,
    /// Run index within the campaign.
    pub run: u32,
    /// Generation index within the run.
    pub gen: u32,
    /// Task (population slot) index within the generation, or [`NO_TASK`].
    pub task: u32,
    /// Attempt number (0-based; speculative twins carry the scheduler's
    /// speculative attempt bit).
    pub attempt: u32,
}

impl SpanCtx {
    /// Context for run-level spans (no generation/task yet).
    pub fn root(seed: u64, run: u32) -> Self {
        Self { seed, run, gen: 0, task: NO_TASK, attempt: 0 }
    }

    /// Narrow to a generation.
    pub fn with_gen(mut self, gen: u32) -> Self {
        self.gen = gen;
        self
    }

    /// Narrow to a task attempt.
    pub fn with_task(mut self, task: u32, attempt: u32) -> Self {
        self.task = task;
        self.attempt = attempt;
        self
    }

    /// Deterministic span id: a splitmix64 chain over
    /// `(seed, run, gen, task, attempt, step)`. `step = None` identifies the
    /// task-level (or generation-level) span itself.
    pub fn span_id(&self, step: Option<u64>) -> u64 {
        let mut z = splitmix64(self.seed ^ SPAN_ID_SALT);
        z = splitmix64(z ^ (((self.run as u64) << 32) | self.gen as u64));
        z = splitmix64(z ^ (((self.task as u64) << 32) | self.attempt as u64));
        splitmix64(z ^ step.map_or(u64::MAX, |s| s))
    }
}

/// Salt separating span-id derivation from the fault injector's hash domain.
const SPAN_ID_SALT: u64 = 0x0b5e_7e1e_3e7e_c0de;

/// Where an event sits in time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum When {
    /// Absolute simulated minutes since campaign start.
    Sim(f64),
    /// Simulated minutes relative to the *enclosing task's* start. The
    /// trainer does not know when the scheduler placed its task; the Chrome
    /// exporter resolves these against the task spans post-hoc.
    InTask(f64),
    /// No meaningful time (pure bookkeeping events); exporters anchor these
    /// at the enclosing task's start when one exists.
    Unplaced,
}

/// One telemetry event. `dur_min == 0.0` marks an instant event; anything
/// greater is a span.
#[derive(Clone, Debug)]
pub struct Event {
    /// Event name — use the constants in [`crate::names`].
    pub name: &'static str,
    /// Category — use the constants in [`crate::cats`].
    pub cat: &'static str,
    /// Span identity.
    pub ctx: SpanCtx,
    /// Optimiser step for per-step spans, `None` otherwise.
    pub step: Option<u64>,
    /// Time placement.
    pub when: When,
    /// Duration in simulated minutes (0 for instants).
    pub dur_min: f64,
    /// Worker lane when the scheduler placed this span, `None` otherwise.
    pub worker: Option<u32>,
    /// Numeric payload (small, fixed keys; non-finite values allowed).
    pub args: Vec<(&'static str, f64)>,
}

impl Event {
    /// An instant event with no placement and no payload.
    pub fn instant(name: &'static str, cat: &'static str, ctx: SpanCtx) -> Self {
        Self { name, cat, ctx, step: None, when: When::Unplaced, dur_min: 0.0, worker: None, args: Vec::new() }
    }

    /// Deterministic span id for this event.
    pub fn span_id(&self) -> u64 {
        self.ctx.span_id(self.step)
    }
}

/// Sink for telemetry. Every method has an empty default body so a no-op
/// recorder compiles to nothing and instrumentation sites can gate on a
/// single `enabled()` branch.
///
/// Implementations must be thread-safe: the scheduler's worker threads and
/// the driver emit concurrently. Determinism of the *exports* is recovered
/// by [`MemoryRecorder::snapshot`], which sorts by span identity rather
/// than arrival order.
pub trait Recorder: Send + Sync {
    /// `false` (the default) lets call sites skip event construction.
    fn enabled(&self) -> bool {
        false
    }

    /// Record an event or span.
    fn record(&self, _event: Event) {}

    /// Add to a monotonic counter.
    fn counter_add(&self, _name: &'static str, _delta: u64) {}

    /// Set a gauge (last value + high-water mark are both kept).
    fn gauge_set(&self, _name: &'static str, _value: f64) {}

    /// Observe a value into a log-scale histogram.
    fn observe(&self, _name: &'static str, _value: f64) {}
}

/// The default recorder: drops everything, reports `enabled() == false`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A `'static` no-op recorder for call sites that need a reference.
pub static NOOP: NoopRecorder = NoopRecorder;

/// Deterministic view of everything a [`MemoryRecorder`] captured.
///
/// Events are sorted by `(run, gen, task, attempt, step, time, name)` so the
/// snapshot — and every export derived from it — is independent of thread
/// scheduling. `wall_us[i]` is the wall-clock capture time of `events[i]`
/// (side channel; `None` unless the recorder was built with
/// [`MemoryRecorder::with_wall_clock`]).
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Events in deterministic order.
    pub events: Vec<Event>,
    /// Wall-clock microseconds since recorder creation, parallel to `events`.
    pub wall_us: Vec<Option<u64>>,
    /// Counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauges (last + max), name-sorted.
    pub gauges: Vec<(String, GaugeValue)>,
    /// Histograms, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl TelemetrySnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }
}

/// In-memory recorder backing all three exporters.
///
/// Buffers are mutex-guarded `Vec`/`BTreeMap`s; critical sections are a
/// push or a map update, so contention stays negligible next to a training
/// step. Wall-clock capture is opt-in and never affects the deterministic
/// exports.
pub struct MemoryRecorder {
    events: Mutex<Vec<(Event, Option<u64>)>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, GaugeValue>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    wall: Option<Instant>,
}

impl MemoryRecorder {
    /// Recorder without the wall-clock side channel (fully deterministic).
    pub fn new() -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            wall: None,
        }
    }

    /// Recorder that additionally stamps each event with wall-clock
    /// microseconds since creation. The stamps ride in the snapshot's
    /// `wall_us` side channel only.
    pub fn with_wall_clock() -> Self {
        let mut r = Self::new();
        r.wall = Some(Instant::now());
        r
    }

    /// Deterministically ordered snapshot of everything captured so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut pairs = self.events.lock().unwrap().clone();
        pairs.sort_by(|(a, _), (b, _)| {
            let key = |e: &Event| {
                (
                    e.ctx.run,
                    e.ctx.gen,
                    e.ctx.task,
                    e.ctx.attempt,
                    e.step.unwrap_or(u64::MAX),
                )
            };
            key(a)
                .cmp(&key(b))
                .then_with(|| time_key(a).partial_cmp(&time_key(b)).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.name.cmp(b.name))
                .then_with(|| a.cat.cmp(b.cat))
                .then_with(|| a.worker.cmp(&b.worker))
        });
        let (events, wall_us): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        TelemetrySnapshot {
            events,
            wall_us,
            counters: self.counters.lock().unwrap().iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: self.gauges.lock().unwrap().iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// Secondary sort key: events with absolute sim time first, then in-task
/// offsets, then unplaced bookkeeping.
fn time_key(e: &Event) -> (u8, f64) {
    match e.when {
        When::Sim(t) => (0, t),
        When::InTask(t) => (1, t),
        When::Unplaced => (2, 0.0),
    }
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let stamp = self.wall.map(|t0| t0.elapsed().as_micros() as u64);
        self.events.lock().unwrap().push((event, stamp));
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        *self.counters.lock().unwrap().entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        let mut gauges = self.gauges.lock().unwrap();
        let cell = gauges.entry(name).or_insert(GaugeValue { last: value, max: value });
        cell.last = value;
        if value > cell.max {
            cell.max = value;
        }
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.histograms.lock().unwrap().entry(name).or_default().observe(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_deterministic_and_distinct() {
        let ctx = SpanCtx::root(42, 0).with_gen(3).with_task(5, 1);
        assert_eq!(ctx.span_id(Some(7)), ctx.span_id(Some(7)));
        assert_ne!(ctx.span_id(Some(7)), ctx.span_id(Some(8)));
        assert_ne!(ctx.span_id(None), ctx.span_id(Some(0)));
        let other = SpanCtx::root(42, 0).with_gen(3).with_task(6, 1);
        assert_ne!(ctx.span_id(None), other.span_id(None));
        let other_seed = SpanCtx::root(43, 0).with_gen(3).with_task(5, 1);
        assert_ne!(ctx.span_id(None), other_seed.span_id(None));
    }

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.record(Event::instant("x", "t", SpanCtx::default()));
        r.counter_add("c", 1);
        r.gauge_set("g", 1.0);
        r.observe("h", 1.0);
    }

    #[test]
    fn snapshot_order_is_independent_of_insertion_order() {
        let mk = |task: u32, step: Option<u64>| Event {
            name: "e",
            cat: "t",
            ctx: SpanCtx::root(1, 0).with_task(task, 0),
            step,
            when: When::Unplaced,
            dur_min: 0.0,
            worker: None,
            args: vec![],
        };
        let a = MemoryRecorder::new();
        a.record(mk(1, Some(2)));
        a.record(mk(0, None));
        a.record(mk(1, Some(1)));
        let b = MemoryRecorder::new();
        b.record(mk(1, Some(1)));
        b.record(mk(1, Some(2)));
        b.record(mk(0, None));
        let order = |r: &MemoryRecorder| {
            r.snapshot().events.iter().map(|e| (e.ctx.task, e.step)).collect::<Vec<_>>()
        };
        assert_eq!(order(&a), order(&b));
        assert_eq!(order(&a), vec![(0, None), (1, Some(1)), (1, Some(2))]);
    }

    #[test]
    fn gauges_track_last_and_high_water() {
        let r = MemoryRecorder::new();
        r.gauge_set("g", 3.0);
        r.gauge_set("g", 9.0);
        r.gauge_set("g", 4.0);
        let snap = r.snapshot();
        let (_, g) = &snap.gauges[0];
        assert_eq!(g.last, 4.0);
        assert_eq!(g.max, 9.0);
    }

    #[test]
    fn counters_accumulate() {
        let r = MemoryRecorder::new();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        assert_eq!(r.snapshot().counter("c"), 5);
        assert_eq!(r.snapshot().counter("missing"), 0);
    }

    #[test]
    fn wall_clock_is_side_channel_only() {
        let r = MemoryRecorder::new();
        r.record(Event::instant("x", "t", SpanCtx::default()));
        assert_eq!(r.snapshot().wall_us, vec![None]);
        let w = MemoryRecorder::with_wall_clock();
        w.record(Event::instant("x", "t", SpanCtx::default()));
        assert!(w.snapshot().wall_us[0].is_some());
    }
}
