//! Counters, gauges, and fixed-bucket log-scale histograms.
//!
//! Histograms bucket by the base-2 exponent of the value, extracted
//! directly from the IEEE-754 bit pattern — no `log` calls, no libm, so
//! bucketing is bit-exact on every platform. Bucket `i` covers
//! `[2^(i-32), 2^(i-31))`; values outside `(0, ∞)` (zero, negatives,
//! non-finite) land in bucket 0 and are still counted in `count`/`min`/`max`.

/// Number of histogram buckets (exponents -32..=31, clamped at the ends).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Exponent offset: bucket index = biased exponent − 1023 + 32, clamped.
const EXP_OFFSET: i64 = 32;

/// Last value and high-water mark of a gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GaugeValue {
    /// Most recently set value.
    pub last: f64,
    /// Maximum value ever set (high-water mark).
    pub max: f64,
}

/// Exact running sum of finite `f64`s, kept as a nonoverlapping expansion
/// (Shewchuk's algorithm, as in Python's `math.fsum`).
///
/// The readout is the *correctly rounded* sum of the multiset of
/// observations — a function of the values alone, not of the order worker
/// threads happened to interleave them — which is what keeps histogram
/// exports bit-identical across re-runs. Float addition is not
/// associative, so a plain `+=` here would leak thread-scheduling noise
/// into the last ulp.
#[derive(Clone, Debug, Default)]
pub struct ExactSum {
    partials: Vec<f64>,
}

impl ExactSum {
    /// Fold a finite value into the expansion (error-free transformations;
    /// each partial carries a disjoint range of the exact sum's bits).
    pub fn add(&mut self, mut x: f64) {
        let mut kept = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[kept] = lo;
                kept += 1;
            }
            x = hi;
        }
        self.partials.truncate(kept);
        self.partials.push(x);
    }

    /// Correctly rounded value of the exact sum.
    pub fn value(&self) -> f64 {
        // Sum from largest to smallest; once a nonzero residual appears the
        // remaining partials can only matter through the half-way (round-
        // to-even) correction below — the same finish `math.fsum` uses.
        let p = &self.partials;
        let mut n = p.len();
        if n == 0 {
            return 0.0;
        }
        n -= 1;
        let mut hi = p[n];
        let mut lo = 0.0;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = p[n];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        if n > 0 && ((lo < 0.0 && p[n - 1] < 0.0) || (lo > 0.0 && p[n - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

/// Correctly rounded sum of an iterator of `f64`s (order-independent; see
/// [`ExactSum`]).
pub fn fsum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = ExactSum::default();
    for v in values {
        acc.add(v);
    }
    acc.value()
}

/// Fixed-bucket log₂-scale histogram.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: ExactSum,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: ExactSum::default(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Bucket index for a value: `floor(log2(v))` clamped to the fixed
    /// range, read straight from the exponent bits.
    pub fn bucket_of(v: f64) -> usize {
        if !v.is_finite() || v <= 0.0 {
            return 0;
        }
        let exp = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023;
        (exp + EXP_OFFSET).clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
    }

    /// Inclusive lower bound of bucket `i` (`2^(i-32)`).
    pub fn bucket_lower_bound(i: usize) -> f64 {
        let exp = i as i64 - EXP_OFFSET;
        f64::from_bits(((exp + 1023) as u64) << 52)
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum.add(v);
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
    }

    /// Immutable summary of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum.value(),
            min: if self.min.is_finite() { self.min } else { 0.0 },
            max: if self.max.is_finite() { self.max } else { 0.0 },
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| (Self::bucket_lower_bound(i), *c))
                .collect(),
        }
    }
}

/// Point-in-time summary of a [`Histogram`]: only non-empty buckets are
/// kept, each as `(inclusive lower bound, count)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations (including non-positive/non-finite ones).
    pub count: u64,
    /// Sum of all finite observations, correctly rounded (independent of
    /// observation order — see [`struct@Histogram`]'s exact accumulator).
    pub sum: f64,
    /// Smallest finite observation (0 when none).
    pub min: f64,
    /// Largest finite observation (0 when none).
    pub max: f64,
    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Lower bound of the bucket holding the `q`-quantile observation
    /// (0 when empty). Resolution is one log₂ bucket — a factor of two —
    /// which is enough for the order-of-magnitude wall-clock summaries the
    /// side-channel export publishes, and it is a pure function of the
    /// bucket counts, so it inherits their interleaving independence.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (lower, c) in &self.buckets {
            cumulative += c;
            if cumulative >= target {
                return *lower;
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_matches_log2_floor() {
        assert_eq!(Histogram::bucket_of(1.0), 32);
        assert_eq!(Histogram::bucket_of(2.0), 33);
        assert_eq!(Histogram::bucket_of(3.9), 33);
        assert_eq!(Histogram::bucket_of(0.5), 31);
        assert_eq!(Histogram::bucket_of(0.25), 30);
        // Out-of-range and degenerate values clamp / fall into bucket 0.
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(-1.0), 0);
        assert_eq!(Histogram::bucket_of(f64::NAN), 0);
        assert_eq!(Histogram::bucket_of(1e300), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(1e-300), 0);
    }

    #[test]
    fn bucket_bounds_are_consistent_with_bucket_of() {
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_of(lo), i, "lower bound of bucket {i}");
            assert_eq!(Histogram::bucket_of(lo * 1.999), i);
            assert_eq!(Histogram::bucket_of(lo * 2.0), i + 1);
        }
        assert_eq!(Histogram::bucket_lower_bound(32), 1.0);
    }

    #[test]
    fn observe_tracks_count_sum_min_max() {
        let mut h = Histogram::default();
        h.observe(1.0);
        h.observe(4.0);
        h.observe(0.25);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 5.25);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean(), 1.75);
        assert_eq!(s.buckets, vec![(0.25, 1), (1.0, 1), (4.0, 1)]);
    }

    #[test]
    fn sum_is_exact_and_independent_of_observation_order() {
        // A cancellation pattern where naive left-to-right `+=` loses the
        // small addend entirely: fsum must recover exactly 2.0.
        let mut h = Histogram::default();
        for v in [1e100, 1.0, -1e100, 1.0] {
            h.observe(v);
        }
        assert_eq!(h.snapshot().sum, 2.0);

        // Any interleave of the same observations reads back bit-identical.
        let values = [0.1, 1e16, 0.7221326160372186, -1e16, 657.153271339666, 3.25e-9, 54.1];
        let mut fwd = Histogram::default();
        for v in values {
            fwd.observe(v);
        }
        let mut rev = Histogram::default();
        for v in values.iter().rev() {
            rev.observe(*v);
        }
        assert_eq!(fwd.snapshot().sum.to_bits(), rev.snapshot().sum.to_bits());
        // ...and differs from what naive accumulation would have produced
        // in at least one of the two orders, which is the point.
        let naive_fwd: f64 = values.iter().sum();
        let naive_rev: f64 = values.iter().rev().sum();
        assert_ne!(naive_fwd.to_bits(), naive_rev.to_bits());
    }

    #[test]
    fn non_finite_observations_are_counted_but_not_summed() {
        let mut h = Histogram::default();
        h.observe(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }
}
