//! Per-generation text rollup appended to the fig1 report.

use crate::recorder::{TelemetrySnapshot, NO_TASK};
use crate::names;
use std::collections::BTreeMap;

#[derive(Default)]
struct GenRow {
    evals_ok: u64,
    evals_failed: u64,
    steps: u64,
    makespan_min: f64,
    minutes: f64,
    deaths: u64,
    retries: u64,
    speculated: u64,
    lost_min: f64,
    hypervolume: Option<f64>,
}

fn arg(e: &crate::recorder::Event, key: &str) -> Option<f64> {
    e.args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

/// Render the telemetry rollup: one row per `(run, generation)` aggregated
/// from the deterministic event stream, followed by counter totals and
/// histogram summaries. All quantities are on the simulated clock.
pub fn generation_rollup(snap: &TelemetrySnapshot) -> String {
    let mut rows: BTreeMap<(u32, u32), GenRow> = BTreeMap::new();
    for e in &snap.events {
        let row = rows.entry((e.ctx.run, e.ctx.gen)).or_default();
        match e.name {
            n if n == names::EVAL && e.ctx.task != NO_TASK => {
                if arg(e, "ok").unwrap_or(0.0) > 0.5 {
                    row.evals_ok += 1;
                } else {
                    row.evals_failed += 1;
                }
                row.minutes += arg(e, "minutes").unwrap_or(e.dur_min);
            }
            n if n == names::TRAIN_STEP => row.steps += 1,
            n if n == names::GENERATION => {
                row.makespan_min = e.dur_min;
                row.deaths = arg(e, "deaths").unwrap_or(0.0) as u64;
                row.retries = arg(e, "retried").unwrap_or(0.0) as u64;
                row.speculated = arg(e, "speculated").unwrap_or(0.0) as u64;
                row.lost_min = arg(e, "lost_min").unwrap_or(0.0);
            }
            n if n == names::FRONT => {
                row.hypervolume = arg(e, "hypervolume");
            }
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str("telemetry rollup (simulated clock)\n");
    out.push_str(
        "run gen   ok fail    steps  makespan_min  busy_min  deaths retries spec  lost_min  hypervolume\n",
    );
    for ((run, g), r) in &rows {
        let hv = match r.hypervolume {
            Some(v) => format!("{v:>11.3e}"),
            None => format!("{:>11}", "-"),
        };
        out.push_str(&format!(
            "{:>3} {:>3} {:>4} {:>4} {:>8}      {:>8.1}  {:>8.1}  {:>6} {:>7} {:>4}  {:>8.1}  {}\n",
            run,
            g,
            r.evals_ok,
            r.evals_failed,
            r.steps,
            r.makespan_min,
            r.minutes,
            r.deaths,
            r.retries,
            r.speculated,
            r.lost_min,
            hv
        ));
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:");
        for (name, v) in &snap.counters {
            if !name.starts_with(names::SIDE_PREFIX) {
                out.push_str(&format!(" {name}={v}"));
            }
        }
        out.push('\n');
    }
    for (name, h) in &snap.histograms {
        if name.starts_with(names::SIDE_PREFIX) || h.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "hist {name}: n={} min={:.3e} mean={:.3e} max={:.3e}\n",
            h.count,
            h.min,
            h.mean(),
            h.max
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Event, MemoryRecorder, Recorder, SpanCtx, When};
    use crate::{cats, names};

    #[test]
    fn rollup_aggregates_per_generation() {
        let r = MemoryRecorder::new();
        let base = SpanCtx::root(7, 0).with_gen(0);
        r.record(Event {
            name: names::GENERATION,
            cat: cats::EA,
            ctx: base,
            step: None,
            when: When::Sim(0.0),
            dur_min: 100.0,
            worker: None,
            args: vec![("deaths", 1.0), ("retried", 1.0), ("speculated", 0.0), ("lost_min", 12.5)],
        });
        for (task, ok) in [(0u32, 1.0), (1, 0.0)] {
            r.record(Event {
                name: names::EVAL,
                cat: cats::SCHED,
                ctx: base.with_task(task, 1),
                step: None,
                when: When::Sim(0.0),
                dur_min: 50.0,
                worker: Some(task),
                args: vec![("ok", ok), ("minutes", 50.0)],
            });
        }
        for step in 0..3u64 {
            r.record(Event {
                name: names::TRAIN_STEP,
                cat: cats::TRAIN,
                ctx: base.with_task(0, 1),
                step: Some(step),
                when: When::InTask(step as f64),
                dur_min: 1.0,
                worker: None,
                args: vec![],
            });
        }
        r.counter_add(names::C_STEPS, 3);
        r.observe(names::H_LOSS, 0.5);
        let text = generation_rollup(&r.snapshot());
        assert!(text.contains("telemetry rollup"));
        let row = text.lines().nth(2).unwrap();
        assert!(row.contains("  0   0    1    1        3"), "row: {row:?}");
        assert!(row.contains("100.0"));
        assert!(row.contains("12.5"));
        assert!(row.trim_end().ends_with('-'), "no front event -> hv dash: {row:?}");
        assert!(text.contains("counters: train.steps=3"));
        assert!(text.contains("hist train.loss: n=1"));
    }

    #[test]
    fn rollup_reports_hypervolume_from_front_events() {
        let r = MemoryRecorder::new();
        let base = SpanCtx::root(7, 0).with_gen(1);
        r.record(Event {
            name: names::GENERATION,
            cat: cats::EA,
            ctx: base,
            step: None,
            when: When::Sim(0.0),
            dur_min: 10.0,
            worker: None,
            args: vec![],
        });
        let mut front = Event::instant(names::FRONT, cats::EA, base);
        front.args = vec![("hypervolume", 1.25e-2), ("cardinality", 3.0)];
        r.record(front);
        let text = generation_rollup(&r.snapshot());
        assert!(text.lines().nth(1).unwrap().contains("hypervolume"));
        let row = text.lines().nth(2).unwrap();
        assert!(row.contains("1.250e-2") || row.contains("1.250e2"), "row: {row:?}");
    }
}
