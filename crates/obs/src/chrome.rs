//! Chrome `trace_event` JSON export (Perfetto / `chrome://tracing`).
//!
//! Layout: one process (`pid`) per EA run; `tid 0` is the driver lane and
//! `tid w+1` is worker lane `w`, reconstructed from the scheduler's
//! simulated-clock placement. Timestamps are simulated minutes scaled to
//! microseconds, so one trace minute renders as one real-looking minute.

use crate::json::{escape, fmt_num};
use crate::names;
use crate::recorder::{TelemetrySnapshot, When, NO_TASK};
use std::collections::BTreeMap;

/// Microseconds per simulated minute.
pub const US_PER_MIN: f64 = 60e6;

/// Argument value on a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// Numeric payload.
    Num(f64),
    /// String payload (used for span ids and non-finite numbers).
    Str(String),
}

/// One Chrome `trace_event`. `ph` is `'X'` (complete span), `'i'` (instant),
/// or `'M'` (metadata, e.g. thread names).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Display name.
    pub name: String,
    /// Comma-separated categories.
    pub cat: String,
    /// Phase: `'X'`, `'i'`, or `'M'`.
    pub ph: char,
    /// Timestamp in microseconds (simulated clock).
    pub ts_us: f64,
    /// Duration in microseconds (`'X'` events only).
    pub dur_us: f64,
    /// Process id — the EA run index.
    pub pid: u64,
    /// Thread id — 0 for the driver lane, `w+1` for worker lane `w`.
    pub tid: u64,
    /// Event arguments.
    pub args: Vec<(String, Arg)>,
}

impl TraceEvent {
    /// A complete (`'X'`) span.
    pub fn span(name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64, dur_us: f64) -> Self {
        Self { name: name.to_string(), cat: cat.to_string(), ph: 'X', ts_us, dur_us, pid, tid, args: Vec::new() }
    }

    /// A counter (`'C'`) sample on the driver lane: Perfetto renders
    /// consecutive samples of the same name as a counter track alongside
    /// the span lanes.
    pub fn counter(name: &str, cat: &str, pid: u64, ts_us: f64, value: f64) -> Self {
        Self {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'C',
            ts_us,
            dur_us: 0.0,
            pid,
            tid: 0,
            args: vec![("value".to_string(), Arg::Num(value))],
        }
    }

    /// A thread-name (`'M'`) metadata event for lane `tid` of process `pid`.
    pub fn thread_name(pid: u64, tid: u64, name: &str) -> Self {
        Self {
            name: "thread_name".to_string(),
            cat: String::new(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: 0.0,
            pid,
            tid,
            args: vec![("name".to_string(), Arg::Str(name.to_string()))],
        }
    }

    fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push('{');
        s.push_str(&format!("\"name\":\"{}\"", escape(&self.name)));
        if !self.cat.is_empty() {
            s.push_str(&format!(",\"cat\":\"{}\"", escape(&self.cat)));
        }
        s.push_str(&format!(",\"ph\":\"{}\"", self.ph));
        if self.ph != 'M' {
            s.push_str(&format!(",\"ts\":{}", fmt_num(self.ts_us)));
        }
        if self.ph == 'X' {
            s.push_str(&format!(",\"dur\":{}", fmt_num(self.dur_us)));
        }
        if self.ph == 'i' {
            // Instant scope: thread-local tick.
            s.push_str(",\"s\":\"t\"");
        }
        s.push_str(&format!(",\"pid\":{},\"tid\":{}", self.pid, self.tid));
        if !self.args.is_empty() {
            s.push_str(",\"args\":{");
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                match v {
                    Arg::Num(n) => s.push_str(&format!("\"{}\":{}", escape(k), fmt_num(*n))),
                    Arg::Str(t) => s.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(t))),
                }
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// Render a list of trace events as a Chrome trace JSON document.
pub fn render(events: &[TraceEvent]) -> String {
    let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&e.to_json());
    }
    s.push_str("\n]}\n");
    s
}

/// Simulated-clock placement of one task span, used to resolve
/// [`When::InTask`] and [`When::Unplaced`] events onto worker lanes.
#[derive(Clone, Copy, Debug)]
struct Placement {
    tid: u64,
    start_us: f64,
}

/// Convert a deterministic snapshot into Chrome trace events.
///
/// `eval` spans carry absolute simulated start times and worker lanes (the
/// EA driver derives them from the `Timeline` reconstruction); everything
/// the trainer emitted is task-relative and is nested under its eval span
/// here. Events whose task was never placed (e.g. bookkeeping for replayed
/// evaluations) fall back to the driver lane at the generation span's
/// start; `side.*` events are excluded entirely.
pub fn from_snapshot(snap: &TelemetrySnapshot) -> Vec<TraceEvent> {
    let mut placements: BTreeMap<(u32, u32, u32), Placement> = BTreeMap::new();
    let mut gen_starts: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for e in &snap.events {
        if let When::Sim(t) = e.when {
            if e.name == names::EVAL {
                if let Some(w) = e.worker {
                    placements
                        .entry((e.ctx.run, e.ctx.gen, e.ctx.task))
                        .or_insert(Placement { tid: w as u64 + 1, start_us: t * US_PER_MIN });
                }
            } else if e.name == names::GENERATION {
                gen_starts.entry((e.ctx.run, e.ctx.gen)).or_insert(t * US_PER_MIN);
            }
        }
    }

    let mut lanes: BTreeMap<(u64, u64), &'static str> = BTreeMap::new();
    let mut out: Vec<TraceEvent> = Vec::with_capacity(snap.events.len());
    for e in &snap.events {
        // `side.*` events carry arrival-order data (journal byte offsets);
        // excluding them keeps the trace bit-identical across re-runs.
        if e.name.starts_with(names::SIDE_PREFIX) {
            continue;
        }
        let pid = e.ctx.run as u64;
        let place = placements.get(&(e.ctx.run, e.ctx.gen, e.ctx.task));
        let (tid, ts_us) = match e.when {
            When::Sim(t) => (e.worker.map_or(0, |w| w as u64 + 1), t * US_PER_MIN),
            When::InTask(rel) => match place {
                Some(p) => (p.tid, p.start_us + rel * US_PER_MIN),
                None => (0, rel * US_PER_MIN),
            },
            When::Unplaced => match place {
                Some(p) => (p.tid, p.start_us),
                None => (0, *gen_starts.get(&(e.ctx.run, e.ctx.gen)).unwrap_or(&0.0)),
            },
        };
        lanes.entry((pid, tid)).or_insert(if tid == 0 { "driver" } else { "worker" });
        let mut ev = TraceEvent::span(e.name, e.cat, pid, tid, ts_us, e.dur_min * US_PER_MIN);
        if e.dur_min <= 0.0 {
            ev.ph = 'i';
        }
        ev.args.push(("id".to_string(), Arg::Str(format!("{:#018x}", e.span_id()))));
        ev.args.push(("gen".to_string(), Arg::Num(e.ctx.gen as f64)));
        if e.ctx.task != NO_TASK {
            ev.args.push(("task".to_string(), Arg::Num(e.ctx.task as f64)));
            ev.args.push(("attempt".to_string(), Arg::Num(e.ctx.attempt as f64)));
        }
        if let Some(step) = e.step {
            ev.args.push(("step".to_string(), Arg::Num(step as f64)));
        }
        for (k, v) in &e.args {
            let arg = if v.is_finite() { Arg::Num(*v) } else { Arg::Str(format!("{v}")) };
            ev.args.push(((*k).to_string(), arg));
        }
        out.push(ev);
        // Counter tracks: selected event args become 'C' samples so
        // Perfetto plots search progress and resource efficiency alongside
        // the span lanes. Emitted inline, so sample order follows the
        // deterministic snapshot order.
        let counters: &[(&str, &str)] = if e.name == names::GENERATION {
            &[("n_tasks", "queue depth"), ("util_busy_pct", "utilization %")]
        } else if e.name == names::FRONT {
            &[("hypervolume", "hypervolume")]
        } else {
            &[]
        };
        for (key, track) in counters {
            if let Some(&(_, value)) = e.args.iter().find(|(k, _)| k == key) {
                if value.is_finite() {
                    out.push(TraceEvent::counter(track, e.cat, pid, ts_us, value));
                }
            }
        }
    }

    let mut meta: Vec<TraceEvent> = lanes
        .iter()
        .map(|((pid, tid), kind)| {
            let label = if *tid == 0 {
                format!("{kind} (run {pid})")
            } else {
                format!("{kind} {} (run {pid})", tid - 1)
            };
            TraceEvent::thread_name(*pid, *tid, &label)
        })
        .collect();
    meta.extend(out);
    meta
}

/// Convenience: full pipeline from snapshot to a Perfetto-loadable document.
pub fn trace_json(snap: &TelemetrySnapshot) -> String {
    render(&from_snapshot(snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cats;
    use crate::recorder::{Event, SpanCtx};

    fn eval_event(task: u32, worker: u32, start_min: f64, dur_min: f64) -> Event {
        Event {
            name: names::EVAL,
            cat: cats::SCHED,
            ctx: SpanCtx::root(1, 0).with_gen(0).with_task(task, 1),
            step: None,
            when: When::Sim(start_min),
            dur_min,
            worker: Some(worker),
            args: vec![("ok", 1.0)],
        }
    }

    #[test]
    fn in_task_events_nest_under_their_eval_span() {
        let snap = TelemetrySnapshot {
            events: vec![
                eval_event(0, 2, 10.0, 5.0),
                Event {
                    name: names::TRAIN_STEP,
                    cat: cats::TRAIN,
                    ctx: SpanCtx::root(1, 0).with_gen(0).with_task(0, 1),
                    step: Some(3),
                    when: When::InTask(1.5),
                    dur_min: 0.5,
                    worker: None,
                    args: vec![("loss", 0.25)],
                },
            ],
            ..Default::default()
        };
        let events = from_snapshot(&snap);
        let step = events.iter().find(|e| e.name == names::TRAIN_STEP).unwrap();
        let eval = events.iter().find(|e| e.name == names::EVAL).unwrap();
        assert_eq!(step.tid, 3); // worker 2 → lane 3
        assert_eq!(step.tid, eval.tid);
        assert_eq!(step.ts_us, (10.0 + 1.5) * US_PER_MIN);
        assert!(step.ts_us >= eval.ts_us);
        assert!(step.ts_us + step.dur_us <= eval.ts_us + eval.dur_us + 1e-9);
    }

    #[test]
    fn lanes_get_thread_name_metadata() {
        let snap = TelemetrySnapshot { events: vec![eval_event(0, 0, 0.0, 1.0)], ..Default::default() };
        let events = from_snapshot(&snap);
        let meta: Vec<_> = events.iter().filter(|e| e.ph == 'M').collect();
        assert_eq!(meta.len(), 1);
        assert_eq!(meta[0].tid, 1);
        assert!(matches!(&meta[0].args[0].1, Arg::Str(s) if s.contains("worker 0")));
    }

    #[test]
    fn render_is_valid_enough_json() {
        let snap = TelemetrySnapshot { events: vec![eval_event(1, 0, 2.0, 3.0)], ..Default::default() };
        let doc = trace_json(&snap);
        assert!(doc.starts_with("{\"displayTimeUnit\""));
        assert!(doc.trim_end().ends_with("]}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":120000000"));
        assert!(doc.contains("\"dur\":180000000"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn generation_and_front_events_emit_counter_samples() {
        let generation = Event {
            name: names::GENERATION,
            cat: cats::EA,
            ctx: SpanCtx::root(1, 0).with_gen(2),
            step: None,
            when: When::Sim(5.0),
            dur_min: 10.0,
            worker: None,
            args: vec![("n_tasks", 4.0), ("util_busy_pct", 87.5)],
        };
        let mut front = Event::instant(names::FRONT, cats::EA, SpanCtx::root(1, 0).with_gen(2));
        front.when = When::Sim(15.0);
        front.args = vec![("hypervolume", 0.0125)];
        let snap = TelemetrySnapshot { events: vec![generation, front], ..Default::default() };
        let events = from_snapshot(&snap);
        let counters: Vec<_> = events.iter().filter(|e| e.ph == 'C').collect();
        let names: Vec<&str> = counters.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["queue depth", "utilization %", "hypervolume"]);
        for c in &counters {
            assert_eq!(c.tid, 0, "counter tracks live on the driver lane");
            assert!(matches!(c.args[0], (ref k, Arg::Num(_)) if k == "value"));
        }
        assert_eq!(counters[2].ts_us, 15.0 * US_PER_MIN);
        let doc = render(&events);
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"name\":\"hypervolume\""));
    }

    #[test]
    fn instant_events_carry_scope() {
        let snap = TelemetrySnapshot {
            events: vec![Event::instant(names::SCHED_DEATH, cats::SCHED, SpanCtx::root(1, 0))],
            ..Default::default()
        };
        let doc = trace_json(&snap);
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"s\":\"t\""));
    }
}
