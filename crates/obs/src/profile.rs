//! Deterministic profiler: fold telemetry into a self-time attribution tree.
//!
//! A [`ProfileNode`] carries inclusive time, self time, and a call count
//! per span name, on the **simulated** clock (cost-model minutes) — the
//! wall-clock twin of each phase rides the `side.*` histograms and never
//! enters these artifacts. Two invariants make the tree a deterministic
//! export:
//!
//! * `inclusive == fsum(self, children inclusives)` **bitwise**, enforced
//!   by construction: [`ProfileNode::branch`] computes the inclusive total
//!   with the exact (Shewchuk) accumulator, so the identity holds for every
//!   node regardless of how the tree was assembled or merged.
//! * Children are keyed and ordered by name (lexicographic), so the tree —
//!   and the `.folded` / markdown renderings derived from it — is
//!   independent of event interleaving and worker count.
//!
//! Self time of a span-derived node is *observed* duration minus children
//! (`fsum(dur, -child inclusives)`), which can be slightly negative when a
//! parent span under-reports its children; the JSON keeps the signed value
//! (it is diagnostic), the `.folded` export clamps at zero because
//! collapsed-stack counts are unsigned.

use std::collections::BTreeMap;

use crate::chrome::US_PER_MIN;
use crate::metrics::ExactSum;
use crate::names::{EVAL, GENERATION, SIDE_PREFIX};
use crate::recorder::{TelemetrySnapshot, NO_TASK};

/// Schema tag written into `profile.json`.
pub const PROFILE_SCHEMA: &str = "dphpo-profile-v1";

/// One node of the attribution tree.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileNode {
    /// Span (or synthetic phase) name; frame label in the `.folded` export.
    pub name: String,
    /// Number of spans/events folded into this node (0 for purely
    /// structural intermediate nodes).
    pub count: u64,
    /// Simulated minutes attributed to this node itself (may be negative
    /// for span-derived nodes; see the module docs).
    pub self_min: f64,
    /// `fsum(self_min, children inclusive_min)` — exact by construction.
    pub inclusive_min: f64,
    /// Child nodes, sorted by name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Leaf node: inclusive time equals self time.
    pub fn leaf(name: impl Into<String>, count: u64, self_min: f64) -> Self {
        Self::branch(name, count, self_min, Vec::new())
    }

    /// Interior node; sorts the children by name and computes the inclusive
    /// total exactly, so `self + Σ child == inclusive` holds bitwise.
    pub fn branch(
        name: impl Into<String>,
        count: u64,
        self_min: f64,
        mut children: Vec<ProfileNode>,
    ) -> Self {
        children.sort_by(|a, b| a.name.cmp(&b.name));
        let mut sum = ExactSum::default();
        sum.add(self_min);
        for c in &children {
            sum.add(c.inclusive_min);
        }
        Self { name: name.into(), count, self_min, inclusive_min: sum.value(), children }
    }

    /// Total node count of the subtree (including this node).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProfileNode::size).sum::<usize>()
    }
}

/// Merge same-named subtrees: counts add, self times fold exactly, and
/// children are merged recursively by name.
pub fn merge(name: &str, nodes: &[&ProfileNode]) -> ProfileNode {
    let count = nodes.iter().map(|n| n.count).sum();
    let mut self_sum = ExactSum::default();
    let mut by_name: BTreeMap<&str, Vec<&ProfileNode>> = BTreeMap::new();
    for n in nodes {
        self_sum.add(n.self_min);
        for c in &n.children {
            by_name.entry(&c.name).or_default().push(c);
        }
    }
    let children = by_name.into_iter().map(|(k, group)| merge(k, &group)).collect();
    ProfileNode::branch(name, count, self_sum.value(), children)
}

/// Accumulator used while folding events: durations are collected as exact
/// sums per path and finalized into [`ProfileNode`]s at the end.
#[derive(Default)]
struct Raw {
    count: u64,
    dur: ExactSum,
    children: BTreeMap<String, Raw>,
}

impl Raw {
    fn descend(&mut self, path: &[String]) -> &mut Raw {
        let mut node = self;
        for frame in path {
            node = node.children.entry(frame.clone()).or_default();
        }
        node
    }

    fn finalize(self, name: String) -> ProfileNode {
        let children: Vec<ProfileNode> =
            self.children.into_iter().map(|(n, raw)| raw.finalize(n)).collect();
        // Structural nodes (count 0) were never observed as spans: they own
        // no time of their own. Observed nodes attribute dur − children.
        let self_min = if self.count == 0 {
            0.0
        } else {
            let mut s = self.dur;
            for c in &children {
                s.add(-c.inclusive_min);
            }
            s.value()
        };
        ProfileNode::branch(name, self.count, self_min, children)
    }
}

/// Stack path of an event inside the attribution tree. The hierarchy is
/// structural — run / generation / eval / leaf — rather than temporal, so
/// it is a pure function of each event's [`crate::SpanCtx`] coordinates and
/// needs no begin/end pairing.
fn event_path(run: u32, task: u32, name: &str) -> Vec<String> {
    let run_frame = format!("run{run}");
    if name == GENERATION {
        return vec![run_frame, GENERATION.to_string()];
    }
    if task != NO_TASK {
        if name == EVAL {
            return vec![run_frame, GENERATION.to_string(), EVAL.to_string()];
        }
        return vec![run_frame, GENERATION.to_string(), EVAL.to_string(), name.to_string()];
    }
    vec![run_frame, GENERATION.to_string(), name.to_string()]
}

/// Fold a telemetry snapshot into an attribution tree rooted at
/// `"campaign"`. `side.*` events are skipped (they are wall-clock / racy by
/// contract); instants contribute call counts only. The result is
/// independent of event interleaving and worker count because paths derive
/// from span coordinates and aggregation is keyed by name.
pub fn from_snapshot(snap: &TelemetrySnapshot) -> ProfileNode {
    let mut root = Raw::default(); // structural root: count 0, no own time
    for e in &snap.events {
        if e.name.starts_with(SIDE_PREFIX) {
            continue;
        }
        let path = event_path(e.ctx.run, e.ctx.task, e.name);
        let node = root.descend(&path);
        node.count += 1;
        node.dur.add(e.dur_min);
    }
    root.finalize("campaign".to_string())
}

/// Sanitize a frame name for the collapsed-stack format: the separator is
/// `;` and the count delimiter is a space, so neither may appear in a frame.
fn fold_frame(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c == ';' || c.is_whitespace() { '_' } else { c }).collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

/// Render the tree as collapsed stacks (`a;b;c <count>` per line), loadable
/// by inferno / speedscope / `flamegraph.pl`. Counts are self-time in
/// integer microseconds of simulated time; zero and negative self times are
/// omitted (the format's counts are unsigned).
pub fn folded(root: &ProfileNode) -> String {
    fn walk(node: &ProfileNode, stack: &mut Vec<String>, out: &mut String) {
        stack.push(fold_frame(&node.name));
        let us = (node.self_min * US_PER_MIN).round();
        if us >= 1.0 {
            out.push_str(&stack.join(";"));
            out.push(' ');
            out.push_str(&format!("{}\n", us as u64));
        }
        for c in &node.children {
            walk(c, stack, out);
        }
        stack.pop();
    }
    let mut out = String::new();
    let mut stack = Vec::new();
    walk(root, &mut stack, &mut out);
    out
}

/// Render the tree as a markdown "where the microsecond goes" table:
/// depth-indented span names with call counts, inclusive/self minutes, and
/// self share of the root's inclusive total.
pub fn markdown_table(root: &ProfileNode) -> String {
    fn walk(node: &ProfileNode, depth: usize, total: f64, out: &mut String) {
        let indent = "· ".repeat(depth);
        let share = if total > 0.0 { node.self_min / total * 100.0 } else { 0.0 };
        out.push_str(&format!(
            "| {}{} | {} | {:.4} | {:.4} | {:.2}% |\n",
            indent, node.name, node.count, node.inclusive_min, node.self_min, share
        ));
        for c in &node.children {
            walk(c, depth + 1, total, out);
        }
    }
    let mut out = String::from(
        "| span | calls | inclusive (sim min) | self (sim min) | self % |\n\
         |---|---:|---:|---:|---:|\n",
    );
    walk(root, 0, root.inclusive_min, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Event, MemoryRecorder, Recorder, SpanCtx, When};
    use crate::{cats, names};

    fn span(run: u32, task: u32, name: &'static str, dur: f64) -> Event {
        let mut e = Event::instant(name, cats::SCHED, SpanCtx::root(1, run).with_task(task, 0));
        e.dur_min = dur;
        e.when = When::Sim(0.0);
        e
    }

    #[test]
    fn invariant_holds_for_every_node() {
        fn check(node: &ProfileNode) {
            let mut s = ExactSum::default();
            s.add(node.self_min);
            for c in &node.children {
                s.add(c.inclusive_min);
                check(c);
            }
            assert_eq!(s.value().to_bits(), node.inclusive_min.to_bits(), "node {}", node.name);
        }
        let r = MemoryRecorder::new();
        r.record(span(0, 3, names::EVAL, 7.5));
        r.record(span(0, 3, names::TRAIN_STEP, 0.25));
        r.record(span(0, NO_TASK, names::GENERATION, 9.0));
        r.record(span(1, 0, names::EVAL, 2.0));
        let tree = from_snapshot(&r.snapshot());
        check(&tree);
        assert_eq!(tree.name, "campaign");
        assert_eq!(tree.size(), 8);
    }

    #[test]
    fn aggregation_is_independent_of_recording_order() {
        let events =
            [span(0, 0, names::EVAL, 1.0), span(0, 1, names::EVAL, 2.0), span(0, 0, names::TRAIN_STEP, 0.5)];
        let fwd = MemoryRecorder::new();
        for e in &events {
            fwd.record(e.clone());
        }
        let rev = MemoryRecorder::new();
        for e in events.iter().rev() {
            let mut e = e.clone();
            e.worker = Some(7); // different worker lane must not matter
            rev.record(e);
        }
        assert_eq!(from_snapshot(&fwd.snapshot()), from_snapshot(&rev.snapshot()));
    }

    #[test]
    fn self_time_subtracts_children_and_side_events_are_skipped() {
        let r = MemoryRecorder::new();
        r.record(span(0, NO_TASK, names::GENERATION, 10.0));
        r.record(span(0, 0, names::EVAL, 4.0));
        r.record(span(0, 0, names::TRAIN_STEP, 1.5));
        r.record(span(0, NO_TASK, names::JOURNAL_APPEND, 99.0)); // side.* — ignored
        let tree = from_snapshot(&r.snapshot());
        assert_eq!(tree.inclusive_min, 10.0);
        let generation = &tree.children[0].children[0];
        assert_eq!(generation.name, "generation");
        assert_eq!(generation.self_min, 6.0); // 10 − eval's 4
        let eval = &generation.children[0];
        assert_eq!(eval.name, "eval");
        assert_eq!(eval.self_min, 2.5); // 4 − train.step's 1.5
        assert_eq!(eval.children[0].name, "train.step");
        assert!(!folded(&tree).contains("journal"));
    }

    #[test]
    fn folded_lines_are_valid_collapsed_stacks() {
        let r = MemoryRecorder::new();
        r.record(span(0, NO_TASK, names::GENERATION, 3.0));
        r.record(span(0, 2, names::EVAL, 1.0));
        let out = folded(&from_snapshot(&r.snapshot()));
        assert!(!out.is_empty());
        for line in out.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("count separator");
            assert!(count.parse::<u64>().expect("u64 count") > 0);
            for frame in stack.split(';') {
                assert!(!frame.is_empty(), "empty frame in {line:?}");
                assert!(!frame.contains(' '));
            }
        }
        assert!(out.contains("campaign;run0;generation;eval 60000000\n"));
    }

    #[test]
    fn merge_folds_same_named_children_exactly() {
        let a = ProfileNode::branch("gen0", 1, 0.0, vec![ProfileNode::leaf("busy", 2, 3.0)]);
        let b = ProfileNode::branch("gen1", 1, 0.0, vec![ProfileNode::leaf("busy", 1, 4.0)]);
        let m = merge("all", &[&a, &b]);
        assert_eq!(m.count, 2);
        assert_eq!(m.children.len(), 1);
        assert_eq!(m.children[0].count, 3);
        assert_eq!(m.children[0].inclusive_min, 7.0);
        assert_eq!(m.inclusive_min, 7.0);
    }

    #[test]
    fn markdown_table_shape() {
        let tree = ProfileNode::branch("campaign", 1, 0.0, vec![ProfileNode::leaf("busy", 4, 2.0)]);
        let md = markdown_table(&tree);
        assert!(md.starts_with("| span |"));
        assert!(md.contains("| campaign | 1 | 2.0000 | 0.0000 | 0.00% |"));
        assert!(md.contains("| · busy | 4 | 2.0000 | 2.0000 | 100.00% |"));
    }

    #[test]
    fn fold_frame_sanitizes_separators() {
        assert_eq!(fold_frame("a b;c"), "a_b_c");
        assert_eq!(fold_frame(""), "_");
    }
}
