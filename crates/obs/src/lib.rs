//! Deterministic telemetry for the DP-HPO reproduction.
//!
//! This crate is a leaf: it depends on nothing and every other layer
//! (`dphpo-dnnp`, `dphpo-hpc`, `dphpo-core`, `dphpo-bench`) can depend on it.
//! Its job is to let the trainer, scheduler, EA loop, and journal emit spans,
//! events, and metrics **without perturbing any campaign artifact**:
//!
//! * Span ids are pure functions of `(seed, gen, task, attempt, step)` —
//!   see [`SpanCtx::span_id`] — so two runs of the same campaign emit the
//!   same ids regardless of thread interleaving.
//! * Timestamps live on the *simulated* clock (cost-model minutes), the same
//!   clock the scheduler charges makespan in. Wall-clock readings are an
//!   optional side channel ([`MemoryRecorder::with_wall_clock`]) that never
//!   enters the deterministic exports.
//! * The default recorder is [`NoopRecorder`]: `enabled()` is `false` and
//!   every hook is an empty default method, so the disabled hot path costs
//!   one branch.
//!
//! Exporters: [`chrome::from_snapshot`] + [`chrome::render`] produce Chrome
//! `trace_event` JSON loadable in Perfetto, [`export::events_jsonl`] a line
//! oriented event/metric log, and [`rollup::generation_rollup`] a text table
//! appended to the fig1 report.

#![warn(missing_docs)]

pub mod chrome;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod rollup;

mod json;

pub use metrics::{GaugeValue, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use recorder::{
    Event, MemoryRecorder, NoopRecorder, Recorder, SpanCtx, TelemetrySnapshot, When, NOOP, NO_TASK,
};

/// Canonical event, counter, gauge, and histogram names.
///
/// Instrumentation sites across the workspace use these constants so the
/// exporters and the rollup never drift out of sync with the producers.
/// Names prefixed `side.` are **non-deterministic side channels** (wall
/// clock readings, racy scheduler state) and are excluded from the
/// deterministic exports; see `DESIGN.md` §9.
pub mod names {
    /// Span covering one EA generation (emitted by the evaluator driver).
    pub const GENERATION: &str = "generation";
    /// Span covering one evaluation task on its worker lane.
    pub const EVAL: &str = "eval";
    /// Span covering one optimiser step inside an evaluation.
    pub const TRAIN_STEP: &str = "train.step";
    /// Instant: training aborted (diverged / deadline / cancelled).
    pub const TRAIN_ABORT: &str = "train.abort";
    /// Instant: one learning-curve row (streamed at display frequency).
    pub const LCURVE_ROW: &str = "lcurve.row";
    /// Instant (side channel): a record was appended to the write-ahead
    /// journal, with its byte offset. The offset is a physical file
    /// position decided by completion *arrival* order — a thread race the
    /// journal is explicitly tolerant of — so like wall time it rides the
    /// side channel and stays out of the deterministic exports.
    pub const JOURNAL_APPEND: &str = "side.journal.append";
    /// Instant: a batch of tasks was submitted to the worker pool.
    pub const SCHED_SUBMIT: &str = "sched.submit";
    /// Instant: a simulated worker death consumed an attempt.
    pub const SCHED_DEATH: &str = "sched.death";
    /// Instant: retry backoff charged before re-queueing a task.
    pub const SCHED_BACKOFF: &str = "sched.backoff";
    /// Instant: a speculative twin was launched for a straggler.
    pub const SCHED_TWIN: &str = "sched.twin";
    /// Instant: per-generation Pareto-front quality summary (hypervolume,
    /// cardinality, spread, archive churn) emitted at the generation
    /// boundary after the archive absorbs the population.
    pub const FRONT: &str = "ea.front";
    /// Instant: per-bucket tape-arena allocation summary emitted when a
    /// fused population bucket finishes training, so pool sharing across
    /// bucket members is visible (members, hits/misses/leases, bytes).
    pub const TAPE_BUCKET: &str = "tape.bucket";

    /// Counter: optimiser steps completed.
    pub const C_STEPS: &str = "train.steps";
    /// Counter: training aborts.
    pub const C_ABORTS: &str = "train.aborts";
    /// Counter: simulated worker deaths.
    pub const C_DEATHS: &str = "sched.deaths";
    /// Counter: task retries after a death.
    pub const C_RETRIES: &str = "sched.retries";
    /// Counter: speculative twins launched.
    pub const C_SPECULATED: &str = "sched.speculated";
    /// Counter: heartbeats received by the pool driver.
    pub const C_HEARTBEATS: &str = "sched.heartbeats";
    /// Counter: EA generations evaluated.
    pub const C_GENERATIONS: &str = "ea.generations";
    /// Counter: journal records appended.
    pub const C_JOURNAL_APPENDS: &str = "journal.appends";
    /// Counter: individuals admitted to the Pareto archive.
    pub const C_ARCHIVE_ADDED: &str = "ea.archive_added";
    /// Counter: archive members evicted by newly admitted individuals.
    pub const C_ARCHIVE_EVICTED: &str = "ea.archive_evicted";
    /// Counter: tape-arena buffer leases served from the recycle pool.
    pub const C_TAPE_POOL_HITS: &str = "tape.pool_hits";
    /// Counter: tape-arena buffer leases that had to allocate fresh.
    pub const C_TAPE_POOL_MISSES: &str = "tape.pool_misses";
    /// Counter: total tape-arena buffer leases (hits + misses).
    pub const C_TAPE_LEASES: &str = "tape.leases";

    /// Gauge: tasks queued at batch submission (last + high-water).
    pub const G_QUEUE_DEPTH: &str = "sched.queue_depth";
    /// Gauge: `Tape` arena node count per step (high-water tracks peak).
    pub const G_TAPE_NODES: &str = "tape.nodes";
    /// Gauge: `Tape` pooled buffer count after reset (high-water tracks peak).
    pub const G_TAPE_POOLED: &str = "tape.pooled_buffers";
    /// Gauge (side channel): workers quarantined — racy under speculation.
    pub const G_QUARANTINED: &str = "side.quarantined_workers";
    /// Gauge: archive hypervolume against the campaign reference point,
    /// refreshed at each generation boundary (high-water tracks the best).
    pub const G_HYPERVOLUME: &str = "ea.hypervolume";
    /// Gauge: Pareto-archive cardinality at the generation boundary.
    pub const G_ARCHIVE_SIZE: &str = "ea.archive_size";
    /// Gauge: front spread (gap-uniformity) at the generation boundary.
    pub const G_FRONT_SPREAD: &str = "ea.front_spread";
    /// Gauge: busy share of the batch's worker-minutes capacity, percent
    /// (`Σ busy / (wall × workers)`), refreshed per evaluated batch.
    pub const G_UTIL_BUSY_PCT: &str = "sched.util_busy_pct";
    /// Gauge: high-water of bytes leased out of the tape arena at once
    /// (pool hits and fresh allocations alike; high-water tracks peak).
    pub const G_TAPE_LEASED_HW: &str = "tape.leased_bytes_hw";
    /// Gauge: bytes of capacity retained in the tape's recycle pool.
    pub const G_TAPE_RETAINED: &str = "tape.retained_bytes";

    /// Histogram: training loss per step.
    pub const H_LOSS: &str = "train.loss";
    /// Histogram: learning rate per step.
    pub const H_LR: &str = "train.lr";
    /// Histogram: global gradient L2 norm per step.
    pub const H_GRAD_NORM: &str = "train.grad_norm";
    /// Histogram: charged minutes per evaluation.
    pub const H_EVAL_MINUTES: &str = "eval.minutes";
    /// Histogram: backoff minutes charged per retry.
    pub const H_BACKOFF_MIN: &str = "sched.backoff_min";
    /// Histogram (side channel): wall nanoseconds per optimiser step.
    pub const H_STEP_WALL_NS: &str = "side.step_wall_ns";
    /// Histogram (side channel): wall nanoseconds of the graph phase of a
    /// step (descriptor + forward + force + loss tape construction).
    pub const H_PHASE_GRAPH_WALL_NS: &str = "side.phase.graph_wall_ns";
    /// Histogram (side channel): wall nanoseconds of the value-level
    /// backward sweep per step.
    pub const H_PHASE_BACKWARD_WALL_NS: &str = "side.phase.backward_wall_ns";
    /// Histogram (side channel): wall nanoseconds of the in-place Adam
    /// update per step.
    pub const H_PHASE_OPTIMIZER_WALL_NS: &str = "side.phase.optimizer_wall_ns";
    /// Histogram (side channel): wall nanoseconds of the validation RMSE
    /// pass (its own persistent tape, forward + force only).
    pub const H_PHASE_VAL_WALL_NS: &str = "side.phase.val_wall_ns";

    /// Prefix marking a metric or event as a non-deterministic side channel.
    pub const SIDE_PREFIX: &str = "side.";
}

/// Event categories used by the in-tree instrumentation.
pub mod cats {
    /// Evolutionary-algorithm driver events.
    pub const EA: &str = "ea";
    /// Worker-pool scheduler events.
    pub const SCHED: &str = "sched";
    /// Training-loop events.
    pub const TRAIN: &str = "train";
    /// Learning-curve streaming events.
    pub const LCURVE: &str = "lcurve";
    /// Write-ahead journal events.
    pub const JOURNAL: &str = "journal";
}
