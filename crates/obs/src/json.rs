//! Minimal JSON emission helpers.
//!
//! `dphpo-obs` is a leaf crate, so it cannot reuse the `dphpo-dnnp` Json
//! codec; these helpers replicate its number formatting rule (integral
//! values below 1e15 print without a fractional part) so telemetry files
//! look like the rest of the repo's JSON artifacts.

/// Format a number the way the in-repo Json codec does. Non-finite values
/// have no JSON literal, so they are emitted as quoted strings.
pub(crate) fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Escape a string for inclusion inside a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_values_print_without_fraction() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(-7.0), "-7");
        assert_eq!(fmt_num(0.5), "0.5");
        assert_eq!(fmt_num(1e16), "10000000000000000");
    }

    #[test]
    fn non_finite_values_become_strings() {
        assert_eq!(fmt_num(f64::NAN), "\"NaN\"");
        assert_eq!(fmt_num(f64::INFINITY), "\"inf\"");
        assert_eq!(fmt_num(f64::NEG_INFINITY), "\"-inf\"");
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
