//! Chaos test for the write-ahead evaluation journal: kill the (simulated)
//! driver after *every possible* task index, resume from the journal left
//! behind, and assert the resumed campaign is bit-identical to an
//! uninterrupted one — final populations, Pareto archives, and the
//! analysis CSVs the paper's figures are built from.

use std::path::PathBuf;
use std::sync::Arc;

use dphpo_core::analysis::{analyze, level_plot_csv};
use dphpo_core::experiment::{
    resume_experiment, run_experiment_journaled, run_experiment_journaled_with_kill, Campaign,
    ExperimentConfig, ExperimentError, ExperimentResult,
};
use dphpo_evo::Individual;
use dphpo_hpc::{FaultPlan, IoFault, JOURNAL_APPEND_SITE};

/// Tiny campaign with faults and retries switched on, so replay covers
/// successful, penalised, and retried evaluations: 2 runs × 3 individuals
/// × 2 generations = 12 tasks.
fn chaos_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    config.pop_size = 3;
    config.fault_probability = 0.2;
    config.pool.nanny = true;
    config.pool.max_attempts = 2;
    // Speculative re-execution on: resume must stay bit-identical even
    // when stragglers race their twins and losers are cancelled.
    config.pool.supervisor.speculate = true;
    config.master_seed = 41;
    config
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dphpo-chaos-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

fn canon_individual(ind: &Individual) -> String {
    // Ids are included: they are derived from (run seed, ordinal), so an
    // interrupted-and-resumed campaign reproduces them exactly.
    format!(
        "id={} genome={:?} fitness={:?} rank={} distance={:?} minutes={:?}",
        ind.id,
        ind.genome,
        ind.fitness.as_ref().map(|f| f.values().to_vec()),
        ind.rank,
        ind.distance,
        ind.eval_minutes,
    )
}

/// Canonical text form of everything the campaign's result feeds into the
/// paper's figures; `{:?}` on `f64` is shortest-round-trip, so equal
/// strings mean bit-equal values.
fn canon(result: &ExperimentResult) -> String {
    let mut out = String::new();
    for (run_idx, run) in result.runs.iter().enumerate() {
        out.push_str(&format!("run {run_idx} evaluations={}\n", run.evaluations));
        for record in &run.history {
            out.push_str(&format!(
                "  gen {} failures={}\n",
                record.generation, record.failures
            ));
            for ind in &record.population {
                out.push_str(&format!("    {}\n", canon_individual(ind)));
            }
        }
    }
    for (run_idx, archive) in result.archives.iter().enumerate() {
        out.push_str(&format!("archive {run_idx}\n"));
        for ind in archive.members() {
            out.push_str(&format!("    {}\n", canon_individual(ind)));
        }
    }
    out.push_str("--- parallel coordinates ---\n");
    out.push_str(&analyze(result).parallel_coordinates_csv());
    out.push_str("--- level plot ---\n");
    out.push_str(&level_plot_csv(result));
    out
}

#[test]
fn resume_is_bit_identical_after_killing_the_driver_at_every_task() {
    let config = chaos_config();
    let total_tasks =
        (config.n_runs * config.pop_size * (config.generations + 1)) as u64;

    let reference_path = scratch("reference.jsonl");
    let reference = run_experiment_journaled(&config, &reference_path, None)
        .expect("uninterrupted campaign");
    let reference_canon = canon(&reference);
    let reference_journal_bytes = std::fs::read(&reference_path).unwrap();

    // Sanity: the campaign really exercises the fault machinery, so replay
    // covers penalty and retry records, not just clean successes.
    assert!(
        reference.pool_reports.iter().flatten().any(|r| r.worker_deaths > 0),
        "chaos config should produce worker deaths"
    );

    for kill_after in 0..=total_tasks {
        let path = scratch(&format!("kill-{kill_after}.jsonl"));
        let outcome = run_experiment_journaled_with_kill(&config, &path, kill_after);
        match outcome {
            // `completed_tasks` is the dying run's local count; the kill
            // budget spans runs, so only the error kind is asserted here.
            Err(ExperimentError::Interrupted { completed_tasks }) => {
                assert!(completed_tasks <= total_tasks);
            }
            Err(other) => panic!("kill_after={kill_after}: unexpected error {other}"),
            Ok(_) => panic!("kill_after={kill_after} within {total_tasks} tasks must interrupt"),
        }
        let resumed = resume_experiment(&config, &path, None)
            .unwrap_or_else(|e| panic!("resume after kill_after={kill_after}: {e}"));
        assert_eq!(
            canon(&resumed),
            reference_canon,
            "kill_after={kill_after}: resumed campaign diverged from uninterrupted run"
        );
        // Stronger than result identity: records are framed and released in
        // slot order with stable ids, so the journal the kill+resume pair
        // leaves behind is byte-for-byte what the uninterrupted run wrote.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            reference_journal_bytes,
            "kill_after={kill_after}: journal bytes diverged"
        );
    }

    let _ = std::fs::remove_dir_all(reference_path.parent().unwrap());
}

#[test]
fn scripted_io_faults_interrupt_and_a_clean_resume_restores_byte_identity() {
    let config = chaos_config();

    let reference_path = scratch("fault-reference.jsonl");
    let reference =
        run_experiment_journaled(&config, &reference_path, None).expect("uninterrupted campaign");
    let reference_canon = canon(&reference);
    let reference_journal_bytes = std::fs::read(&reference_path).unwrap();

    // One scripted fault per kind at the journal-append site, plus a
    // plan-driven driver kill. Each interrupts the campaign; a *clean*
    // resume (no plan — per-process occurrence counters restart, so
    // re-arming the same script would re-fire the same fault forever)
    // must land on the uninterrupted journal byte-for-byte.
    let cases: Vec<(&str, FaultPlan)> = vec![
        ("short-write", FaultPlan::new(7).script(JOURNAL_APPEND_SITE, 4, IoFault::ShortWrite)),
        ("io-error", FaultPlan::new(7).script(JOURNAL_APPEND_SITE, 1, IoFault::IoError)),
        ("disk-full", FaultPlan::new(7).script(JOURNAL_APPEND_SITE, 7, IoFault::DiskFull)),
        ("fsync-fail", FaultPlan::new(7).script(JOURNAL_APPEND_SITE, 10, IoFault::FsyncFail)),
        ("driver-kill", FaultPlan::new(7).kill_driver_at(5)),
    ];
    for (tag, plan) in cases {
        let path = scratch(&format!("fault-{tag}.jsonl"));
        match Campaign::new(&config).journal(&path).fault_plan(Arc::new(plan)).run(None) {
            Err(ExperimentError::Interrupted { .. }) => {}
            Err(other) => panic!("{tag}: unexpected error {other}"),
            Ok(_) => panic!("{tag}: scripted fault must interrupt the campaign"),
        }
        let resumed = Campaign::new(&config)
            .journal(&path)
            .resume()
            .run(None)
            .unwrap_or_else(|e| panic!("{tag}: clean resume failed: {e}"));
        assert_eq!(canon(&resumed), reference_canon, "{tag}: resumed campaign diverged");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            reference_journal_bytes,
            "{tag}: journal bytes diverged"
        );
    }

    let _ = std::fs::remove_file(&reference_path);
}

#[test]
fn resuming_a_completed_journal_reconstructs_without_retraining() {
    let mut config = chaos_config();
    config.master_seed = 43;
    let path = scratch("complete-43.jsonl");
    let reference = run_experiment_journaled(&config, &path, None).expect("campaign");
    let before = std::fs::metadata(&path).expect("journal exists").len();
    let resumed = resume_experiment(&config, &path, None).expect("resume of complete journal");
    assert_eq!(canon(&resumed), canon(&reference));
    // Nothing new to journal: the file is untouched.
    assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_a_journal_from_a_different_configuration() {
    let mut config = chaos_config();
    config.master_seed = 44;
    let path = scratch("stale-44.jsonl");
    run_experiment_journaled(&config, &path, None).expect("campaign");
    let mut changed = config.clone();
    changed.base_train_config.num_steps += 1;
    match resume_experiment(&changed, &path, None) {
        Err(ExperimentError::Journal(e)) => {
            assert!(e.message.contains("stale journal"), "unexpected message: {e}");
        }
        Err(other) => panic!("expected a stale-journal error, got {other}"),
        Ok(_) => panic!("stale journal must be rejected"),
    }
    let _ = std::fs::remove_file(&path);
}
