//! Byte-identity of the campaign observatory under crash/resume: a
//! campaign whose driver is killed mid-flight and resumed from the journal
//! must end with a `campaign_status.json`, an end-of-run markdown report,
//! and Chrome counter tracks byte-identical to the uninterrupted run's.
//! The status rows are pure functions of journaled data (each generation's
//! population replayed through the archive, plus the deterministic
//! scheduler report), which is what makes this possible at all.

use std::path::PathBuf;

use dphpo_core::campaign_report::{counter_trace_json, markdown_report, parse_status, status_json};
use dphpo_core::experiment::{Campaign, ExperimentConfig, ExperimentError};

/// Small faulty campaign exercising deaths, retries, backoff, and
/// speculation — every path that feeds the utilization partition.
fn config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    config.pop_size = 3;
    config.fault_probability = 0.2;
    config.pool.nanny = true;
    config.pool.max_attempts = 2;
    config.pool.supervisor.speculate = true;
    config.master_seed = 43;
    config
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dphpo-campaign-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

#[test]
fn killed_and_resumed_campaign_reproduces_the_observatory_byte_for_byte() {
    let config = config();

    // Uninterrupted reference run.
    let journal_a = scratch("a.jsonl");
    let status_a = scratch("a_status.json");
    let result_a = Campaign::new(&config)
        .journal(&journal_a)
        .status_file(&status_a)
        .run(None)
        .expect("uninterrupted campaign");
    let status_bytes_a = std::fs::read_to_string(&status_a).unwrap();
    // The file on disk is exactly the in-memory status, rendered.
    assert_eq!(status_bytes_a, status_json(&result_a.status));
    let report_a = markdown_report(&result_a.status);
    let tracks_a = counter_trace_json(&result_a.status);

    // Chaos run: the driver dies after 5 completed tasks, mid-campaign.
    let journal_b = scratch("b.jsonl");
    let status_b = scratch("b_status.json");
    let killed = Campaign::new(&config)
        .journal(&journal_b)
        .status_file(&status_b)
        .kill_after(5)
        .run(None);
    match killed {
        Err(ExperimentError::Interrupted { .. }) => {}
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("driver should have been killed"),
    }

    // The kill left a valid, partial status behind (atomic rewrites never
    // tear), strictly short of the full campaign.
    let partial = parse_status(&std::fs::read_to_string(&status_b).unwrap()).expect("parses");
    let rows = |s: &dphpo_core::CampaignStatus| -> usize {
        s.runs.iter().map(|r| r.generations.len()).sum()
    };
    let full_rows = config.n_runs * (config.generations + 1);
    assert!(rows(&partial) < full_rows, "kill landed after the campaign finished");

    // Resume from the journal: the observatory must converge to the
    // uninterrupted bytes — status file, report, and counter tracks.
    let result_b = Campaign::new(&config)
        .journal(&journal_b)
        .status_file(&status_b)
        .resume()
        .run(None)
        .expect("resumed campaign");
    let status_bytes_b = std::fs::read_to_string(&status_b).unwrap();
    assert_eq!(status_bytes_a, status_bytes_b, "campaign_status.json differs after resume");
    assert_eq!(report_a, markdown_report(&result_b.status), "markdown report differs");
    assert_eq!(tracks_a, counter_trace_json(&result_b.status), "counter tracks differ");
    assert_eq!(rows(&result_b.status), full_rows);

    // The observatory actually observed something interesting: the archive
    // is populated (smoke-scale RMSEs may sit outside the paper's fixed
    // reference box, so hypervolume is only required to be finite and
    // non-negative) and the faulty pool lost time somewhere.
    let last_rows: Vec<_> =
        result_b.status.runs.iter().filter_map(|r| r.generations.last()).collect();
    assert!(last_rows.iter().all(|row| row.cardinality > 0));
    assert!(last_rows.iter().all(|row| row.hypervolume >= 0.0 && row.hypervolume.is_finite()));
    assert!(last_rows.iter().all(|row| row.utilization_pct > 0.0));
    let lost: f64 = result_b
        .status
        .runs
        .iter()
        .flat_map(|r| &r.generations)
        .map(|g| g.lost_death_minutes + g.lost_speculation_minutes + g.backoff_minutes)
        .sum();
    assert!(lost > 0.0, "fault injection produced no visible losses");

    for p in [&journal_a, &status_a, &journal_b, &status_b] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn resuming_a_finished_campaign_rewrites_the_same_status() {
    let config = config();
    let journal = scratch("done.jsonl");
    let status_path = scratch("done_status.json");
    let result = Campaign::new(&config)
        .journal(&journal)
        .status_file(&status_path)
        .run(None)
        .expect("campaign");
    let bytes = std::fs::read_to_string(&status_path).unwrap();

    // Resume of a fully-journaled campaign reconstructs every run without
    // an evaluator — the status file must still be rewritten identically.
    std::fs::remove_file(&status_path).unwrap();
    let resumed = Campaign::new(&config)
        .journal(&journal)
        .status_file(&status_path)
        .resume()
        .run(None)
        .expect("resume of finished campaign");
    assert_eq!(std::fs::read_to_string(&status_path).unwrap(), bytes);
    assert_eq!(status_json(&resumed.status), status_json(&result.status));

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&status_path);
}
