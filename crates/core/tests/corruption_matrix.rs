//! Corruption-and-salvage matrix (DESIGN.md §13): damage a finished
//! journal at systematically chosen byte offsets — single-byte flips and
//! truncations — then salvage and resume, and assert the recovered
//! campaign reproduces the undamaged one byte-for-byte. A seeded
//! fault-plan sweep (`CHAOS_SEEDS`) injects random I/O faults mid-run and
//! asserts a clean resume restores identity; a scripted fsync fault at the
//! status-file site asserts the status surface self-heals.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dphpo_core::experiment::{
    run_experiment_journaled_with_kill, Campaign, CampaignMode, ExperimentConfig,
    ExperimentError, ExperimentResult,
};
use dphpo_core::{compact, salvage, verify, Journal};
use dphpo_evo::Individual;
use dphpo_hpc::{FaultPlan, IoFault, JOURNAL_APPEND_SITE, STATUS_FSYNC_SITE};

/// Generational chaos campaign: 2 runs × 3 individuals × 2 generations.
fn generational_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    config.pop_size = 3;
    config.fault_probability = 0.2;
    config.pool.nanny = true;
    config.pool.max_attempts = 2;
    config.master_seed = 41;
    config
}

/// Steady-state variant of the same campaign: 16 arrivals over 3 slots.
fn steady_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    config.mode = CampaignMode::SteadyState;
    config.pool.n_workers = 3;
    config.fault_probability = 0.2;
    config.pool.nanny = true;
    config.pool.max_attempts = 2;
    config.master_seed = 41;
    config
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dphpo-corrupt-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn canon_individual(ind: &Individual) -> String {
    format!(
        "id={} genome={:?} fitness={:?} rank={} distance={:?} minutes={:?}",
        ind.id,
        ind.genome,
        ind.fitness.as_ref().map(|f| f.values().to_vec()),
        ind.rank,
        ind.distance,
        ind.eval_minutes,
    )
}

fn canon(result: &ExperimentResult) -> String {
    let mut out = String::new();
    for (run_idx, run) in result.runs.iter().enumerate() {
        out.push_str(&format!("run {run_idx} evaluations={}\n", run.evaluations));
        for record in &run.history {
            out.push_str(&format!("  gen {} failures={}\n", record.generation, record.failures));
            for ind in &record.population {
                out.push_str(&format!("    {}\n", canon_individual(ind)));
            }
        }
    }
    for (run_idx, archive) in result.archives.iter().enumerate() {
        out.push_str(&format!("archive {run_idx}\n"));
        for ind in archive.members() {
            out.push_str(&format!("    {}\n", canon_individual(ind)));
        }
    }
    out
}

/// Reference artifacts for one campaign mode: result canon plus the exact
/// journal and status bytes an undamaged campaign writes.
struct Reference {
    canon: String,
    journal: Vec<u8>,
    status: Vec<u8>,
}

fn reference_for(config: &ExperimentConfig, tag: &str) -> Reference {
    let journal_path = scratch(&format!("{tag}-reference.jsonl"));
    let status_path = scratch(&format!("{tag}-reference-status.json"));
    let result = Campaign::new(config)
        .journal(&journal_path)
        .status_file(&status_path)
        .run(None)
        .expect("uninterrupted reference campaign");
    Reference {
        canon: canon(&result),
        journal: std::fs::read(&journal_path).unwrap(),
        status: std::fs::read(&status_path).unwrap(),
    }
}

/// Complete a campaign from whatever valid prefix `path` holds: resume if
/// the salvaged journal still has frames, start fresh if salvage had to
/// throw everything away (header damage truncates to zero frames).
fn complete_from(
    config: &ExperimentConfig,
    path: &Path,
    status_path: &Path,
    context: &str,
) -> ExperimentResult {
    let report = verify(path).unwrap_or_else(|e| panic!("{context}: verify failed: {e}"));
    assert!(!report.damaged(), "{context}: salvage left damage behind");
    if report.frames == 0 {
        let _ = std::fs::remove_file(path);
        return Campaign::new(config)
            .journal(path)
            .status_file(status_path)
            .run(None)
            .unwrap_or_else(|e| panic!("{context}: fresh rerun failed: {e}"));
    }
    Campaign::new(config)
        .journal(path)
        .status_file(status_path)
        .resume()
        .run(None)
        .unwrap_or_else(|e| panic!("{context}: resume failed: {e}"))
}

fn assert_recovered(config: &ExperimentConfig, reference: &Reference, damaged: &[u8], tag: &str) {
    let path = scratch(&format!("{tag}.jsonl"));
    let status_path = scratch(&format!("{tag}-status.json"));
    std::fs::write(&path, damaged).unwrap();
    let _ = std::fs::remove_file(&status_path);
    salvage(&path).unwrap_or_else(|e| panic!("{tag}: salvage failed: {e}"));
    let recovered = complete_from(config, &path, &status_path, tag);
    assert_eq!(canon(&recovered), reference.canon, "{tag}: recovered campaign diverged");
    assert_eq!(std::fs::read(&path).unwrap(), reference.journal, "{tag}: journal bytes diverged");
    assert_eq!(
        std::fs::read(&status_path).unwrap(),
        reference.status,
        "{tag}: status bytes diverged"
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{}.quarantine", path.display()));
    let _ = std::fs::remove_file(&status_path);
}

/// Salvage correctness across byte offsets, for both damage shapes and
/// both campaign modes: the salvaged file must be an exact prefix of the
/// undamaged journal (flips never survive the checksum), with the rest
/// quarantined, and a second salvage must be a no-op. `SALVAGE_STRIDE=1`
/// makes the sweep exhaustive over every byte offset; the default stride
/// is a prime smaller than the frame prefix, so every field of every
/// frame kind still gets hit.
#[test]
fn salvage_recovers_a_clean_prefix_across_byte_offsets() {
    let stride = env_usize("SALVAGE_STRIDE", 13).max(1);
    for (tag, config) in
        [("gen", generational_config()), ("steady", steady_config())]
    {
        let reference = reference_for(&config, &format!("salvage-{tag}"));
        let bytes = &reference.journal;
        let path = scratch(&format!("salvage-{tag}-work.jsonl"));
        let quarantine = PathBuf::from(format!("{}.quarantine", path.display()));
        for offset in (0..bytes.len()).step_by(stride) {
            for (shape, damaged) in [
                ("flip", {
                    let mut d = bytes.clone();
                    d[offset] ^= 0x01;
                    d
                }),
                ("truncate", bytes[..offset].to_vec()),
            ] {
                std::fs::write(&path, &damaged).unwrap();
                let _ = std::fs::remove_file(&quarantine);
                let report = salvage(&path)
                    .unwrap_or_else(|e| panic!("{tag} {shape}@{offset}: salvage failed: {e}"));
                let salvaged = std::fs::read(&path).unwrap();
                assert_eq!(
                    salvaged,
                    bytes[..report.valid_len as usize],
                    "{tag} {shape}@{offset}: salvaged file is not a prefix of the original"
                );
                assert_eq!(
                    report.quarantined_bytes as usize,
                    damaged.len() - report.valid_len as usize,
                    "{tag} {shape}@{offset}: quarantine does not cover the damaged suffix"
                );
                if report.quarantined_bytes > 0 {
                    assert_eq!(
                        std::fs::read(&quarantine).unwrap(),
                        damaged[report.valid_len as usize..],
                        "{tag} {shape}@{offset}: quarantined bytes diverged"
                    );
                }
                if shape == "flip" {
                    // A flipped byte can never hide inside a valid frame.
                    assert!(
                        (report.valid_len as usize) <= offset,
                        "{tag} flip@{offset}: salvage kept a damaged frame \
                         (valid_len={})",
                        report.valid_len
                    );
                }
                let again = salvage(&path)
                    .unwrap_or_else(|e| panic!("{tag} {shape}@{offset}: re-salvage failed: {e}"));
                assert_eq!(again.quarantined_bytes, 0, "salvage must be idempotent");
                let check = verify(&path).unwrap();
                assert!(!check.damaged(), "{tag} {shape}@{offset}: salvage left damage");
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&quarantine);
    }
}

/// Full recovery at `CORRUPT_STRIDE`-stepped offsets (default 211): flip
/// or truncate, salvage, resume (or restart when the header itself died),
/// and require the recovered journal, status file, and results to be
/// byte-identical to the undamaged campaign's.
#[test]
fn flip_and_truncate_then_salvage_then_resume_is_byte_identical() {
    let stride = env_usize("CORRUPT_STRIDE", 211).max(1);
    for (tag, config) in
        [("gen", generational_config()), ("steady", steady_config())]
    {
        let reference = reference_for(&config, &format!("matrix-{tag}"));
        let bytes = &reference.journal;
        for offset in (0..bytes.len()).step_by(stride) {
            let mut flipped = bytes.clone();
            flipped[offset] ^= 0x01;
            assert_recovered(&config, &reference, &flipped, &format!("matrix-{tag}-flip-{offset}"));
            assert_recovered(
                &config,
                &reference,
                &bytes[..offset],
                &format!("matrix-{tag}-trunc-{offset}"),
            );
        }
    }
}

/// Seeded random I/O faults at the journal-append site (`CHAOS_SEEDS`
/// seeds, default 2): every interruption the plan produces must be
/// recoverable by salvage + a clean resume, landing on the undamaged
/// campaign byte-for-byte.
#[test]
fn seeded_io_fault_sweep_recovers_in_both_campaign_modes() {
    let seeds = env_usize("CHAOS_SEEDS", 2) as u64;
    for (tag, config) in
        [("gen", generational_config()), ("steady", steady_config())]
    {
        let reference = reference_for(&config, &format!("sweep-{tag}"));
        for seed in 0..seeds {
            let tag = format!("sweep-{tag}-{seed}");
            let path = scratch(&format!("{tag}.jsonl"));
            let status_path = scratch(&format!("{tag}-status.json"));
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&status_path);
            let plan = Arc::new(FaultPlan::new(seed).io_rate(0.08));
            match Campaign::new(&config)
                .journal(&path)
                .status_file(&status_path)
                .fault_plan(plan)
                .run(None)
            {
                Ok(result) => {
                    // The plan fired no fault under this seed: the campaign
                    // must be indistinguishable from an unfaulted one.
                    assert_eq!(canon(&result), reference.canon, "{tag}: clean run diverged");
                }
                Err(ExperimentError::Interrupted { .. }) => {
                    salvage(&path).unwrap_or_else(|e| panic!("{tag}: salvage failed: {e}"));
                    let recovered = complete_from(&config, &path, &status_path, &tag);
                    assert_eq!(canon(&recovered), reference.canon, "{tag}: recovery diverged");
                }
                Err(other) => panic!("{tag}: unexpected error {other}"),
            }
            assert_eq!(std::fs::read(&path).unwrap(), reference.journal, "{tag}: journal bytes");
            assert_eq!(
                std::fs::read(&status_path).unwrap(),
                reference.status,
                "{tag}: status bytes"
            );
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(format!("{}.quarantine", path.display()));
            let _ = std::fs::remove_file(&status_path);
        }
    }
}

/// A scripted fsync failure at the status-file site skips one atomic
/// rewrite; because every boundary rewrites the whole file, the next flush
/// heals it and the final status bytes are unchanged.
#[test]
fn a_failed_status_fsync_self_heals_by_the_final_flush() {
    for (tag, config) in
        [("gen", generational_config()), ("steady", steady_config())]
    {
        let reference = reference_for(&config, &format!("fsync-{tag}"));
        let path = scratch(&format!("fsync-{tag}.jsonl"));
        let status_path = scratch(&format!("fsync-{tag}-status.json"));
        let plan = Arc::new(FaultPlan::new(3).script(STATUS_FSYNC_SITE, 1, IoFault::FsyncFail));
        let result = Campaign::new(&config)
            .journal(&path)
            .status_file(&status_path)
            .fault_plan(plan)
            .run(None)
            .expect("a status fsync fault must not kill the campaign");
        assert_eq!(canon(&result), reference.canon, "{tag}: result diverged");
        assert_eq!(
            std::fs::read(&status_path).unwrap(),
            reference.status,
            "{tag}: status file did not heal"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&status_path);
    }
}

/// A scripted journal-append fault still interrupts (the journal is the
/// source of truth; its faults are fatal by design) — asserted here for
/// the status site's sibling so the two sites' contracts stay distinct.
#[test]
fn a_failed_journal_append_is_fatal_by_design() {
    let config = generational_config();
    let path = scratch("fatal-append.jsonl");
    let plan = Arc::new(FaultPlan::new(3).script(JOURNAL_APPEND_SITE, 1, IoFault::IoError));
    match Campaign::new(&config).journal(&path).fault_plan(plan).run(None) {
        Err(ExperimentError::Interrupted { .. }) => {}
        Err(other) => panic!("journal faults must interrupt, got {other}"),
        Ok(_) => panic!("journal faults must interrupt, got a completed campaign"),
    }
    let _ = std::fs::remove_file(&path);
}

/// Snapshots bound resume replay to O(window): the suffix of evaluation
/// records at or after the last snapshot never exceeds one snapshot
/// window, and compaction shrinks a finished steady journal to exactly
/// that suffix while preserving resume identity.
#[test]
fn snapshots_bound_replay_and_compaction_preserves_identity() {
    let config = steady_config();
    let snap_every = config.snapshot_every_epochs * config.pop_size;
    let budget = (config.n_runs * config.pop_size * (config.generations + 1)) as u64;

    // Kill late enough that run 0 has passed at least one snapshot window.
    let killed = scratch("snap-killed.jsonl");
    match run_experiment_journaled_with_kill(&config, &killed, budget - 3) {
        Err(ExperimentError::Interrupted { .. }) => {}
        Err(other) => panic!("kill must interrupt, got {other}"),
        Ok(_) => panic!("kill must interrupt, got a completed campaign"),
    }
    let journal = Journal::load(&killed).expect("killed journal is a valid prefix");
    let mut runs_with_snapshots = 0;
    for run in 0..config.n_runs {
        let Some(snap) = journal.last_snapshot_for(run) else { continue };
        runs_with_snapshots += 1;
        assert!(snap.arrivals > 0 && snap.arrivals % snap_every == 0);
        let replayed = journal
            .evals
            .iter()
            .filter(|((r, _, _), e)| *r == run && e.arrival.is_some_and(|a| a >= snap.arrivals))
            .count();
        let total = journal.evals.keys().filter(|(r, _, _)| *r == run).count();
        assert!(
            replayed <= snap_every,
            "run {run}: resume would replay {replayed} records, more than one window"
        );
        assert!(
            total >= snap.arrivals,
            "run {run}: snapshot claims more arrivals than the journal holds"
        );
    }
    assert!(runs_with_snapshots > 0, "kill site must leave at least one snapshot behind");

    // Compact a *finished* journal: per run only the last snapshot and its
    // arrival suffix survive, and resuming the compacted journal
    // reconstructs the campaign without retraining or rewriting.
    let reference = reference_for(&config, "snap-compact");
    let compacted = scratch("snap-compact-work.jsonl");
    std::fs::write(&compacted, &reference.journal).unwrap();
    let report = compact(&compacted).expect("compact");
    assert!(
        report.frames_after < report.frames_before,
        "compaction must drop pre-snapshot records ({} -> {})",
        report.frames_before,
        report.frames_after
    );
    let check = verify(&compacted).unwrap();
    assert!(!check.damaged());
    assert_eq!(check.frames, report.frames_after);
    assert_eq!(check.snapshots as usize, config.n_runs, "one surviving snapshot per run");
    let before = std::fs::metadata(&compacted).unwrap().len();
    let resumed = Campaign::new(&config)
        .journal(&compacted)
        .resume()
        .run(None)
        .expect("resume of a compacted journal");
    assert_eq!(canon(&resumed), reference.canon, "compacted resume diverged");
    assert_eq!(
        std::fs::metadata(&compacted).unwrap().len(),
        before,
        "resuming a finished compacted journal must not write anything"
    );
    let _ = std::fs::remove_file(&killed);
    let _ = std::fs::remove_file(&compacted);
}
