//! Property tests for the v2 journal frame format (DESIGN.md §13): any
//! printable payload round-trips through a frame; **every** single-bit
//! flip of **every** byte of a frame is detected by the parser; and
//! salvage never keeps a record at or past the first corrupted byte.

use std::path::PathBuf;

use dphpo_core::experiment::ExperimentConfig;
use dphpo_core::journal::{EvalEntry, FaultKind};
use dphpo_core::{crc32, frame_line, parse_frame, salvage, verify, JournalWriter};
use proptest::prelude::*;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dphpo-frames-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

/// A real journal of `n` evaluation records with generated numeric
/// content, written through the production writer.
fn synthetic_journal(path: &PathBuf, n: usize, g0: f64, g1: f64, minutes: f64) -> Vec<u8> {
    let config = ExperimentConfig::smoke();
    let mut writer = JournalWriter::create(path, &config).expect("create journal");
    for i in 0..n {
        let entry = EvalEntry {
            run: 0,
            gen: i / 4,
            slot: i % 4,
            seed: i as u64,
            genome: vec![g0 + i as f64, g1 * (i + 1) as f64],
            fault: FaultKind::None,
            fault_step: None,
            fault_loss: None,
            objectives: Some(vec![g0 * g1 + i as f64, minutes + i as f64]),
            minutes: minutes + i as f64,
            attempts: 1,
            lcurve_tail: Vec::new(),
            arrival: None,
        };
        writer.append_eval(&entry).expect("append");
    }
    std::fs::read(path).expect("read back")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_printable_payload_round_trips_through_a_frame(
        payload in "[ -~]{0,120}",
        seq in 0i64..0x1_0000_0000,
    ) {
        let seq = seq as u64;
        let line = frame_line(seq, &payload);
        prop_assert!(line.starts_with("J2 "));
        prop_assert!(line.ends_with('\n'));
        let body = &line[..line.len() - 1];
        let parsed = parse_frame(body, seq).expect("a freshly framed line must parse");
        prop_assert_eq!(parsed, payload.as_str());
        // The crc field is the payload checksum, spelled in lowercase hex.
        prop_assert_eq!(&body[21..29], format!("{:08x}", crc32(payload.as_bytes())).as_str());
        // A wrong expected sequence is rejected even on an intact frame.
        prop_assert!(parse_frame(body, seq + 1).is_err());
    }

    #[test]
    fn every_single_bit_flip_of_every_byte_is_detected(
        payload in "[ -~]{0,120}",
        seq in 0i64..0x1_0000_0000,
    ) {
        let seq = seq as u64;
        let line = frame_line(seq, &payload);
        let body = &line[..line.len() - 1];
        for at in 0..body.len() {
            for bit in 0..8 {
                let mut flipped = body.as_bytes().to_vec();
                flipped[at] ^= 1 << bit;
                match String::from_utf8(flipped) {
                    // Invalid UTF-8 is caught one layer up, by the loader.
                    Err(_) => {}
                    Ok(s) => prop_assert!(
                        parse_frame(&s, seq).is_err(),
                        "flip of bit {bit} at byte {at} went undetected in {body:?}"
                    ),
                }
            }
        }
    }

    #[test]
    fn salvage_never_keeps_a_record_past_the_corruption_point(
        n in 1usize..16,
        frac in 0.0f64..1.0,
        bit in 0i64..8,
        g0 in -10.0f64..10.0,
        g1 in 0.1f64..5.0,
        minutes in 1.0f64..100.0,
    ) {
        let path = scratch("salvage-prop.jsonl");
        let quarantine = PathBuf::from(format!("{}.quarantine", path.display()));
        let _ = std::fs::remove_file(&quarantine);
        let clean = synthetic_journal(&path, n, g0, g1, minutes);
        let offset = ((frac * clean.len() as f64) as usize).min(clean.len() - 1);
        let mut damaged = clean.clone();
        damaged[offset] ^= 1 << bit;
        std::fs::write(&path, &damaged).unwrap();

        let report = salvage(&path).expect("salvage");
        let salvaged = std::fs::read(&path).unwrap();
        prop_assert_eq!(
            salvaged.as_slice(),
            &clean[..report.valid_len as usize],
            "salvaged file must be a clean prefix"
        );
        prop_assert!(
            (report.valid_len as usize) <= offset,
            "salvage kept bytes past the flip at {offset} (valid_len={})",
            report.valid_len
        );
        prop_assert_eq!(
            report.quarantined_bytes as usize,
            damaged.len() - report.valid_len as usize
        );
        let check = verify(&path).expect("verify");
        prop_assert!(!check.damaged(), "salvage must leave a clean journal behind");
        prop_assert_eq!(check.frames, report.frames_kept);
    }
}
