//! Byte-identity tests for the deterministic profiling layer (DESIGN.md
//! §14):
//!
//! * turning profiling **on** must leave every campaign artifact —
//!   journal and `campaign_status.json` — byte-identical to the
//!   unprofiled run (the profiler is a pure read of journaled data and
//!   never consumes a fault-plan occurrence);
//! * the profile artifacts themselves (`profile.json`, `profile.folded`)
//!   must be byte-identical across kill+resume and across independent
//!   re-runs, in both generational and steady-state mode;
//! * `profile.folded` must be well-formed collapsed stacks (inferno /
//!   speedscope-loadable): `frame;frame;... <integer µs>` per line.

use std::path::PathBuf;

use dphpo_core::experiment::{Campaign, CampaignMode, ExperimentConfig, ExperimentError};

/// Small faulty campaign exercising deaths, retries, backoff, and
/// speculation — every path that feeds the profile's loss leaves.
fn config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    config.pop_size = 3;
    config.fault_probability = 0.2;
    config.pool.nanny = true;
    config.pool.max_attempts = 2;
    config.pool.supervisor.speculate = true;
    config.master_seed = 43;
    config
}

/// Steady-state twin: fewer slots than individuals so the queue backs up.
fn steady_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    config.mode = CampaignMode::SteadyState;
    config.pool.n_workers = 3;
    config.fault_probability = 0.2;
    config.pool.nanny = true;
    config.pool.max_attempts = 2;
    config.master_seed = 41;
    config
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dphpo-profile-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Assert `text` is a valid collapsed-stack file: non-empty, every line
/// `frame(;frame)* <integer>`, frames free of the reserved separators.
fn assert_folded_well_formed(text: &str) {
    assert!(!text.is_empty(), "folded export is empty");
    for (i, line) in text.lines().enumerate() {
        let (stack, micros) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("folded line {i} has no value"));
        micros.parse::<u64>().unwrap_or_else(|e| panic!("folded line {i} value: {e}"));
        assert!(!stack.is_empty(), "folded line {i} has an empty stack");
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "folded line {i} has an empty frame");
            assert!(
                !frame.contains(' ') && !frame.contains(';'),
                "folded line {i} frame contains a reserved separator"
            );
        }
    }
}

#[test]
fn profiling_on_leaves_campaign_artifacts_byte_identical() {
    let config = config();

    // Reference: profiling off.
    let journal_a = scratch("plain.jsonl");
    let status_a = scratch("plain_status.json");
    Campaign::new(&config)
        .journal(&journal_a)
        .status_file(&status_a)
        .run(None)
        .expect("unprofiled campaign");

    // Profiling on: same campaign, plus the profile artifacts.
    let journal_b = scratch("prof.jsonl");
    let status_b = scratch("prof_status.json");
    let profile_b = scratch("prof_artifacts");
    Campaign::new(&config)
        .journal(&journal_b)
        .status_file(&status_b)
        .profile_dir(&profile_b)
        .run(None)
        .expect("profiled campaign");

    assert_eq!(
        read(&journal_a),
        read(&journal_b),
        "profiling must not perturb the journal"
    );
    assert_eq!(
        read(&status_a),
        read(&status_b),
        "profiling must not perturb campaign_status.json"
    );

    let json = read(&profile_b.join("profile.json"));
    assert!(json.contains("\"schema\": \"dphpo-profile-v1\""), "missing schema tag");
    assert!(json.contains("\"clock\": \"sim_minutes\""));
    assert!(json.contains("\"step_budget\""), "profile.json missing the step-budget table");
    assert!(json.contains("\"name\": \"campaign\""));
    let folded = read(&profile_b.join("profile.folded"));
    assert_folded_well_formed(&folded);
    assert!(folded.lines().any(|l| l.starts_with("campaign;run0;gen0;busy")));

    // An independent profiled re-run reproduces the artifacts bytewise.
    let journal_c = scratch("prof2.jsonl");
    let status_c = scratch("prof2_status.json");
    let profile_c = scratch("prof2_artifacts");
    Campaign::new(&config)
        .journal(&journal_c)
        .status_file(&status_c)
        .profile_dir(&profile_c)
        .run(None)
        .expect("second profiled campaign");
    assert_eq!(json, read(&profile_c.join("profile.json")), "profile.json differs across runs");
    assert_eq!(
        folded,
        read(&profile_c.join("profile.folded")),
        "profile.folded differs across runs"
    );

    for p in [&journal_a, &status_a, &journal_b, &status_b, &journal_c, &status_c] {
        let _ = std::fs::remove_file(p);
    }
    for d in [&profile_b, &profile_c] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn killed_and_resumed_campaign_reproduces_profile_byte_for_byte() {
    let config = config();

    // Uninterrupted profiled reference.
    let journal_a = scratch("ref.jsonl");
    let status_a = scratch("ref_status.json");
    let profile_a = scratch("ref_artifacts");
    Campaign::new(&config)
        .journal(&journal_a)
        .status_file(&status_a)
        .profile_dir(&profile_a)
        .run(None)
        .expect("reference campaign");
    let json_a = read(&profile_a.join("profile.json"));
    let folded_a = read(&profile_a.join("profile.folded"));

    // Chaos run: driver dies after 5 completed tasks, mid-campaign. The
    // profile write precedes the status fault site, so a valid partial
    // profile survives the kill.
    let journal_b = scratch("chaos.jsonl");
    let status_b = scratch("chaos_status.json");
    let profile_b = scratch("chaos_artifacts");
    match Campaign::new(&config)
        .journal(&journal_b)
        .status_file(&status_b)
        .profile_dir(&profile_b)
        .kill_after(5)
        .run(None)
    {
        Err(ExperimentError::Interrupted { .. }) => {}
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("driver should have been killed"),
    }
    let partial = read(&profile_b.join("profile.json"));
    assert!(partial.contains("\"schema\": \"dphpo-profile-v1\""), "partial profile is torn");
    assert_folded_well_formed(&read(&profile_b.join("profile.folded")));

    // Resume: the profile artifacts converge to the reference bytes.
    Campaign::new(&config)
        .journal(&journal_b)
        .status_file(&status_b)
        .profile_dir(&profile_b)
        .resume()
        .run(None)
        .expect("resumed campaign");
    assert_eq!(
        json_a,
        read(&profile_b.join("profile.json")),
        "profile.json differs after kill+resume"
    );
    assert_eq!(
        folded_a,
        read(&profile_b.join("profile.folded")),
        "profile.folded differs after kill+resume"
    );

    for p in [&journal_a, &status_a, &journal_b, &status_b] {
        let _ = std::fs::remove_file(p);
    }
    for d in [&profile_a, &profile_b] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn steady_campaign_profile_is_identical_across_kill_resume() {
    let config = steady_config();

    let journal_a = scratch("steady_ref.jsonl");
    let status_a = scratch("steady_ref_status.json");
    let profile_a = scratch("steady_ref_artifacts");
    Campaign::new(&config)
        .journal(&journal_a)
        .status_file(&status_a)
        .profile_dir(&profile_a)
        .run(None)
        .expect("steady reference campaign");
    let json_a = read(&profile_a.join("profile.json"));
    let folded_a = read(&profile_a.join("profile.folded"));
    assert_folded_well_formed(&folded_a);

    let journal_b = scratch("steady_chaos.jsonl");
    let status_b = scratch("steady_chaos_status.json");
    let profile_b = scratch("steady_chaos_artifacts");
    match Campaign::new(&config)
        .journal(&journal_b)
        .status_file(&status_b)
        .profile_dir(&profile_b)
        .kill_after(5)
        .run(None)
    {
        Err(ExperimentError::Interrupted { .. }) => {}
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("driver should have been killed"),
    }
    Campaign::new(&config)
        .journal(&journal_b)
        .status_file(&status_b)
        .profile_dir(&profile_b)
        .resume()
        .run(None)
        .expect("resumed steady campaign");
    assert_eq!(
        json_a,
        read(&profile_b.join("profile.json")),
        "steady profile.json differs after kill+resume"
    );
    assert_eq!(
        folded_a,
        read(&profile_b.join("profile.folded")),
        "steady profile.folded differs after kill+resume"
    );

    for p in [&journal_a, &status_a, &journal_b, &status_b] {
        let _ = std::fs::remove_file(p);
    }
    for d in [&profile_a, &profile_b] {
        let _ = std::fs::remove_dir_all(d);
    }
}
