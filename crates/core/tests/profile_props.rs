//! Property-based tests for the deterministic profiler (DESIGN.md §14):
//!
//! * folding a telemetry snapshot into an attribution tree is independent
//!   of event interleaving and of which worker lane recorded each event;
//! * `self + Σ children == inclusive` holds **bitwise** for every node of
//!   both the span-derived and the journal-derived (campaign) trees;
//! * the `.folded` export is always a well-formed collapsed-stack file.

use std::collections::BTreeMap;

use dphpo_core::profile::{campaign_node, generation_node};
use dphpo_evo::nsga2::GenerationRecord;
use dphpo_evo::{Fitness, Individual};
use dphpo_hpc::PoolReport;
use dphpo_obs::metrics::ExactSum;
use dphpo_obs::profile::{folded, from_snapshot, ProfileNode};
use dphpo_obs::{cats, names, Event, MemoryRecorder, Recorder, SpanCtx, When, NO_TASK};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NAMES: [&str; 4] = [names::EVAL, names::TRAIN_STEP, names::GENERATION, names::SCHED_DEATH];

/// One synthetic span event: (run, task slot or NO_TASK, name index, dur).
fn wild_event() -> impl Strategy<Value = (u32, u32, usize, f64)> {
    (0i64..3, 0i64..6, 0usize..NAMES.len(), 0.0f64..100.0).prop_map(|(run, task, name, dur)| {
        let task = if task == 5 { NO_TASK } else { task as u32 };
        (run as u32, task, name, dur)
    })
}

fn record_all(events: &[(u32, u32, usize, f64)], workers: &[Option<u32>]) -> MemoryRecorder {
    let rec = MemoryRecorder::new();
    for (&(run, task, name, dur), &worker) in events.iter().zip(workers) {
        let mut e =
            Event::instant(NAMES[name], cats::SCHED, SpanCtx::root(1, run).with_task(task, 0));
        e.dur_min = dur;
        e.when = When::Sim(0.0);
        e.worker = worker;
        rec.record(e);
    }
    rec
}

/// Fisher–Yates with the vendored rng (no `SliceRandom` in the shim).
fn shuffle<T>(xs: &mut [T], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..i + 1);
        xs.swap(i, j);
    }
}

/// Recursive bitwise check of the branch invariant, mirroring how
/// `ProfileNode::branch` computes the inclusive total.
fn assert_invariant(node: &ProfileNode) {
    let mut sum = ExactSum::default();
    sum.add(node.self_min);
    for c in &node.children {
        sum.add(c.inclusive_min);
        assert_invariant(c);
    }
    assert_eq!(
        sum.value().to_bits(),
        node.inclusive_min.to_bits(),
        "self + Σ children != inclusive at node {}",
        node.name
    );
    for pair in node.children.windows(2) {
        // Non-strict: duplicate names are legal for `branch` (it sorts, it
        // does not merge) even though real campaigns never produce them.
        assert!(pair[0].name <= pair[1].name, "children of {} are not sorted", node.name);
    }
}

fn assert_folded_well_formed(text: &str) {
    for (i, line) in text.lines().enumerate() {
        let (stack, micros) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("folded line {i} has no value"));
        let n: u64 = micros.parse().unwrap_or_else(|e| panic!("folded line {i} value: {e}"));
        assert!(n >= 1, "folded line {i} emitted a sub-microsecond count");
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "folded line {i}: empty frame");
            assert!(
                !frame.contains(' ') && !frame.contains(';'),
                "folded line {i}: reserved separator in frame {frame:?}"
            );
        }
    }
}

fn individual(minutes: f64, penalty: bool) -> Individual {
    let mut ind = Individual::new(vec![0.0]);
    ind.fitness = Some(if penalty { Fitness::penalty(2) } else { Fitness::new(vec![0.1, 0.2]) });
    ind.eval_minutes = Some(minutes);
    ind
}

fn slot_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..500.0, 1..5)
}

/// A random (record, report) boundary pair; all slot partitions are
/// clamped to the busy vector's slot count, as in real reports.
fn wild_boundary() -> impl Strategy<Value = (GenerationRecord, PoolReport)> {
    let pop = prop::collection::vec((0.0f64..200.0, 0.0f64..1.0), 0..6);
    ((0usize..40, pop), slot_vec(), slot_vec(), slot_vec(), slot_vec()).prop_map(
        |((generation, pop), busy, idle, death, spec)| {
            let slots = busy.len();
            let fit = |mut v: Vec<f64>| {
                v.resize(slots, 0.0);
                v
            };
            let record = GenerationRecord {
                generation,
                population: pop.into_iter().map(|(m, p)| individual(m, p < 0.5)).collect(),
                failures: 0,
            };
            let report = PoolReport {
                busy_minutes: busy,
                idle_minutes: fit(idle),
                lost_death_minutes: fit(death),
                lost_speculation_minutes: fit(spec),
                backoff_slot_minutes: vec![0.0; slots],
                ..PoolReport::default()
            };
            (record, report)
        },
    )
}

proptest! {
    /// Any permutation of the event stream, recorded from any worker
    /// lanes, folds to the identical attribution tree.
    #[test]
    fn aggregation_is_independent_of_interleaving_and_worker_count(
        events in prop::collection::vec(wild_event(), 1..40),
        seed in 0i64..i64::MAX,
    ) {
        let baseline = record_all(&events, &vec![None; events.len()]);
        let reference = from_snapshot(&baseline.snapshot());

        let mut rng = StdRng::seed_from_u64(seed as u64);
        let mut shuffled = events.clone();
        shuffle(&mut shuffled, &mut rng);
        let workers: Vec<Option<u32>> =
            (0..shuffled.len() as u32).map(|i| Some(i % 7)).collect();
        let permuted = record_all(&shuffled, &workers);
        prop_assert_eq!(reference, from_snapshot(&permuted.snapshot()));
    }

    /// The branch invariant holds bitwise on every node of a span-derived
    /// tree, and the folded rendering is well-formed.
    #[test]
    fn span_tree_invariant_and_folded_validity(
        events in prop::collection::vec(wild_event(), 1..60),
    ) {
        let rec = record_all(&events, &vec![None; events.len()]);
        let tree = from_snapshot(&rec.snapshot());
        assert_invariant(&tree);
        assert_folded_well_formed(&folded(&tree));
    }

    /// The branch invariant holds bitwise on every node of the
    /// journal-derived campaign tree, whatever the boundary data, and its
    /// folded rendering is well-formed.
    #[test]
    fn campaign_tree_invariant_and_folded_validity(
        boundaries in prop::collection::vec(wild_boundary(), 1..6),
        n_runs in 1usize..3,
    ) {
        let mut runs = BTreeMap::new();
        for run in 0..n_runs {
            let rows: Vec<ProfileNode> = boundaries
                .iter()
                .map(|(rec, rep)| generation_node(rec, rep))
                .collect();
            runs.insert(run, rows);
        }
        let root = campaign_node(&runs);
        assert_invariant(&root);
        assert_folded_well_formed(&folded(&root));
    }
}
