//! Bit-identity test for the telemetry subsystem: a campaign run with a
//! live recorder attached must produce byte-identical artifacts — journal,
//! populations, archives, analysis CSVs — to the same campaign run with
//! telemetry disabled. (Weight-level bit-identity is asserted one layer
//! down, in `dphpo-dnnp`'s `telemetry_recorder_does_not_change_trained_weights`;
//! here the populations' fitness values are pure functions of those
//! weights.) Two observed runs must additionally agree on every
//! deterministic telemetry export.

use std::path::PathBuf;
use std::sync::Arc;

use dphpo_core::analysis::{analyze, level_plot_csv};
use dphpo_core::experiment::{
    run_experiment_journaled, run_experiment_journaled_observed, ExperimentConfig,
    ExperimentResult,
};
use dphpo_evo::Individual;
use dphpo_obs::{chrome, export, names, rollup, MemoryRecorder, Recorder};

/// Small campaign with faults, retries, and speculation on, so telemetry
/// rides along every scheduler path (deaths, backoff, twins) that could
/// conceivably perturb the run.
fn config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    config.pop_size = 3;
    config.fault_probability = 0.2;
    config.pool.nanny = true;
    config.pool.max_attempts = 2;
    config.pool.supervisor.speculate = true;
    config.master_seed = 43;
    config
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dphpo-telemetry-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

fn canon_individual(ind: &Individual) -> String {
    format!(
        "genome={:?} fitness={:?} rank={} distance={:?} minutes={:?}",
        ind.genome,
        ind.fitness.as_ref().map(|f| f.values().to_vec()),
        ind.rank,
        ind.distance,
        ind.eval_minutes,
    )
}

/// Canonical text form of everything downstream analysis consumes; `{:?}`
/// on `f64` is shortest-round-trip, so equal strings mean bit-equal values.
fn canon(result: &ExperimentResult) -> String {
    let mut out = String::new();
    for (run_idx, run) in result.runs.iter().enumerate() {
        out.push_str(&format!("run {run_idx} evaluations={}\n", run.evaluations));
        for record in &run.history {
            out.push_str(&format!("  gen {} failures={}\n", record.generation, record.failures));
            for ind in &record.population {
                out.push_str(&format!("    {}\n", canon_individual(ind)));
            }
        }
    }
    for (run_idx, archive) in result.archives.iter().enumerate() {
        out.push_str(&format!("archive {run_idx}\n"));
        for ind in archive.members() {
            out.push_str(&format!("    {}\n", canon_individual(ind)));
        }
    }
    out.push_str(&analyze(result).parallel_coordinates_csv());
    out.push_str(&level_plot_csv(result));
    out
}

#[test]
fn observed_campaign_is_bit_identical_to_unobserved() {
    let config = config();

    let plain_journal = scratch("plain.jsonl");
    let plain = run_experiment_journaled(&config, &plain_journal, None).expect("plain run");

    let observed_journal = scratch("observed.jsonl");
    let recorder = Arc::new(MemoryRecorder::with_wall_clock());
    let observed = run_experiment_journaled_observed(
        &config,
        &observed_journal,
        None,
        Arc::clone(&recorder) as Arc<dyn Recorder>,
    )
    .expect("observed run");

    // Everything the figures are built from is bit-identical.
    assert_eq!(canon(&plain), canon(&observed));

    // The write-ahead journals are byte-identical end to end: individual
    // ids are derived from (run seed, ordinal), and generational records
    // are released to the journal in slot order regardless of which worker
    // thread finished first, so no masking or sorting is needed.
    let plain_bytes = std::fs::read_to_string(&plain_journal).unwrap();
    let observed_bytes = std::fs::read_to_string(&observed_journal).unwrap();
    assert_eq!(plain_bytes, observed_bytes, "journals must match byte-for-byte");

    // The recorder actually saw the campaign: a generation span per batch,
    // an eval span per training, per-step events, and journal
    // cross-references with in-bounds byte offsets.
    let snap = recorder.snapshot();
    let n_batches = (config.n_runs * (config.generations + 1)) as u64;
    assert_eq!(snap.counter(names::C_GENERATIONS), n_batches);
    let evals = snap.events.iter().filter(|e| e.name == names::EVAL).count();
    assert_eq!(evals, config.n_runs * config.pop_size * (config.generations + 1));
    assert!(snap.counter(names::C_STEPS) > 0);
    let appends: Vec<f64> = snap
        .events
        .iter()
        .filter(|e| e.name == names::JOURNAL_APPEND)
        .map(|e| e.args.iter().find(|(k, _)| *k == "offset").expect("offset arg").1)
        .collect();
    assert_eq!(appends.len() as u64, snap.counter(names::C_JOURNAL_APPENDS));
    assert!(!appends.is_empty());
    for offset in &appends {
        assert!(*offset > 0.0 && *offset < observed_bytes.len() as f64);
        // The offset lands exactly at the start of a framed record line.
        assert_eq!(observed_bytes.as_bytes()[*offset as usize - 1], b'\n');
        assert!(observed_bytes[*offset as usize..].starts_with("J2 "));
    }

    let _ = std::fs::remove_file(&plain_journal);
    let _ = std::fs::remove_file(&observed_journal);
}

#[test]
fn deterministic_exports_are_identical_across_observed_runs() {
    let config = config();
    let export_of = |tag: &str| {
        let journal = scratch(&format!("exports-{tag}.jsonl"));
        let recorder = Arc::new(MemoryRecorder::with_wall_clock());
        run_experiment_journaled_observed(
            &config,
            &journal,
            None,
            Arc::clone(&recorder) as Arc<dyn Recorder>,
        )
        .expect("observed run");
        let _ = std::fs::remove_file(&journal);
        let snap = recorder.snapshot();
        (export::events_jsonl(&snap), chrome::trace_json(&snap), rollup::generation_rollup(&snap))
    };
    let (events_a, trace_a, rollup_a) = export_of("a");
    let (events_b, trace_b, rollup_b) = export_of("b");
    // Span ids are derived from (seed, run, gen, task, attempt, step) and
    // timestamps from the simulated clock, so the deterministic exports are
    // byte-identical run to run — only the wall-clock side channel differs.
    for (i, (a, b)) in events_a.lines().zip(events_b.lines()).enumerate() {
        assert_eq!(a, b, "events_jsonl line {i} differs");
    }
    assert_eq!(events_a, events_b);
    assert_eq!(trace_a, trace_b);
    assert_eq!(rollup_a, rollup_b);
    // The trace is Perfetto-shaped: worker lanes named, eval spans present.
    assert!(trace_a.starts_with("{\"displayTimeUnit\""));
    assert!(trace_a.contains("thread_name"));
    assert!(trace_a.contains("\"name\":\"eval\""));
    assert!(trace_a.contains("\"name\":\"train.step\""));
}
