//! Property-based round-trip tests for the journal's JSON serialisation:
//! randomly generated individuals, fitness vectors, and RNG states must
//! survive serialize → parse → serialize as a fixed point, with every
//! field bit-equal.

use dphpo_core::journal::{
    fitness_from_json, fitness_to_json, individual_from_json, individual_to_json,
    rng_state_from_json, rng_state_to_json,
};
use dphpo_evo::{Fitness, Individual};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// f64 values spanning ~600 orders of magnitude, signs, exact zero, and
/// MAXINT (the paper's penalty value) — the space journaled genomes,
/// objectives, and minutes live in.
fn wild_f64() -> impl Strategy<Value = f64> {
    (0usize..10, -1.0f64..1.0, -300.0f64..300.0).prop_map(|(kind, mantissa, exponent)| {
        match kind {
            0 => 0.0,
            1 => i64::MAX as f64,
            2 | 3 => mantissa,
            _ => mantissa * 10f64.powf(exponent),
        }
    })
}

fn wild_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(wild_f64(), 1..max_len + 1)
}

/// Unevaluated individuals (fresh offspring) and evaluated ones (with
/// fitness, rank, crowding distance — possibly the +inf of a boundary
/// solution — and charged minutes), as they appear in journal records.
fn wild_individual() -> impl Strategy<Value = Individual> {
    let eval_block = (wild_vec(3), 0usize..50, wild_f64(), 0.0f64..1.0, wild_f64());
    (wild_vec(7), 0.0f64..1.0, eval_block).prop_map(
        |(genome, evaluated, (objectives, rank, minutes, boundary, distance))| {
            let mut ind = Individual::new(genome);
            if evaluated < 0.8 {
                ind.fitness = Some(Fitness::new(objectives));
                ind.rank = rank;
                ind.eval_minutes = Some(minutes.abs());
                ind.distance = if boundary < 0.3 { f64::INFINITY } else { distance.abs() };
            }
            ind
        },
    )
}

/// Mostly genuine fitness vectors, with the occasional MAXINT penalty.
fn wild_fitness() -> impl Strategy<Value = Fitness> {
    (0.0f64..1.0, wild_vec(4)).prop_map(|(penalty, objectives)| {
        if penalty < 0.2 {
            Fitness::penalty(2)
        } else {
            Fitness::new(objectives)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn random_individuals_round_trip_bit_exactly(ind in wild_individual()) {
        let json = individual_to_json(&ind);
        let back = individual_from_json(&json).unwrap_or_else(|e| panic!("{e}"));
        prop_assert_eq!(back.id, ind.id);
        prop_assert_eq!(&back.genome, &ind.genome);
        prop_assert_eq!(&back.fitness, &ind.fitness);
        prop_assert_eq!(back.rank, ind.rank);
        prop_assert!(
            back.distance == ind.distance
                || (back.distance.is_infinite() && ind.distance.is_infinite()),
            "distance {} != {}",
            back.distance,
            ind.distance
        );
        prop_assert_eq!(back.eval_minutes, ind.eval_minutes);
        // Fixed point: a second serialisation is byte-identical.
        prop_assert_eq!(individual_to_json(&back).to_compact(), json.to_compact());
    }

    #[test]
    fn random_fitness_vectors_round_trip_bit_exactly(fitness in wild_fitness()) {
        let json = fitness_to_json(&fitness);
        let back = fitness_from_json(&json).unwrap_or_else(|e| panic!("{e}"));
        prop_assert_eq!(&back, &fitness);
        prop_assert_eq!(back.is_penalty(), fitness.is_penalty());
        prop_assert_eq!(fitness_to_json(&back).to_compact(), json.to_compact());
    }

    #[test]
    fn random_rng_states_round_trip_bit_exactly(
        seed in i64::MIN..i64::MAX,
        steps in 0usize..17,
    ) {
        // Real checkpoints come from a live generator: snapshot one that
        // has been stepped a while, as at a generation boundary.
        let mut stream = StdRng::seed_from_u64(seed as u64);
        for _ in 0..steps {
            let _: u64 = stream.random_range(0..u64::MAX);
        }
        let state = stream.state();
        let json = rng_state_to_json(state);
        let back = rng_state_from_json(&json).unwrap_or_else(|e| panic!("{e}"));
        prop_assert_eq!(back, state);
        prop_assert_eq!(rng_state_to_json(back).to_compact(), json.to_compact());
        // The restored generator continues the stream bit-identically.
        let mut restored = StdRng::from_state(back);
        let expect: u64 = stream.random_range(0..u64::MAX);
        prop_assert_eq!(restored.random_range(0..u64::MAX), expect);
    }
}
