//! Identity tests for the steady-state campaign mode (DESIGN.md §12):
//!
//! * killing the driver at **every** arrival index and resuming must
//!   reproduce the uninterrupted campaign byte-identically — results,
//!   journal bytes, and status bytes;
//! * attaching telemetry must not perturb anything;
//! * the per-epoch accounting must partition each slot's simulated time
//!   exactly;
//! * generation 0 must coincide with a generational campaign's (same
//!   genomes, same training outcomes), because the two modes only diverge
//!   once selection order starts to matter.

use std::path::PathBuf;
use std::sync::Arc;

use dphpo_core::experiment::{
    run_experiment, run_experiment_journaled, run_experiment_journaled_with_kill, Campaign,
    CampaignMode, ExperimentConfig, ExperimentError, ExperimentResult,
};
use dphpo_evo::Individual;
use dphpo_obs::{names, MemoryRecorder, Recorder};

/// Tiny steady-state campaign with faults and retries on, and fewer slots
/// than the population so the submission queue genuinely backs up: 2 runs
/// × 4 individuals × 2 epochs = 16 arrivals over 3 slots.
fn steady_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    config.mode = CampaignMode::SteadyState;
    config.pool.n_workers = 3;
    config.fault_probability = 0.2;
    config.pool.nanny = true;
    config.pool.max_attempts = 2;
    config.master_seed = 41;
    config
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dphpo-steady-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

fn canon_individual(ind: &Individual) -> String {
    // Ids are included: they are derived from (run seed, submission
    // ordinal), so a resumed campaign reproduces them exactly.
    format!(
        "id={} genome={:?} fitness={:?} rank={} distance={:?} minutes={:?}",
        ind.id,
        ind.genome,
        ind.fitness.as_ref().map(|f| f.values().to_vec()),
        ind.rank,
        ind.distance,
        ind.eval_minutes,
    )
}

/// Canonical text form of the result: `{:?}` on `f64` is
/// shortest-round-trip, so equal strings mean bit-equal values.
fn canon(result: &ExperimentResult) -> String {
    let mut out = String::new();
    for (run_idx, run) in result.runs.iter().enumerate() {
        out.push_str(&format!("run {run_idx} evaluations={}\n", run.evaluations));
        for record in &run.history {
            out.push_str(&format!("  epoch {} failures={}\n", record.generation, record.failures));
            for ind in &record.population {
                out.push_str(&format!("    {}\n", canon_individual(ind)));
            }
        }
    }
    for (run_idx, archive) in result.archives.iter().enumerate() {
        out.push_str(&format!("archive {run_idx}\n"));
        for ind in archive.members() {
            out.push_str(&format!("    {}\n", canon_individual(ind)));
        }
    }
    for (run_idx, reports) in result.pool_reports.iter().enumerate() {
        for (epoch, r) in reports.iter().enumerate() {
            out.push_str(&format!(
                "report {run_idx}/{epoch} wall={:?} makespan={:?} busy={:?} idle={:?} deaths={}\n",
                r.wall_minutes, r.makespan_minutes, r.busy_minutes, r.idle_minutes, r.worker_deaths,
            ));
        }
    }
    out
}

#[test]
fn steady_resume_is_byte_identical_after_killing_at_every_arrival() {
    let config = steady_config();
    let total_tasks = (config.n_runs * config.pop_size * (config.generations + 1)) as u64;

    let reference_journal = scratch("reference.jsonl");
    let reference_status = scratch("reference_status.json");
    let reference = Campaign::new(&config)
        .journal(&reference_journal)
        .status_file(&reference_status)
        .run(None)
        .expect("uninterrupted steady campaign");
    let reference_canon = canon(&reference);
    let reference_journal_bytes = std::fs::read(&reference_journal).unwrap();
    let reference_status_bytes = std::fs::read(&reference_status).unwrap();

    // Sanity: the fault machinery fired, so replay covers retried and
    // penalised evaluations, not just clean successes.
    assert!(
        reference.pool_reports.iter().flatten().any(|r| r.worker_deaths > 0),
        "chaos config should produce worker deaths"
    );
    // The journal carries the arrival order explicitly.
    let journal_text = String::from_utf8(reference_journal_bytes.clone()).unwrap();
    assert!(journal_text.contains("\"arrival\":0"), "eval entries must journal arrival indices");

    for kill_after in 0..=total_tasks {
        let path = scratch(&format!("kill-{kill_after}.jsonl"));
        match run_experiment_journaled_with_kill(&config, &path, kill_after) {
            Err(ExperimentError::Interrupted { completed_tasks }) => {
                assert!(completed_tasks <= total_tasks);
            }
            Err(other) => panic!("kill_after={kill_after}: unexpected error {other}"),
            Ok(_) => panic!("kill_after={kill_after} within {total_tasks} tasks must interrupt"),
        }
        let status_path = scratch(&format!("kill-{kill_after}-status.json"));
        let resumed = Campaign::new(&config)
            .journal(&path)
            .status_file(&status_path)
            .resume()
            .run(None)
            .unwrap_or_else(|e| panic!("resume after kill_after={kill_after}: {e}"));
        assert_eq!(
            canon(&resumed),
            reference_canon,
            "kill_after={kill_after}: resumed campaign diverged from uninterrupted run"
        );
        // Stronger than result identity: the journal and status files the
        // kill+resume pair leaves behind are byte-for-byte what the
        // uninterrupted campaign wrote.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            reference_journal_bytes,
            "kill_after={kill_after}: journal bytes diverged"
        );
        assert_eq!(
            std::fs::read(&status_path).unwrap(),
            reference_status_bytes,
            "kill_after={kill_after}: status bytes diverged"
        );
    }

    let _ = std::fs::remove_dir_all(reference_journal.parent().unwrap());
}

#[test]
fn steady_telemetry_and_journaling_perturb_nothing() {
    let config = steady_config();
    let plain = run_experiment(&config);

    let rec = Arc::new(MemoryRecorder::new());
    let journal_path = scratch("observed.jsonl");
    let status_path = scratch("observed_status.json");
    let observed = Campaign::new(&config)
        .journal(&journal_path)
        .status_file(&status_path)
        .recorder(Arc::clone(&rec) as Arc<dyn Recorder>)
        .run(None)
        .expect("observed steady campaign");

    assert_eq!(canon(&plain), canon(&observed), "telemetry/journaling changed the campaign");

    let budget = config.n_runs * config.pop_size * (config.generations + 1);
    let snap = rec.snapshot();
    let evals = snap.events.iter().filter(|e| e.name == names::EVAL).count();
    assert_eq!(evals, budget, "one eval span per arrival");
    assert_eq!(
        snap.counter(names::C_GENERATIONS),
        (config.n_runs * (config.generations + 1)) as u64,
        "one generation counter tick per epoch"
    );
    assert_eq!(snap.counter(names::C_JOURNAL_APPENDS), budget as u64);
    let fronts = snap.events.iter().filter(|e| e.name == names::FRONT).count();
    assert_eq!(fronts, config.n_runs * (config.generations + 1));
    let _ = std::fs::remove_file(&journal_path);
    let _ = std::fs::remove_file(&status_path);
}

#[test]
fn steady_epoch_reports_partition_slot_time_exactly() {
    let config = steady_config();
    let result = run_experiment(&config);
    for reports in &result.pool_reports {
        assert_eq!(reports.len(), config.generations + 1, "one report per epoch");
        let slots = config.pool.n_workers;
        let mut per_slot_total = vec![0.0f64; slots];
        for r in reports {
            assert_eq!(r.busy_minutes.len(), slots);
            for (s, total) in per_slot_total.iter_mut().enumerate() {
                assert!(r.idle_minutes[s] >= -1e-9, "negative idle");
                let charged = r.busy_minutes[s]
                    + r.lost_death_minutes[s]
                    + r.backoff_slot_minutes[s]
                    + r.idle_minutes[s];
                *total += charged;
                // Each epoch's wall clock bounds every slot's charge.
                assert!(charged <= r.wall_minutes + 1e-9);
            }
        }
        // Summed across epochs, every slot accounts for the same total
        // wall time: the per-epoch rows are an exact partition.
        let total_wall: f64 = reports.iter().map(|r| r.wall_minutes).sum();
        for (s, total) in per_slot_total.iter().enumerate() {
            assert!(
                (total - total_wall).abs() < 1e-6,
                "slot {s}: partition {total} != wall {total_wall}"
            );
        }
    }
}

#[test]
fn steady_initial_submissions_train_identically_to_generational() {
    // The two modes share their first `pop_size` submissions per run: same
    // init-RNG stream, same derived training seeds, same fault-decision
    // domain. Their journaled outcomes must therefore be identical, field
    // for field — only the steady entries carry an arrival index. (The
    // *populations* may differ even at epoch 0: with fewer slots than the
    // population, a bred child can arrive before the last initial
    // submission.)
    let steady_cfg = steady_config();
    let mut gen_cfg = steady_cfg.clone();
    gen_cfg.mode = CampaignMode::Generational;

    let steady_path = scratch("mode-steady.jsonl");
    let gen_path = scratch("mode-generational.jsonl");
    run_experiment_journaled(&steady_cfg, &steady_path, None).expect("steady campaign");
    run_experiment_journaled(&gen_cfg, &gen_path, None).expect("generational campaign");

    let steady_journal = dphpo_core::Journal::load(&steady_path).unwrap();
    let gen_journal = dphpo_core::Journal::load(&gen_path).unwrap();
    for run in 0..steady_cfg.n_runs {
        for slot in 0..steady_cfg.pop_size {
            let s = steady_journal.evals.get(&(run, 0, slot)).expect("steady entry");
            let g = gen_journal.evals.get(&(run, 0, slot)).expect("generational entry");
            assert_eq!(s.genome, g.genome, "run {run} slot {slot}: genomes diverged");
            assert_eq!(s.seed, g.seed, "run {run} slot {slot}: training seeds diverged");
            assert_eq!(s.objectives, g.objectives, "run {run} slot {slot}: outcomes diverged");
            assert_eq!(s.minutes, g.minutes, "run {run} slot {slot}: minutes diverged");
            assert_eq!(s.attempts, g.attempts, "run {run} slot {slot}: attempts diverged");
            assert!(s.arrival.is_some(), "steady entries must carry an arrival index");
            assert!(g.arrival.is_none(), "generational entries must not");
        }
    }
    let _ = std::fs::remove_file(&steady_path);
    let _ = std::fs::remove_file(&gen_path);
}
