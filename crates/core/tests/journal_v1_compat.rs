//! v1 → v2 journal compatibility, pinned by checked-in fixture journals
//! (`tests/fixtures/`): bare-JSONL v1 files written by the pre-framing
//! code. Loading must still work, resuming must reproduce the same
//! campaign a fresh run computes, and the first append upgrades the file
//! in place to framed v2. Fixture ids predate seed-derived stable ids, so
//! comparisons here canonicalise without ids.

use std::path::{Path, PathBuf};

use dphpo_core::experiment::{Campaign, CampaignMode, ExperimentConfig, ExperimentResult};
use dphpo_core::{verify, Journal};
use dphpo_evo::Individual;

/// The configuration the generational fixtures were recorded under.
fn generational_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    config.pop_size = 3;
    config.fault_probability = 0.2;
    config.pool.nanny = true;
    config.pool.max_attempts = 2;
    config.pool.supervisor.speculate = true;
    config.master_seed = 41;
    config
}

/// The configuration the steady-state fixtures were recorded under.
fn steady_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    config.mode = CampaignMode::SteadyState;
    config.pool.n_workers = 3;
    config.fault_probability = 0.2;
    config.pool.nanny = true;
    config.pool.max_attempts = 2;
    config.master_seed = 41;
    config
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Copy a checked-in fixture into scratch space so resume (which upgrades
/// the file in place) never touches the repository copy.
fn working_copy(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dphpo-v1compat-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let dest = dir.join(name);
    std::fs::copy(fixture(name), &dest).expect("copy fixture");
    dest
}

fn canon_individual(ind: &Individual) -> String {
    // No ids: fixtures predate stable ids, so their journaled individuals
    // carry legacy allocation-order ids a fresh run cannot reproduce.
    format!(
        "genome={:?} fitness={:?} rank={} distance={:?} minutes={:?}",
        ind.genome,
        ind.fitness.as_ref().map(|f| f.values().to_vec()),
        ind.rank,
        ind.distance,
        ind.eval_minutes,
    )
}

fn canon(result: &ExperimentResult) -> String {
    let mut out = String::new();
    for (run_idx, run) in result.runs.iter().enumerate() {
        out.push_str(&format!("run {run_idx} evaluations={}\n", run.evaluations));
        for record in &run.history {
            out.push_str(&format!("  gen {} failures={}\n", record.generation, record.failures));
            for ind in &record.population {
                out.push_str(&format!("    {}\n", canon_individual(ind)));
            }
        }
    }
    for (run_idx, archive) in result.archives.iter().enumerate() {
        out.push_str(&format!("archive {run_idx}\n"));
        for ind in archive.members() {
            out.push_str(&format!("    {}\n", canon_individual(ind)));
        }
    }
    out
}

fn assert_upgraded_to_v2(path: &Path, context: &str) {
    let report = verify(path).unwrap_or_else(|e| panic!("{context}: verify failed: {e}"));
    assert_eq!(report.version, 2, "{context}: file was not upgraded to v2");
    assert!(!report.damaged(), "{context}: upgrade left damage");
    let text = std::fs::read_to_string(path).unwrap();
    assert!(
        text.lines().all(|l| l.starts_with("J2 ")),
        "{context}: upgraded journal still holds unframed lines"
    );
}

#[test]
fn v1_fixtures_load_with_version_1_and_verify_clean() {
    for name in [
        "v1_generational_complete.jsonl",
        "v1_generational_partial.jsonl",
        "v1_steady_complete.jsonl",
        "v1_steady_partial.jsonl",
    ] {
        let path = fixture(name);
        let journal = Journal::load(&path).unwrap_or_else(|e| panic!("{name}: load failed: {e}"));
        assert_eq!(journal.version, 1, "{name}: fixture must still read as v1");
        assert!(!journal.evals.is_empty(), "{name}: fixture holds evaluation records");
        let report = verify(&path).unwrap();
        assert_eq!(report.version, 1);
        assert!(!report.damaged(), "{name}: pristine fixture reported damage");
        assert_eq!(report.evals as usize, journal.evals.len());
    }
}

#[test]
fn resuming_a_complete_v1_journal_reconstructs_the_recorded_campaign() {
    for (name, config) in [
        ("v1_generational_complete.jsonl", generational_config()),
        ("v1_steady_complete.jsonl", steady_config()),
    ] {
        let fresh = canon(&dphpo_core::experiment::run_experiment(&config));
        let path = working_copy(name);
        let resumed = Campaign::new(&config)
            .journal(&path)
            .resume()
            .run(None)
            .unwrap_or_else(|e| panic!("{name}: resume failed: {e}"));
        assert_eq!(canon(&resumed), fresh, "{name}: reconstruction diverged from a fresh run");
        // Opening for append upgraded the container in place; a complete
        // campaign then has nothing left to write.
        assert_upgraded_to_v2(&path, name);
        let again = Campaign::new(&config)
            .journal(&path)
            .resume()
            .run(None)
            .unwrap_or_else(|e| panic!("{name}: second resume failed: {e}"));
        assert_eq!(canon(&again), fresh, "{name}: upgraded journal reconstructs differently");
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn resuming_a_partial_v1_journal_completes_and_upgrades_it() {
    for (name, config) in [
        ("v1_generational_partial.jsonl", generational_config()),
        ("v1_steady_partial.jsonl", steady_config()),
    ] {
        let fresh = canon(&dphpo_core::experiment::run_experiment(&config));
        let path = working_copy(name);
        let before = Journal::load(&path).unwrap().evals.len();
        let resumed = Campaign::new(&config)
            .journal(&path)
            .resume()
            .run(None)
            .unwrap_or_else(|e| panic!("{name}: resume failed: {e}"));
        assert_eq!(canon(&resumed), fresh, "{name}: completed campaign diverged from a fresh run");
        assert_upgraded_to_v2(&path, name);
        let after = Journal::load(&path).unwrap();
        assert_eq!(after.version, 2, "{name}: reloaded journal must be v2");
        assert!(
            after.evals.len() > before,
            "{name}: resume must append the missing evaluations ({before} recorded)"
        );
        // The upgraded journal is a first-class v2 journal: resuming it
        // again reconstructs without writing another byte.
        let len = std::fs::metadata(&path).unwrap().len();
        let again = Campaign::new(&config)
            .journal(&path)
            .resume()
            .run(None)
            .unwrap_or_else(|e| panic!("{name}: second resume failed: {e}"));
        assert_eq!(canon(&again), fresh, "{name}: upgraded journal reconstructs differently");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len);
        let _ = std::fs::remove_file(&path);
    }
}
