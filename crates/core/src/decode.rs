//! Decoding genomes into training parameters (§2.2.2).
//!
//! The three categorical genes are real-valued so that Gaussian mutation
//! applies uniformly; decoding takes `floor(gene) % n_choices` (the paper's
//! example: gene 5.78 for `scale_by_worker` → `floor(5.78) % 3 = 1`…
//! the paper prints 2 → "none"; we follow the stated formula, which for
//! in-bounds genes is unambiguous since mutation clamps genes to their
//! ranges).

use dphpo_dnnp::{Activation, LrScaling, TrainConfig};

use crate::representation::{gene, N_GENES};

/// Fully decoded hyperparameter set for one individual.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedGenome {
    /// Start learning rate.
    pub start_lr: f64,
    /// Stop learning rate.
    pub stop_lr: f64,
    /// Descriptor cutoff (Å).
    pub rcut: f64,
    /// Switching onset (Å).
    pub rcut_smth: f64,
    /// Learning-rate scaling scheme.
    pub scale_by_worker: LrScaling,
    /// Descriptor activation.
    pub desc_activ_func: Activation,
    /// Fitting activation.
    pub fitting_activ_func: Activation,
}

/// `floor(gene) % n`, with the Euclidean modulus so that a (theoretically
/// out-of-bounds) negative gene still maps into range.
pub fn floor_mod(gene_value: f64, n_choices: usize) -> usize {
    let floored = gene_value.floor() as i64;
    floored.rem_euclid(n_choices as i64) as usize
}

/// Decode a seven-element genome.
pub fn decode(genome: &[f64]) -> DecodedGenome {
    assert_eq!(genome.len(), N_GENES, "genome must have {N_GENES} genes");
    DecodedGenome {
        start_lr: genome[gene::START_LR],
        stop_lr: genome[gene::STOP_LR],
        rcut: genome[gene::RCUT],
        rcut_smth: genome[gene::RCUT_SMTH],
        scale_by_worker: LrScaling::ALL[floor_mod(genome[gene::SCALE_BY_WORKER], 3)],
        desc_activ_func: Activation::ALL[floor_mod(genome[gene::DESC_ACTIV_FUNC], 5)],
        fitting_activ_func: Activation::ALL[floor_mod(genome[gene::FITTING_ACTIV_FUNC], 5)],
    }
}

impl DecodedGenome {
    /// Merge the decoded hyperparameters into a base training configuration
    /// (which carries the fixed settings: network sizes, prefactors, step
    /// count, worker count).
    pub fn apply_to(&self, base: &TrainConfig) -> TrainConfig {
        TrainConfig {
            start_lr: self.start_lr,
            stop_lr: self.stop_lr,
            rcut: self.rcut,
            rcut_smth: self.rcut_smth,
            scale_by_worker: self.scale_by_worker,
            desc_activation: self.desc_activ_func,
            fitting_activation: self.fitting_activ_func,
            ..base.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::DeepMDRepresentation;
    use dphpo_evo::ops::random_population;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn floor_mod_matches_paper_formula() {
        // floor(5.78) % 3 = 5 % 3 = 2.
        assert_eq!(floor_mod(5.78, 3), 2);
        assert_eq!(floor_mod(0.0, 3), 0);
        assert_eq!(floor_mod(0.999, 3), 0);
        assert_eq!(floor_mod(1.0, 3), 1);
        assert_eq!(floor_mod(2.999, 3), 2);
        assert_eq!(floor_mod(4.5, 5), 4);
        // Euclidean behaviour for out-of-range negatives.
        assert_eq!(floor_mod(-0.5, 3), 2);
    }

    #[test]
    fn decode_categorical_genes() {
        let genome = vec![0.004, 1e-5, 9.5, 2.5, 2.7, 4.2, 2.9];
        let d = decode(&genome);
        assert_eq!(d.scale_by_worker, LrScaling::None); // floor(2.7)%3 = 2
        assert_eq!(d.desc_activ_func, Activation::Tanh); // floor(4.2)%5 = 4
        assert_eq!(d.fitting_activ_func, Activation::Softplus); // floor(2.9)%5 = 2
        assert_eq!(d.start_lr, 0.004);
        assert_eq!(d.rcut, 9.5);
    }

    #[test]
    fn every_in_range_genome_decodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = random_population(500, &DeepMDRepresentation::init_ranges(), &mut rng);
        for ind in &pop {
            let d = decode(&ind.genome);
            assert!(d.rcut_smth < d.rcut, "ranges guarantee valid cutoffs");
            assert!(d.start_lr > 0.0 && d.stop_lr > 0.0);
        }
    }

    #[test]
    fn decode_covers_all_choices() {
        // Sweeping the categorical gene ranges hits every option.
        let mut scales = std::collections::HashSet::new();
        let mut acts = std::collections::HashSet::new();
        for i in 0..30 {
            let v = i as f64 / 10.0; // 0.0 .. 2.9
            scales.insert(decode(&[1e-3, 1e-5, 8.0, 3.0, v, 0.0, 0.0]).scale_by_worker);
        }
        for i in 0..50 {
            let v = i as f64 / 10.0; // 0.0 .. 4.9
            acts.insert(decode(&[1e-3, 1e-5, 8.0, 3.0, 0.0, v, 0.0]).desc_activ_func);
        }
        assert_eq!(scales.len(), 3);
        assert_eq!(acts.len(), 5);
    }

    #[test]
    fn apply_to_preserves_fixed_settings() {
        let base = TrainConfig { num_steps: 123, n_workers: 6, ..TrainConfig::default() };
        let d = decode(&[0.004, 1e-5, 9.5, 2.5, 2.0, 4.0, 4.0]);
        let config = d.apply_to(&base);
        assert_eq!(config.num_steps, 123);
        assert_eq!(config.n_workers, 6);
        assert_eq!(config.start_lr, 0.004);
        assert_eq!(config.rcut, 9.5);
        assert_eq!(config.scale_by_worker, LrScaling::None);
        assert!(config.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "genome must have")]
    fn wrong_genome_length_panics() {
        decode(&[1.0, 2.0]);
    }
}
