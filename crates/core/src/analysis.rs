//! Post-experiment analysis: the aggregated final-generation solution set,
//! Pareto frontier (Fig. 2 / Table 2), chemical-accuracy filtering and
//! selected solutions (Table 3), parallel-coordinates export and findings
//! (Fig. 3), and per-generation level-plot data (Fig. 1).

use std::fmt::Write as _;

use dphpo_evo::{pareto_front, Fitness};

use crate::decode::{decode, DecodedGenome};
use crate::experiment::ExperimentResult;

/// Chemical-accuracy thresholds (§3.2): force < 0.04 eV/Å and energy
/// < 0.004 eV/atom keep the model within the reference DFT's precision.
pub const CHEM_ACC_FORCE: f64 = 0.04;
/// Energy threshold, eV/atom.
pub const CHEM_ACC_ENERGY: f64 = 0.004;

/// One solution from the aggregated final generations.
#[derive(Clone, Debug)]
pub struct SolutionRecord {
    /// Which EA run produced it.
    pub run: usize,
    /// Raw genome.
    pub genome: Vec<f64>,
    /// Decoded hyperparameters.
    pub decoded: DecodedGenome,
    /// Validation energy RMSE (eV/atom).
    pub energy_loss: f64,
    /// Validation force RMSE (eV/Å).
    pub force_loss: f64,
    /// Simulated training runtime (minutes, paper scale).
    pub runtime_minutes: f64,
    /// True if the evaluation failed (MAXINT).
    pub failed: bool,
    /// On the exact aggregated Pareto frontier.
    pub on_frontier: bool,
    /// Meets both chemical-accuracy thresholds.
    pub chem_accurate: bool,
}

/// The complete analysis of an experiment's final generations.
pub struct Analysis {
    /// All final-generation solutions across runs, annotated.
    pub solutions: Vec<SolutionRecord>,
    /// Indices of frontier members, sorted by ascending force loss
    /// (Table 2's presentation order).
    pub frontier: Vec<usize>,
    /// Indices of chemically accurate solutions.
    pub accurate: Vec<usize>,
    /// Chemically accurate solution with the lowest force loss (Table 3
    /// solution 1).
    pub lowest_force: Option<usize>,
    /// … with the lowest energy loss (Table 3 solution 2).
    pub lowest_energy: Option<usize>,
    /// … with the lowest runtime (Table 3 solution 3).
    pub lowest_runtime: Option<usize>,
}

/// Build the aggregated final-generation solution set and run the full
/// annotation pass with the paper's absolute chemical-accuracy thresholds.
pub fn analyze(result: &ExperimentResult) -> Analysis {
    analyze_with_thresholds(result, CHEM_ACC_FORCE, CHEM_ACC_ENERGY)
}

/// As [`analyze`], with explicit accuracy thresholds. The paper's absolute
/// numbers presume its force scale (best solution 0.0357 eV/Å, i.e. ~12 %
/// below the 0.04 cutoff); reduced-scale reproductions can pass a
/// *scale-matched* cutoff (e.g. 1.12 × their own best force RMSE) instead —
/// see EXPERIMENTS.md.
pub fn analyze_with_thresholds(
    result: &ExperimentResult,
    force_threshold: f64,
    energy_threshold: f64,
) -> Analysis {
    let mut solutions = Vec::new();
    for (run_idx, run) in result.runs.iter().enumerate() {
        for ind in run.final_population() {
            let fitness = ind.fitness();
            let failed = fitness.is_penalty();
            let (energy_loss, force_loss) = (fitness.get(0), fitness.get(1));
            solutions.push(SolutionRecord {
                run: run_idx,
                genome: ind.genome.clone(),
                decoded: decode(&ind.genome),
                energy_loss,
                force_loss,
                runtime_minutes: ind.eval_minutes.unwrap_or(f64::NAN),
                failed,
                on_frontier: false,
                chem_accurate: !failed
                    && force_loss < force_threshold
                    && energy_loss < energy_threshold,
            });
        }
    }

    // Aggregated Pareto frontier over the non-failed solutions.
    let ok_indices: Vec<usize> =
        (0..solutions.len()).filter(|&i| !solutions[i].failed).collect();
    let fitnesses: Vec<Fitness> = ok_indices
        .iter()
        .map(|&i| Fitness::new(vec![solutions[i].energy_loss, solutions[i].force_loss]))
        .collect();
    let fit_refs: Vec<&Fitness> = fitnesses.iter().collect();
    let mut frontier: Vec<usize> =
        pareto_front(&fit_refs).into_iter().map(|k| ok_indices[k]).collect();
    for &i in &frontier {
        solutions[i].on_frontier = true;
    }
    frontier.sort_by(|&a, &b| {
        solutions[a].force_loss.partial_cmp(&solutions[b].force_loss).unwrap()
    });

    let accurate: Vec<usize> =
        (0..solutions.len()).filter(|&i| solutions[i].chem_accurate).collect();
    let argmin = |key: &dyn Fn(&SolutionRecord) -> f64| -> Option<usize> {
        accurate
            .iter()
            .copied()
            .min_by(|&a, &b| key(&solutions[a]).partial_cmp(&key(&solutions[b])).unwrap())
    };

    Analysis {
        lowest_force: argmin(&|s| s.force_loss),
        lowest_energy: argmin(&|s| s.energy_loss),
        lowest_runtime: argmin(&|s| s.runtime_minutes),
        solutions,
        frontier,
        accurate,
    }
}

impl Analysis {
    /// Table 2: `(force error, energy error)` for every frontier solution,
    /// ascending force error.
    pub fn table2(&self) -> Vec<(f64, f64)> {
        self.frontier
            .iter()
            .map(|&i| (self.solutions[i].force_loss, self.solutions[i].energy_loss))
            .collect()
    }

    /// The smallest `rcut` among chemically accurate solutions (§3.2: the
    /// paper finds none below 8.5 Å).
    pub fn min_accurate_rcut(&self) -> Option<f64> {
        self.accurate
            .iter()
            .map(|&i| self.solutions[i].decoded.rcut)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Count per activation name among chemically accurate solutions, for
    /// the descriptor (`desc = true`) or fitting network.
    pub fn accurate_activation_counts(&self, desc: bool) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = dphpo_dnnp::Activation::ALL
            .iter()
            .map(|a| (a.name(), 0usize))
            .collect();
        for &i in &self.accurate {
            let a = if desc {
                self.solutions[i].decoded.desc_activ_func
            } else {
                self.solutions[i].decoded.fitting_activ_func
            };
            counts[a.index()].1 += 1;
        }
        counts
    }

    /// Count per LR-scaling scheme among chemically accurate solutions.
    pub fn accurate_scaling_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = dphpo_dnnp::LrScaling::ALL
            .iter()
            .map(|s| (s.name(), 0usize))
            .collect();
        for &i in &self.accurate {
            let s = self.solutions[i].decoded.scale_by_worker;
            let pos = dphpo_dnnp::LrScaling::ALL.iter().position(|&x| x == s).unwrap();
            counts[pos].1 += 1;
        }
        counts
    }

    /// Fig. 3 export: one CSV row per final solution with hyperparameters,
    /// runtime, losses, and flags — a parallel-coordinates plot's data.
    pub fn parallel_coordinates_csv(&self) -> String {
        let mut out = String::from(
            "run,start_lr,stop_lr,rcut,rcut_smth,scale_by_worker,desc_activ_func,\
             fitting_activ_func,runtime_min,energy_loss,force_loss,chem_accurate,on_frontier,failed\n",
        );
        for s in &self.solutions {
            let _ = writeln!(
                out,
                "{},{:e},{:e},{:.4},{:.4},{},{},{},{:.1},{:.6},{:.6},{},{},{}",
                s.run,
                s.decoded.start_lr,
                s.decoded.stop_lr,
                s.decoded.rcut,
                s.decoded.rcut_smth,
                s.decoded.scale_by_worker.name(),
                s.decoded.desc_activ_func.name(),
                s.decoded.fitting_activ_func.name(),
                s.runtime_minutes,
                s.energy_loss,
                s.force_loss,
                s.chem_accurate,
                s.on_frontier,
                s.failed
            );
        }
        out
    }
}

/// Failure-breakdown table: per-generation supervision counters summed
/// across runs — how many evaluations diverged, timed out, exhausted their
/// retries, or were cancelled, plus the scheduler's fault economics (worker
/// deaths, retries, speculative twins, lost/backoff minutes, makespan).
/// Only deterministic [`dphpo_hpc::PoolReport`] fields appear, so the table
/// is bit-identical across reruns and journal resumes.
pub fn failure_breakdown_table(result: &ExperimentResult) -> String {
    let n_gens = result.pool_reports.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut out = String::from(
        "gen | diverged | timeout | exhausted | cancelled | deaths | retried | \
         speculated | spec-deaths | lost-min | backoff-min | makespan-min\n",
    );
    let _ = writeln!(out, "{}", "-".repeat(118));
    let mut row = |label: &str, reports: &mut dyn Iterator<Item = &dphpo_hpc::PoolReport>| {
        let (mut div, mut tmo, mut exh, mut can, mut dth, mut ret, mut spc, mut sdh) =
            (0usize, 0usize, 0usize, 0usize, 0usize, 0usize, 0usize, 0usize);
        let (mut lost, mut back, mut mks) = (0.0f64, 0.0f64, 0.0f64);
        for r in reports {
            div += r.diverged_tasks;
            tmo += r.timeout_tasks;
            exh += r.exhausted_tasks;
            can += r.cancelled_tasks;
            dth += r.worker_deaths;
            ret += r.retried_tasks;
            spc += r.speculated_tasks;
            sdh += r.speculative_deaths;
            lost += r.lost_minutes;
            back += r.backoff_minutes;
            mks += r.makespan_minutes;
        }
        let _ = writeln!(
            out,
            "{label:>3} | {div:8} | {tmo:7} | {exh:9} | {can:9} | {dth:6} | {ret:7} | \
             {spc:10} | {sdh:11} | {lost:8.1} | {back:11.1} | {mks:12.1}",
        );
    };
    for g in 0..n_gens {
        let label = format!("{g}");
        row(&label, &mut result.pool_reports.iter().filter_map(|run| run.get(g)));
    }
    row("all", &mut result.pool_reports.iter().flatten());
    out
}

/// Fig. 1 export: per-generation `(run, generation, energy, force, failed)`
/// rows for every individual of every generation of every run.
pub fn level_plot_csv(result: &ExperimentResult) -> String {
    let mut out = String::from("run,generation,energy_loss,force_loss,failed\n");
    for (run_idx, run) in result.runs.iter().enumerate() {
        for record in &run.history {
            for ind in &record.population {
                let f = ind.fitness();
                let _ = writeln!(
                    out,
                    "{},{},{:.6},{:.6},{}",
                    run_idx,
                    record.generation,
                    f.get(0),
                    f.get(1),
                    f.is_penalty()
                );
            }
        }
    }
    out
}

/// An ASCII density plot of energy (y) vs force (x) losses — the harness's
/// stand-in for one Fig. 1 panel. Outliers beyond the axis limits are
/// culled, as the paper culls generation-0 outliers for visual clarity.
pub fn ascii_level_plot(
    points: &[(f64, f64)], // (energy, force)
    force_max: f64,
    energy_max: f64,
    width: usize,
    height: usize,
) -> String {
    let mut grid = vec![0usize; width * height];
    let mut culled = 0usize;
    for &(e, f) in points {
        if e >= energy_max || f >= force_max || !e.is_finite() || !f.is_finite() {
            culled += 1;
            continue;
        }
        let col = ((f / force_max) * width as f64) as usize;
        let row = ((e / energy_max) * height as f64) as usize;
        grid[row.min(height - 1) * width + col.min(width - 1)] += 1;
    }
    let glyph = |c: usize| match c {
        0 => ' ',
        1 => '·',
        2..=3 => 'o',
        4..=7 => 'O',
        _ => '@',
    };
    let mut out = String::new();
    for row in (0..height).rev() {
        out.push('|');
        for col in 0..width {
            out.push(glyph(grid[row * width + col]));
        }
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    if culled > 0 {
        let _ = writeln!(out, "({culled} outliers culled)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, ExperimentConfig};

    fn smoke_analysis() -> (ExperimentResult, Analysis) {
        let result = run_experiment(&ExperimentConfig::smoke());
        let analysis = analyze(&result);
        (result, analysis)
    }

    #[test]
    fn analysis_covers_all_final_solutions() {
        let (result, analysis) = smoke_analysis();
        let expected: usize = result.runs.iter().map(|r| r.final_population().len()).sum();
        assert_eq!(analysis.solutions.len(), expected);
        assert!(!analysis.frontier.is_empty(), "non-failed runs must yield a frontier");
    }

    #[test]
    fn frontier_members_are_mutually_nondominating() {
        let (_, analysis) = smoke_analysis();
        for &a in &analysis.frontier {
            for &b in &analysis.frontier {
                if a == b {
                    continue;
                }
                let fa = Fitness::new(vec![
                    analysis.solutions[a].energy_loss,
                    analysis.solutions[a].force_loss,
                ]);
                let fb = Fitness::new(vec![
                    analysis.solutions[b].energy_loss,
                    analysis.solutions[b].force_loss,
                ]);
                assert!(!fa.dominates(&fb), "frontier member dominated");
            }
        }
    }

    #[test]
    fn table2_is_sorted_by_force_and_antitone_in_energy() {
        let (_, analysis) = smoke_analysis();
        let t2 = analysis.table2();
        for w in t2.windows(2) {
            assert!(w[0].0 <= w[1].0, "force must ascend");
            // On a 2-D Pareto frontier, ascending force ⇒ descending energy.
            assert!(w[0].1 >= w[1].1, "energy must descend along the frontier");
        }
    }

    #[test]
    fn csv_exports_have_expected_shape() {
        let (result, analysis) = smoke_analysis();
        let pc = analysis.parallel_coordinates_csv();
        assert_eq!(pc.lines().count(), 1 + analysis.solutions.len());
        assert!(pc.starts_with("run,start_lr"));
        let lp = level_plot_csv(&result);
        let expected: usize = result
            .runs
            .iter()
            .map(|r| r.history.iter().map(|g| g.population.len()).sum::<usize>())
            .sum();
        assert_eq!(lp.lines().count(), 1 + expected);
    }

    #[test]
    fn selected_solutions_come_from_accurate_set() {
        let (_, analysis) = smoke_analysis();
        for i in [analysis.lowest_force, analysis.lowest_energy, analysis.lowest_runtime].into_iter().flatten() {
            assert!(analysis.solutions[i].chem_accurate);
        }
        if let (Some(f), Some(e)) = (analysis.lowest_force, analysis.lowest_energy) {
            let sf = &analysis.solutions[f];
            let se = &analysis.solutions[e];
            assert!(sf.force_loss <= se.force_loss);
            assert!(se.energy_loss <= sf.energy_loss);
        }
    }

    #[test]
    fn ascii_plot_counts_and_culls() {
        let points = vec![(0.001, 0.03), (0.001, 0.031), (0.5, 0.03), (0.001, 9.0)];
        let plot = ascii_level_plot(&points, 0.1, 0.01, 20, 10);
        assert!(plot.contains("2 outliers culled"), "{plot}");
        assert!(plot.contains('o') || plot.contains('·'));
    }

    #[test]
    fn failure_breakdown_has_one_row_per_generation_plus_totals() {
        let (result, _) = smoke_analysis();
        let table = failure_breakdown_table(&result);
        let n_gens = result.pool_reports.iter().map(|r| r.len()).max().unwrap();
        // Header + separator + one row per generation + the totals row.
        assert_eq!(table.lines().count(), 2 + n_gens + 1, "{table}");
        assert!(table.lines().last().unwrap().starts_with("all"), "{table}");
        // The smoke experiment injects no faults: every failure counter is 0.
        let totals = table.lines().last().unwrap();
        let cols: Vec<&str> = totals.split('|').map(str::trim).collect();
        for &c in &cols[1..8] {
            assert_eq!(c, "0", "expected clean smoke run, got {table}");
        }
    }

    #[test]
    fn activation_and_scaling_counts_sum_to_accurate() {
        let (_, analysis) = smoke_analysis();
        let total: usize = analysis.accurate_activation_counts(true).iter().map(|c| c.1).sum();
        assert_eq!(total, analysis.accurate.len());
        let total_s: usize = analysis.accurate_scaling_counts().iter().map(|c| c.1).sum();
        assert_eq!(total_s, analysis.accurate.len());
    }
}
