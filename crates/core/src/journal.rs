//! The write-ahead evaluation journal: crash-safe, bit-identically
//! resumable experiment campaigns.
//!
//! Every completed evaluation (genome, seed, fitness, wall-minutes, fault
//! flags, `lcurve.out` tail) and every generation boundary (population, RNG
//! stream state, mutation σ, Pareto archive, scheduler report) is appended
//! to a JSONL file *before* the campaign moves on — one record per line,
//! flushed per record, via the in-repo [`Json`] codec. If the driver dies
//! mid-campaign, `resume` replays the journaled records instead of
//! retraining, re-submits only the missing tasks to the worker pool, and
//! continues to a result **bit-identical** to an uninterrupted run.
//!
//! # Determinism contract
//!
//! The resumed campaign equals the uninterrupted one because every source
//! of randomness is restored or re-derived exactly (see DESIGN.md §7 for
//! the field-by-field schema):
//!
//! 1. **EA stream** — each generation boundary stores the xoshiro256++
//!    state ([`rand::rngs::StdRng::state`]); resume rebuilds the generator
//!    with `from_state` so offspring of the next generation are
//!    regenerated bit-identically.
//! 2. **Training seeds** — per-evaluation seeds are pure functions of
//!    `(run seed, generation × population + slot)`
//!    ([`crate::workflow::derive_seed`]), independent of scheduling order.
//! 3. **Fault decisions** — worker deaths hash `(seed, generation, task,
//!    attempt)` ([`dphpo_hpc::FaultInjector`]), so an interrupted and an
//!    uninterrupted campaign see the same fault pattern.
//! 4. **Replay** — journaled evaluations are matched by `(run, generation,
//!    slot)` *and* a bit-exact genome comparison; a hit short-circuits
//!    training and returns the journaled outcome verbatim.
//! 5. **Steady-state campaigns** additionally journal each evaluation's
//!    `arrival` index — the position at which the population consumed it.
//!    All steady-state RNG draws are keyed off `(run seed, arrival)`, so
//!    the journaled arrival order fully determines population and archive
//!    bytes regardless of live thread interleaving (DESIGN.md §12).
//!
//! Journals additionally carry a fingerprint of the campaign configuration
//! ([`config_fingerprint`]); resuming under a changed configuration is
//! rejected rather than silently producing a chimera.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::Path;
use std::rc::Rc;

use dphpo_dnnp::{Json, LcurveRow};
use dphpo_evo::nsga2::GenerationRecord;
use dphpo_evo::{Fitness, Id, Individual};
use dphpo_hpc::{EvalFault, EvalOutcome, PoolReport, TaskError, TaskRecord};

use crate::experiment::{CampaignMode, ExperimentConfig};
use crate::workflow::EvalRecord;

/// Journal format version; bumped on any schema change.
pub const JOURNAL_VERSION: u64 = 1;

/// Journal parse/validation failure, with enough context to diagnose a
/// corrupt or stale file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalError {
    /// Human-readable description.
    pub message: String,
}

impl JournalError {
    fn new(message: impl Into<String>) -> Self {
        JournalError { message: message.into() }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal error: {}", self.message)
    }
}

impl std::error::Error for JournalError {}

// ---------------------------------------------------------------------------
// Low-level JSON helpers
// ---------------------------------------------------------------------------

fn hex_u64(v: u64) -> Json {
    Json::String(format!("{v:#018x}"))
}

fn parse_hex_u64(j: Option<&Json>, what: &str) -> Result<u64, JournalError> {
    let s = j
        .and_then(Json::as_str)
        .ok_or_else(|| JournalError::new(format!("missing hex field '{what}'")))?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| JournalError::new(format!("field '{what}' is not 0x-prefixed: {s}")))?;
    u64::from_str_radix(digits, 16)
        .map_err(|_| JournalError::new(format!("field '{what}' is not hex: {s}")))
}

fn numbers(xs: &[f64]) -> Json {
    Json::Array(xs.iter().copied().map(Json::Number).collect())
}

fn f64_field(j: &Json, key: &str) -> Result<f64, JournalError> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| JournalError::new(format!("missing numeric field '{key}'")))
}

fn usize_field(j: &Json, key: &str) -> Result<usize, JournalError> {
    Ok(f64_field(j, key)? as usize)
}

fn array_field<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], JournalError> {
    match j.get(key) {
        Some(Json::Array(items)) => Ok(items),
        _ => Err(JournalError::new(format!("missing array field '{key}'"))),
    }
}

fn f64_array(j: &Json, key: &str) -> Result<Vec<f64>, JournalError> {
    array_field(j, key)?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| JournalError::new(format!("non-numeric entry in '{key}'")))
        })
        .collect()
}

/// Crowding distances on front boundaries are `+inf` (and a diverged loss
/// may be `NaN`), which JSON cannot express as number literals — encode
/// non-finite values as strings.
fn json_of_f64_or_inf(v: f64) -> Json {
    if v.is_finite() {
        Json::Number(v)
    } else if v.is_nan() {
        Json::String("nan".into())
    } else if v > 0.0 {
        Json::String("inf".into())
    } else {
        Json::String("-inf".into())
    }
}

fn f64_or_inf_field(j: &Json, key: &str) -> Result<f64, JournalError> {
    match j.get(key) {
        Some(Json::Number(v)) => Ok(*v),
        Some(Json::String(s)) if s == "inf" => Ok(f64::INFINITY),
        Some(Json::String(s)) if s == "-inf" => Ok(f64::NEG_INFINITY),
        Some(Json::String(s)) if s == "nan" => Ok(f64::NAN),
        _ => Err(JournalError::new(format!("missing float field '{key}'"))),
    }
}

// ---------------------------------------------------------------------------
// Serde for the domain types (also exercised by the round-trip tests)
// ---------------------------------------------------------------------------

/// Serialise a fitness vector (objectives only; `MAXINT` penalties are
/// large finite numbers and round-trip exactly).
pub fn fitness_to_json(f: &Fitness) -> Json {
    numbers(f.values())
}

/// Parse a fitness vector.
pub fn fitness_from_json(j: &Json) -> Result<Fitness, JournalError> {
    match j {
        Json::Array(items) => {
            let values: Result<Vec<f64>, _> = items
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| JournalError::new("non-numeric objective"))
                })
                .collect();
            let values = values?;
            if values.iter().any(|v| v.is_nan()) {
                return Err(JournalError::new("NaN objective in journal"));
            }
            Ok(Fitness::new(values))
        }
        _ => Err(JournalError::new("fitness must be an array")),
    }
}

/// Serialise an individual: identity, genome, evaluation state, and the
/// sort metadata (rank / crowding distance) that selection derived.
pub fn individual_to_json(ind: &Individual) -> Json {
    Json::object(vec![
        ("id", hex_u64(ind.id.raw())),
        ("genome", numbers(&ind.genome)),
        (
            "fitness",
            match &ind.fitness {
                Some(f) => fitness_to_json(f),
                None => Json::Null,
            },
        ),
        (
            "rank",
            if ind.rank == usize::MAX { Json::Null } else { Json::Number(ind.rank as f64) },
        ),
        ("distance", json_of_f64_or_inf(ind.distance)),
        ("minutes", ind.eval_minutes.map_or(Json::Null, Json::Number)),
    ])
}

/// Parse an individual. The restored id is registered with
/// [`Id::advance_past`] so freshly allocated ids never collide with it.
pub fn individual_from_json(j: &Json) -> Result<Individual, JournalError> {
    let raw = parse_hex_u64(j.get("id"), "id")?;
    Id::advance_past(raw);
    let fitness = match j.get("fitness") {
        None | Some(Json::Null) => None,
        Some(f) => Some(fitness_from_json(f)?),
    };
    let rank = match j.get("rank") {
        None | Some(Json::Null) => usize::MAX,
        Some(v) => v
            .as_f64()
            .ok_or_else(|| JournalError::new("non-numeric 'rank'"))? as usize,
    };
    let eval_minutes = match j.get("minutes") {
        None | Some(Json::Null) => None,
        Some(v) => {
            Some(v.as_f64().ok_or_else(|| JournalError::new("non-numeric 'minutes'"))?)
        }
    };
    Ok(Individual {
        id: Id::from_raw(raw),
        genome: f64_array(j, "genome")?,
        fitness,
        rank,
        distance: f64_or_inf_field(j, "distance")?,
        eval_minutes,
    })
}

/// Serialise a xoshiro256++ state snapshot as four hex words.
pub fn rng_state_to_json(state: [u64; 4]) -> Json {
    Json::Array(state.iter().map(|&w| hex_u64(w)).collect())
}

/// Parse a [`rng_state_to_json`] snapshot.
pub fn rng_state_from_json(j: &Json) -> Result<[u64; 4], JournalError> {
    let items = match j {
        Json::Array(items) if items.len() == 4 => items,
        _ => return Err(JournalError::new("rng state must be a 4-element array")),
    };
    let mut state = [0u64; 4];
    for (slot, item) in state.iter_mut().zip(items) {
        *slot = parse_hex_u64(Some(item), "rng word")?;
    }
    if state.iter().all(|&w| w == 0) {
        return Err(JournalError::new("all-zero rng state"));
    }
    Ok(state)
}

fn lcurve_row_to_json(r: &LcurveRow) -> Json {
    numbers(&[r.step as f64, r.rmse_e_val, r.rmse_e_trn, r.rmse_f_val, r.rmse_f_trn, r.lr])
}

fn lcurve_row_from_json(j: &Json) -> Result<LcurveRow, JournalError> {
    let v = match j {
        Json::Array(items) if items.len() == 6 => items
            .iter()
            .map(|x| x.as_f64().ok_or_else(|| JournalError::new("non-numeric lcurve entry")))
            .collect::<Result<Vec<f64>, _>>()?,
        _ => return Err(JournalError::new("lcurve row must be a 6-element array")),
    };
    Ok(LcurveRow {
        step: v[0] as usize,
        rmse_e_val: v[1],
        rmse_e_trn: v[2],
        rmse_f_val: v[3],
        rmse_f_trn: v[4],
        lr: v[5],
    })
}

/// Serialise the *deterministic* fields of a pool report. The two fields
/// that depend on physical thread races — `quarantined_workers`, and
/// `heartbeats` under speculation — are intentionally not journaled, so a
/// resumed campaign's reports stay bit-identical to an uninterrupted run's.
fn report_to_json(r: &PoolReport) -> Json {
    Json::object(vec![
        ("makespan", Json::Number(r.makespan_minutes)),
        ("per_worker", numbers(&r.per_worker_minutes)),
        ("deaths", Json::Number(r.worker_deaths as f64)),
        ("retried", Json::Number(r.retried_tasks as f64)),
        ("diverged", Json::Number(r.diverged_tasks as f64)),
        ("timeout", Json::Number(r.timeout_tasks as f64)),
        ("cancelled", Json::Number(r.cancelled_tasks as f64)),
        ("exhausted", Json::Number(r.exhausted_tasks as f64)),
        ("speculated", Json::Number(r.speculated_tasks as f64)),
        ("spec_deaths", Json::Number(r.speculative_deaths as f64)),
        ("lost_minutes", Json::Number(r.lost_minutes)),
        ("backoff_minutes", Json::Number(r.backoff_minutes)),
        ("busy", numbers(&r.busy_minutes)),
        ("lost_death", numbers(&r.lost_death_minutes)),
        ("lost_spec", numbers(&r.lost_speculation_minutes)),
        ("backoff_slot", numbers(&r.backoff_slot_minutes)),
        ("idle", numbers(&r.idle_minutes)),
        ("wall", Json::Number(r.wall_minutes)),
    ])
}

/// Optional numeric field (absent in journals written before the
/// supervision runtime existed): missing means zero.
fn opt_usize_field(j: &Json, key: &str) -> usize {
    j.get(key).and_then(Json::as_f64).map_or(0, |v| v as usize)
}

fn opt_f64_field(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Optional numeric array (absent in journals written before utilization
/// accounting existed): missing means empty.
fn opt_f64_array(j: &Json, key: &str) -> Vec<f64> {
    f64_array(j, key).unwrap_or_default()
}

fn report_from_json(j: &Json) -> Result<PoolReport, JournalError> {
    Ok(PoolReport {
        makespan_minutes: f64_field(j, "makespan")?,
        per_worker_minutes: f64_array(j, "per_worker")?,
        worker_deaths: usize_field(j, "deaths")?,
        retried_tasks: usize_field(j, "retried")?,
        diverged_tasks: opt_usize_field(j, "diverged"),
        timeout_tasks: opt_usize_field(j, "timeout"),
        cancelled_tasks: opt_usize_field(j, "cancelled"),
        exhausted_tasks: opt_usize_field(j, "exhausted"),
        speculated_tasks: opt_usize_field(j, "speculated"),
        speculative_deaths: opt_usize_field(j, "spec_deaths"),
        lost_minutes: opt_f64_field(j, "lost_minutes"),
        backoff_minutes: opt_f64_field(j, "backoff_minutes"),
        busy_minutes: opt_f64_array(j, "busy"),
        lost_death_minutes: opt_f64_array(j, "lost_death"),
        lost_speculation_minutes: opt_f64_array(j, "lost_spec"),
        backoff_slot_minutes: opt_f64_array(j, "backoff_slot"),
        idle_minutes: opt_f64_array(j, "idle"),
        wall_minutes: opt_f64_field(j, "wall"),
        ..PoolReport::default()
    })
}

// ---------------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------------

/// How a journaled evaluation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Training completed and produced a finite fitness.
    None,
    /// Training diverged or the configuration was invalid (MAXINT).
    Diverged,
    /// The simulated runtime exceeded the per-task limit (MAXINT).
    Timeout,
    /// The hosting worker died and attempts were exhausted (MAXINT).
    Worker,
    /// The evaluation was externally cancelled (MAXINT).
    Cancelled,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::Diverged => "diverged",
            FaultKind::Timeout => "timeout",
            FaultKind::Worker => "worker",
            FaultKind::Cancelled => "cancelled",
        }
    }

    fn parse(s: &str) -> Result<Self, JournalError> {
        match s {
            "none" => Ok(FaultKind::None),
            "diverged" => Ok(FaultKind::Diverged),
            "timeout" => Ok(FaultKind::Timeout),
            "worker" => Ok(FaultKind::Worker),
            "cancelled" => Ok(FaultKind::Cancelled),
            _ => Err(JournalError::new(format!("unknown fault kind '{s}'"))),
        }
    }
}

/// One completed evaluation, as journaled the moment the scheduler
/// finalised it.
#[derive(Clone, Debug)]
pub struct EvalEntry {
    /// Experiment run index.
    pub run: usize,
    /// Generation whose batch contained the task.
    pub gen: usize,
    /// Slot (task index) within the generation's batch.
    pub slot: usize,
    /// Derived training seed (informational; replay never retrains).
    pub seed: u64,
    /// The evaluated genome, bit-exact.
    pub genome: Vec<f64>,
    /// How the evaluation ended.
    pub fault: FaultKind,
    /// For [`FaultKind::Diverged`] with a structured sentinel abort: the
    /// training step at which divergence was detected.
    pub fault_step: Option<usize>,
    /// For [`FaultKind::Diverged`] with a structured sentinel abort: the
    /// offending loss (may be non-finite).
    pub fault_loss: Option<f64>,
    /// Objective values — present iff `fault == FaultKind::None`.
    pub objectives: Option<Vec<f64>>,
    /// Simulated minutes charged (timeouts charge the full limit).
    pub minutes: f64,
    /// Scheduler attempts consumed (1 = no retries).
    pub attempts: u32,
    /// Tail of the training curve (empty on failure).
    pub lcurve_tail: Vec<LcurveRow>,
    /// Steady-state arrival index this evaluation was consumed at — the
    /// journaled arrival order that fully determines population and archive
    /// bytes (DESIGN.md §12). `None` for generational entries, whose order
    /// is already fixed by `(gen, slot)`; the key is omitted from the JSON
    /// encoding so generational journal bytes are unchanged.
    pub arrival: Option<usize>,
}

impl EvalEntry {
    /// Build the journal entry for a finalised scheduler record.
    pub fn from_task(
        run: usize,
        gen: usize,
        slot: usize,
        seed: u64,
        genome: &[f64],
        task: &TaskRecord<EvalRecord>,
    ) -> Self {
        let mut fault_step = None;
        let mut fault_loss = None;
        let (fault, objectives, lcurve_tail) = match &task.value {
            Ok(record) => (
                FaultKind::None,
                Some(record.fitness.values().to_vec()),
                record.lcurve_tail.clone(),
            ),
            Err(TaskError::Failed(_)) => (FaultKind::Diverged, None, Vec::new()),
            Err(TaskError::Diverged { step, loss }) => {
                fault_step = Some(*step);
                fault_loss = Some(*loss);
                (FaultKind::Diverged, None, Vec::new())
            }
            Err(TaskError::Timeout { .. }) => (FaultKind::Timeout, None, Vec::new()),
            Err(TaskError::WorkerFailed) => (FaultKind::Worker, None, Vec::new()),
            // Cancelled terminals are rare (a task whose only result was an
            // externally cancelled attempt); Speculated is never terminal
            // but gets a defensive mapping rather than a panic.
            Err(TaskError::Cancelled) | Err(TaskError::Speculated) => {
                (FaultKind::Cancelled, None, Vec::new())
            }
        };
        EvalEntry {
            run,
            gen,
            slot,
            seed,
            genome: genome.to_vec(),
            fault,
            fault_step,
            fault_loss,
            objectives,
            minutes: task.minutes,
            attempts: task.attempts,
            lcurve_tail,
            arrival: None,
        }
    }

    /// Reconstruct the pool-level outcome this entry recorded, so replay
    /// can short-circuit training. Successful entries rebuild the full
    /// [`EvalRecord`]; faulted entries return an evaluation error that the
    /// evaluator maps to the same MAXINT penalty the original run saw.
    pub fn to_outcome(&self) -> EvalOutcome<EvalRecord> {
        let fault = match (&self.fault, &self.objectives) {
            (FaultKind::None, Some(objectives)) => {
                return EvalOutcome {
                    value: Ok(EvalRecord {
                        fitness: Fitness::new(objectives.clone()),
                        minutes: self.minutes,
                        failed: false,
                        lcurve_tail: self.lcurve_tail.clone(),
                    }),
                    minutes: self.minutes,
                }
            }
            (FaultKind::Diverged, _) => match (self.fault_step, self.fault_loss) {
                (Some(step), Some(loss)) => EvalFault::Diverged { step, loss },
                _ => EvalFault::Failed(format!("replayed {} fault", self.fault.name())),
            },
            // A replayed timeout carries minutes equal to the limit, so the
            // scheduler's post-hoc `minutes > limit` check cannot re-fire;
            // the structured Deadline fault restores the Timeout error.
            (FaultKind::Timeout, _) => EvalFault::Deadline,
            (FaultKind::Cancelled, _) => EvalFault::Cancelled,
            _ => EvalFault::Failed(format!("replayed {} fault", self.fault.name())),
        };
        EvalOutcome { value: Err(fault), minutes: self.minutes }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("type", Json::String("eval".into())),
            ("run", Json::Number(self.run as f64)),
            ("gen", Json::Number(self.gen as f64)),
            ("slot", Json::Number(self.slot as f64)),
            ("seed", hex_u64(self.seed)),
            ("genome", numbers(&self.genome)),
            ("fault", Json::String(self.fault.name().into())),
            (
                "fault_step",
                self.fault_step.map_or(Json::Null, |s| Json::Number(s as f64)),
            ),
            (
                "fault_loss",
                self.fault_loss.map_or(Json::Null, json_of_f64_or_inf),
            ),
            (
                "objectives",
                match &self.objectives {
                    Some(o) => numbers(o),
                    None => Json::Null,
                },
            ),
            ("minutes", Json::Number(self.minutes)),
            ("attempts", Json::Number(self.attempts as f64)),
            (
                "lcurve_tail",
                Json::Array(self.lcurve_tail.iter().map(lcurve_row_to_json).collect()),
            ),
        ];
        // Generational entries omit the key entirely (not `null`) so their
        // journal bytes predate-and-postdate this field identically.
        if let Some(arrival) = self.arrival {
            fields.push(("arrival", Json::Number(arrival as f64)));
        }
        Json::object(fields)
    }

    fn from_json(j: &Json) -> Result<Self, JournalError> {
        let fault = FaultKind::parse(
            j.get("fault")
                .and_then(Json::as_str)
                .ok_or_else(|| JournalError::new("missing 'fault'"))?,
        )?;
        let objectives = match j.get("objectives") {
            None | Some(Json::Null) => None,
            Some(_) => Some(f64_array(j, "objectives")?),
        };
        if fault == FaultKind::None && objectives.is_none() {
            return Err(JournalError::new("successful eval entry without objectives"));
        }
        let fault_step = match j.get("fault_step") {
            None | Some(Json::Null) => None,
            Some(_) => Some(usize_field(j, "fault_step")?),
        };
        let fault_loss = match j.get("fault_loss") {
            None | Some(Json::Null) => None,
            Some(_) => Some(f64_or_inf_field(j, "fault_loss")?),
        };
        Ok(EvalEntry {
            run: usize_field(j, "run")?,
            gen: usize_field(j, "gen")?,
            slot: usize_field(j, "slot")?,
            seed: parse_hex_u64(j.get("seed"), "seed")?,
            genome: f64_array(j, "genome")?,
            fault,
            fault_step,
            fault_loss,
            objectives,
            minutes: f64_field(j, "minutes")?,
            attempts: usize_field(j, "attempts")? as u32,
            lcurve_tail: array_field(j, "lcurve_tail")?
                .iter()
                .map(lcurve_row_from_json)
                .collect::<Result<_, _>>()?,
            arrival: match j.get("arrival") {
                None | Some(Json::Null) => None,
                Some(_) => Some(usize_field(j, "arrival")?),
            },
        })
    }
}

/// One generation boundary: everything needed to restore the EA mid-run.
#[derive(Clone, Debug)]
pub struct GenEntry {
    /// Experiment run index.
    pub run: usize,
    /// The completed generation's record (population, failures).
    pub record: GenerationRecord,
    /// Mutation σ *after* this generation's annealing (the σ the next
    /// generation will mutate with).
    pub std: Vec<f64>,
    /// Cumulative fitness evaluations in this run.
    pub evaluations: usize,
    /// EA stream state after this generation completed.
    pub rng_state: [u64; 4],
    /// Pareto-archive members at this boundary.
    pub archive: Vec<Individual>,
    /// Scheduler report for this generation's batch.
    pub report: PoolReport,
}

impl GenEntry {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("type", Json::String("generation".into())),
            ("run", Json::Number(self.run as f64)),
            ("gen", Json::Number(self.record.generation as f64)),
            ("failures", Json::Number(self.record.failures as f64)),
            ("evaluations", Json::Number(self.evaluations as f64)),
            ("std", numbers(&self.std)),
            ("rng", rng_state_to_json(self.rng_state)),
            (
                "population",
                Json::Array(self.record.population.iter().map(individual_to_json).collect()),
            ),
            (
                "archive",
                Json::Array(self.archive.iter().map(individual_to_json).collect()),
            ),
            ("report", report_to_json(&self.report)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, JournalError> {
        Ok(GenEntry {
            run: usize_field(j, "run")?,
            record: GenerationRecord {
                generation: usize_field(j, "gen")?,
                failures: usize_field(j, "failures")?,
                population: array_field(j, "population")?
                    .iter()
                    .map(individual_from_json)
                    .collect::<Result<_, _>>()?,
            },
            std: f64_array(j, "std")?,
            evaluations: usize_field(j, "evaluations")?,
            rng_state: rng_state_from_json(
                j.get("rng").ok_or_else(|| JournalError::new("missing 'rng'"))?,
            )?,
            archive: array_field(j, "archive")?
                .iter()
                .map(individual_from_json)
                .collect::<Result<_, _>>()?,
            report: report_from_json(
                j.get("report").ok_or_else(|| JournalError::new("missing 'report'"))?,
            )?,
        })
    }
}

// ---------------------------------------------------------------------------
// Configuration fingerprint (stale-journal rejection)
// ---------------------------------------------------------------------------

/// A stable fingerprint of everything that determines a campaign's result.
/// Stored in the journal header; resume refuses a journal whose fingerprint
/// differs from the configuration it is asked to continue.
pub fn config_fingerprint(config: &ExperimentConfig) -> u64 {
    let g = &config.gen_config;
    let mut fields = vec![
        ("n_runs", Json::Number(config.n_runs as f64)),
        ("pop_size", Json::Number(config.pop_size as f64)),
        ("generations", Json::Number(config.generations as f64)),
        ("train", hex_u64(config.base_train_config.config_hash())),
        (
            "gen",
            Json::object(vec![
                ("n_atoms", Json::Number(g.n_atoms as f64)),
                ("box_len", Json::Number(g.box_len)),
                ("temperature", Json::Number(g.temperature)),
                ("dt_fs", Json::Number(g.dt_fs)),
                ("friction", Json::Number(g.friction)),
                ("equil_steps", Json::Number(g.equil_steps as f64)),
                ("sample_every", Json::Number(g.sample_every as f64)),
                ("n_frames", Json::Number(g.n_frames as f64)),
            ]),
        ),
        ("noise", numbers(&[config.label_noise.0, config.label_noise.1])),
        (
            "pool",
            Json::object(vec![
                ("n_workers", Json::Number(config.pool.n_workers as f64)),
                (
                    "timeout",
                    config.pool.timeout_minutes.map_or(Json::Null, Json::Number),
                ),
                ("nanny", Json::Bool(config.pool.nanny)),
                ("max_attempts", Json::Number(config.pool.max_attempts as f64)),
                ("speculate", Json::Bool(config.pool.supervisor.speculate)),
                (
                    "straggler_quantile",
                    Json::Number(config.pool.supervisor.straggler_quantile),
                ),
                (
                    "straggler_factor",
                    Json::Number(config.pool.supervisor.straggler_factor),
                ),
                (
                    "backoff_base",
                    Json::Number(config.pool.supervisor.backoff_base_minutes),
                ),
                ("backoff_factor", Json::Number(config.pool.supervisor.backoff_factor)),
                (
                    "quarantine_deaths",
                    Json::Number(config.pool.supervisor.quarantine_deaths as f64),
                ),
            ]),
        ),
        ("fault_probability", Json::Number(config.fault_probability)),
        ("master_seed", hex_u64(config.master_seed)),
    ];
    // The campaign mode changes every downstream byte (arrival-keyed RNG vs
    // generation-keyed RNG), so steady-state journals must never resume a
    // generational campaign or vice versa. The key is only added in
    // steady-state mode so every previously written generational
    // fingerprint — including the checked-in artifacts — is unchanged.
    if config.mode == CampaignMode::SteadyState {
        fields.push(("mode", Json::String("steady-state".into())));
    }
    Json::object(fields).stable_hash()
}

fn header_json(config: &ExperimentConfig) -> Json {
    Json::object(vec![
        ("type", Json::String("header".into())),
        ("version", Json::Number(JOURNAL_VERSION as f64)),
        ("config", hex_u64(config_fingerprint(config))),
        ("n_runs", Json::Number(config.n_runs as f64)),
        ("pop_size", Json::Number(config.pop_size as f64)),
        ("generations", Json::Number(config.generations as f64)),
        ("master_seed", hex_u64(config.master_seed)),
    ])
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends journal records, flushing each line before returning — the
/// "write-ahead" property: once a record is appended, a driver crash
/// cannot lose it.
pub struct JournalWriter {
    file: File,
    /// Byte offset the next record will be written at. Append methods
    /// return the offset of the record they wrote, so telemetry events can
    /// cross-reference journal entries by position.
    offset: u64,
}

impl JournalWriter {
    /// Create a fresh journal at `path`, writing the header record.
    pub fn create(path: &Path, config: &ExperimentConfig) -> Result<Self, JournalError> {
        let file = File::create(path)
            .map_err(|e| JournalError::new(format!("cannot create {}: {e}", path.display())))?;
        let mut writer = JournalWriter { file, offset: 0 };
        writer.append(&header_json(config));
        Ok(writer)
    }

    /// Reopen an existing journal for appending, first truncating it to
    /// `valid_len` bytes — the valid prefix [`Journal::load`] measured —
    /// so a torn final line from the crash is discarded.
    pub fn open_append(path: &Path, valid_len: u64) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| JournalError::new(format!("cannot open {}: {e}", path.display())))?;
        file.set_len(valid_len)
            .map_err(|e| JournalError::new(format!("cannot truncate journal: {e}")))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| JournalError::new(format!("cannot seek journal: {e}")))?;
        Ok(JournalWriter { file, offset: valid_len })
    }

    /// Append one record, returning the byte offset it was written at.
    /// Panics on I/O failure: a write-ahead journal that silently drops
    /// records is worse than a crashed campaign.
    fn append(&mut self, record: &Json) -> u64 {
        let mut line = record.to_compact();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .expect("journal append failed");
        let at = self.offset;
        self.offset += line.len() as u64;
        at
    }

    /// Append a completed-evaluation record; returns its byte offset.
    pub fn append_eval(&mut self, entry: &EvalEntry) -> u64 {
        self.append(&entry.to_json())
    }

    /// Append a generation-boundary record; returns its byte offset.
    pub fn append_generation(&mut self, entry: &GenEntry) -> u64 {
        self.append(&entry.to_json())
    }
}

/// The journal handle an evaluator carries: where to append, which run it
/// belongs to, and the replay map of already-journaled evaluations.
#[derive(Clone)]
pub struct JournalSink {
    /// Run this sink journals for.
    pub run: usize,
    /// Shared append handle (the experiment loop also writes boundaries).
    pub writer: Rc<RefCell<JournalWriter>>,
    /// Journaled evaluations of this run, keyed `(generation, slot)`.
    pub replay: Rc<HashMap<(usize, usize), EvalEntry>>,
}

impl JournalSink {
    /// A sink with nothing to replay (fresh campaign).
    pub fn fresh(run: usize, writer: Rc<RefCell<JournalWriter>>) -> Self {
        JournalSink { run, writer, replay: Rc::new(HashMap::new()) }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A parsed journal: header metadata plus every valid record, with the
/// byte length of the valid prefix (a torn final line from a crash is
/// tolerated and measured off).
pub struct Journal {
    /// Configuration fingerprint from the header.
    pub config_fingerprint: u64,
    /// Completed evaluations keyed `(run, generation, slot)`.
    pub evals: HashMap<(usize, usize, usize), EvalEntry>,
    /// Generation boundaries keyed `(run, generation)`.
    pub generations: BTreeMap<(usize, usize), GenEntry>,
    /// Byte length of the valid prefix (pass to [`JournalWriter::open_append`]).
    pub valid_len: u64,
}

impl Journal {
    /// Load and validate a journal file.
    pub fn load(path: &Path) -> Result<Journal, JournalError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| JournalError::new(format!("cannot read {}: {e}", path.display())))?;
        let mut journal = Journal {
            config_fingerprint: 0,
            evals: HashMap::new(),
            generations: BTreeMap::new(),
            valid_len: 0,
        };
        let mut offset = 0usize;
        let mut saw_header = false;
        let mut lines = text.split_inclusive('\n').peekable();
        while let Some(line) = lines.next() {
            let is_last = lines.peek().is_none();
            let trimmed = line.trim();
            if trimmed.is_empty() {
                offset += line.len();
                continue;
            }
            // A record is durable only once its trailing newline reached the
            // file: a torn write can end exactly at a parseable boundary, and
            // appending after it would merge two records onto one line.
            if is_last && !line.ends_with('\n') {
                break;
            }
            let parsed: Result<(), JournalError> = Json::parse(trimmed)
                .map_err(|e| JournalError::new(format!("bad JSON at byte {offset}: {e}")))
                .and_then(|record| {
                    match record.get("type").and_then(Json::as_str) {
                        Some("header") => {
                            journal.config_fingerprint =
                                parse_hex_u64(record.get("config"), "config")?;
                            let version = f64_field(&record, "version")? as u64;
                            if version != JOURNAL_VERSION {
                                return Err(JournalError::new(format!(
                                    "journal version {version} != supported {JOURNAL_VERSION}"
                                )));
                            }
                            saw_header = true;
                        }
                        Some("eval") => {
                            let entry = EvalEntry::from_json(&record)?;
                            journal.evals.insert((entry.run, entry.gen, entry.slot), entry);
                        }
                        Some("generation") => {
                            let entry = GenEntry::from_json(&record)?;
                            journal
                                .generations
                                .insert((entry.run, entry.record.generation), entry);
                        }
                        other => {
                            return Err(JournalError::new(format!(
                                "unknown record type {other:?} at byte {offset}"
                            )))
                        }
                    }
                    Ok(())
                });
            match parsed {
                Ok(()) => {
                    offset += line.len();
                    journal.valid_len = offset as u64;
                }
                // A torn final line is the expected signature of a crash
                // mid-append; anything earlier is real corruption.
                Err(_) if is_last => break,
                Err(e) => return Err(e),
            }
        }
        if !saw_header {
            return Err(JournalError::new("journal has no header record"));
        }
        Ok(journal)
    }

    /// Reject the journal if it was written under a different campaign
    /// configuration.
    pub fn check_config(&self, config: &ExperimentConfig) -> Result<(), JournalError> {
        let expected = config_fingerprint(config);
        if self.config_fingerprint != expected {
            return Err(JournalError::new(format!(
                "stale journal: config fingerprint {:#018x} != expected {:#018x} \
                 (the campaign configuration changed since the journal was written)",
                self.config_fingerprint, expected
            )));
        }
        Ok(())
    }

    /// The replay map for one run: journaled evaluations keyed
    /// `(generation, slot)`.
    pub fn replay_for(&self, run: usize) -> HashMap<(usize, usize), EvalEntry> {
        self.evals
            .values()
            .filter(|e| e.run == run)
            .map(|e| ((e.gen, e.slot), e.clone()))
            .collect()
    }

    /// Generation boundaries of one run, ordered by generation. Errors if
    /// the boundaries are not contiguous from 0 (a corrupt journal).
    pub fn boundaries_for(&self, run: usize) -> Result<Vec<&GenEntry>, JournalError> {
        let entries: Vec<&GenEntry> = self
            .generations
            .range((run, 0)..=(run, usize::MAX))
            .map(|(_, e)| e)
            .collect();
        for (i, entry) in entries.iter().enumerate() {
            if entry.record.generation != i {
                return Err(JournalError::new(format!(
                    "run {run}: generation boundaries not contiguous (found {} at index {i})",
                    entry.record.generation
                )));
            }
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluated(genome: Vec<f64>, objectives: Vec<f64>) -> Individual {
        let mut ind = Individual::new(genome);
        ind.fitness = Some(Fitness::new(objectives));
        ind.rank = 1;
        ind.distance = f64::INFINITY;
        ind.eval_minutes = Some(63.25);
        ind
    }

    #[test]
    fn individual_round_trips_including_infinite_distance() {
        let ind = evaluated(vec![0.005, 1e-4, 7.0], vec![0.0016, 0.0357]);
        let j = individual_to_json(&ind);
        let back = individual_from_json(&j).unwrap();
        assert_eq!(back.id, ind.id);
        assert_eq!(back.genome, ind.genome);
        assert_eq!(back.fitness, ind.fitness);
        assert_eq!(back.rank, ind.rank);
        assert_eq!(back.distance, f64::INFINITY);
        assert_eq!(back.eval_minutes, ind.eval_minutes);
        // Serialize → parse → serialize is a fixed point.
        assert_eq!(individual_to_json(&back).to_compact(), j.to_compact());
    }

    #[test]
    fn unevaluated_individual_round_trips() {
        let ind = Individual::new(vec![1.5, -2.0]);
        let back = individual_from_json(&individual_to_json(&ind)).unwrap();
        assert!(back.fitness.is_none());
        assert_eq!(back.rank, usize::MAX);
        assert_eq!(back.eval_minutes, None);
    }

    #[test]
    fn maxint_penalty_round_trips_exactly() {
        let f = Fitness::penalty(2);
        let back = fitness_from_json(&fitness_to_json(&f)).unwrap();
        assert!(back.is_penalty());
        assert_eq!(back, f);
    }

    #[test]
    fn rng_state_round_trips_and_rejects_zero() {
        let state = [0x1234_5678_9abc_def0u64, 42, u64::MAX, 7];
        let back = rng_state_from_json(&rng_state_to_json(state)).unwrap();
        assert_eq!(back, state);
        assert!(rng_state_from_json(&rng_state_to_json([1, 2, 3, 4])).is_ok());
        let zero = Json::Array((0..4).map(|_| hex_u64(0)).collect());
        assert!(rng_state_from_json(&zero).is_err());
    }

    #[test]
    fn eval_entry_round_trips_through_json() {
        let entry = EvalEntry {
            run: 1,
            gen: 3,
            slot: 7,
            seed: 0xdead_beef_0000_0001,
            genome: vec![0.005, 1e-4, 7.0, 2.5, 2.5, 4.5, 4.5],
            fault: FaultKind::None,
            fault_step: None,
            fault_loss: None,
            objectives: Some(vec![0.0016, 0.0357]),
            minutes: 63.25,
            attempts: 2,
            lcurve_tail: vec![LcurveRow {
                step: 50,
                rmse_e_val: 0.0016,
                rmse_e_trn: 0.002,
                rmse_f_val: 0.0357,
                rmse_f_trn: 0.04,
                lr: 1e-5,
            }],
            arrival: None,
        };
        let j = entry.to_json();
        let back = EvalEntry::from_json(&j).unwrap();
        assert_eq!(back.genome, entry.genome);
        assert_eq!(back.objectives, entry.objectives);
        assert_eq!(back.seed, entry.seed);
        assert_eq!(back.lcurve_tail, entry.lcurve_tail);
        assert_eq!(back.to_json().to_compact(), j.to_compact());
    }

    #[test]
    fn faulted_entry_without_objectives_is_valid_but_success_is_not() {
        let mut entry = EvalEntry {
            run: 0,
            gen: 0,
            slot: 0,
            seed: 1,
            genome: vec![1.0],
            fault: FaultKind::Worker,
            fault_step: None,
            fault_loss: None,
            objectives: None,
            minutes: 0.0,
            attempts: 3,
            lcurve_tail: Vec::new(),
            arrival: None,
        };
        assert!(EvalEntry::from_json(&entry.to_json()).is_ok());
        entry.fault = FaultKind::None;
        assert!(EvalEntry::from_json(&entry.to_json()).is_err());
    }

    #[test]
    fn torn_final_line_is_tolerated_and_measured_off() {
        let config = ExperimentConfig::smoke();
        let dir = std::env::temp_dir().join(format!("dphpo-journal-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("torn.jsonl");
        {
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            writer.append_eval(&EvalEntry {
                run: 0,
                gen: 0,
                slot: 0,
                seed: 9,
                genome: vec![1.0, 2.0],
                fault: FaultKind::Diverged,
                fault_step: None,
                fault_loss: None,
                objectives: None,
                minutes: 0.1,
                attempts: 1,
                lcurve_tail: Vec::new(),
                arrival: None,
            });
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: a torn, unparseable final line.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"type\":\"eval\",\"run\":0,\"gen\":0,\"sl").unwrap();
        drop(f);

        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.valid_len, full_len);
        assert_eq!(journal.evals.len(), 1);
        journal.check_config(&config).unwrap();

        // A different configuration is rejected as stale.
        let mut other = ExperimentConfig::smoke();
        other.master_seed += 1;
        assert!(journal.check_config(&other).is_err());

        // Reopening for append truncates the torn tail.
        drop(JournalWriter::open_append(&path, journal.valid_len).unwrap());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parseable_final_line_without_newline_is_dropped() {
        let config = ExperimentConfig::smoke();
        let dir =
            std::env::temp_dir().join(format!("dphpo-journal-nonl-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("nonl.jsonl");
        let entry = EvalEntry {
            run: 0,
            gen: 0,
            slot: 0,
            seed: 9,
            genome: vec![1.0, 2.0],
            fault: FaultKind::Diverged,
            fault_step: None,
            fault_loss: None,
            objectives: None,
            minutes: 0.1,
            attempts: 1,
            lcurve_tail: Vec::new(),
            arrival: None,
        };
        drop(JournalWriter::create(&path, &config).unwrap());
        let header_len = std::fs::metadata(&path).unwrap().len();
        // A torn write can end exactly at a record boundary: the line parses,
        // but without its newline it is not durable and must be dropped, or
        // the next append would merge two records onto one line.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(entry.to_json().to_compact().as_bytes()).unwrap();
        drop(f);

        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.evals.len(), 0);
        assert_eq!(journal.valid_len, header_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_returns_the_records_byte_offset() {
        let config = ExperimentConfig::smoke();
        let dir =
            std::env::temp_dir().join(format!("dphpo-journal-off-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("offsets.jsonl");
        let entry = EvalEntry {
            run: 0,
            gen: 0,
            slot: 0,
            seed: 9,
            genome: vec![1.0, 2.0],
            fault: FaultKind::Diverged,
            fault_step: None,
            fault_loss: None,
            objectives: None,
            minutes: 0.1,
            attempts: 1,
            lcurve_tail: Vec::new(),
            arrival: None,
        };
        let (first, second) = {
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            (writer.append_eval(&entry), writer.append_eval(&entry))
        };
        // The first record starts right after the header; the second right
        // after the first — and both match what is actually on disk.
        let text = std::fs::read_to_string(&path).unwrap();
        let header_len = text.lines().next().unwrap().len() as u64 + 1;
        assert_eq!(first, header_len);
        assert_eq!(second, header_len + (second - first));
        // The slice at the returned offset is exactly the record's line.
        let line_at_first = text[first as usize..].lines().next().unwrap();
        assert_eq!(line_at_first, entry.to_json().to_compact());
        assert_eq!(second + (second - first), text.len() as u64);

        // Reopening for append continues from the valid length.
        let journal = Journal::load(&path).unwrap();
        let third = JournalWriter::open_append(&path, journal.valid_len)
            .unwrap()
            .append_eval(&entry);
        assert_eq!(third, text.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_before_the_final_line_is_an_error() {
        let dir = std::env::temp_dir().join(format!("dphpo-journal-mid-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("corrupt.jsonl");
        let config = ExperimentConfig::smoke();
        let header = header_json(&config).to_compact();
        std::fs::write(&path, format!("{header}\nnot json at all\n{header}\n")).unwrap();
        assert!(Journal::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_campaign_knob() {
        let base = ExperimentConfig::smoke();
        let f0 = config_fingerprint(&base);
        let mut c = base.clone();
        c.master_seed = 8;
        assert_ne!(config_fingerprint(&c), f0);
        let mut c = base.clone();
        c.pop_size += 1;
        assert_ne!(config_fingerprint(&c), f0);
        let mut c = base.clone();
        c.fault_probability = 0.5;
        assert_ne!(config_fingerprint(&c), f0);
        let mut c = base.clone();
        c.base_train_config.num_steps += 1;
        assert_ne!(config_fingerprint(&c), f0);
        let mut c = base.clone();
        c.gen_config.n_atoms += 10;
        assert_ne!(config_fingerprint(&c), f0);
        let mut c = base.clone();
        c.mode = CampaignMode::SteadyState;
        assert_ne!(config_fingerprint(&c), f0);
        assert_eq!(config_fingerprint(&base.clone()), f0);
    }

    #[test]
    fn arrival_index_round_trips_and_is_absent_from_generational_bytes() {
        let mut entry = EvalEntry {
            run: 0,
            gen: 0,
            slot: 5,
            seed: 9,
            genome: vec![1.0, 2.0],
            fault: FaultKind::None,
            fault_step: None,
            fault_loss: None,
            objectives: Some(vec![0.1, 0.2]),
            minutes: 1.5,
            attempts: 1,
            lcurve_tail: Vec::new(),
            arrival: None,
        };
        // Generational entries must not grow a key: old readers and the
        // checked-in journal bytes both depend on the exact encoding.
        assert!(!entry.to_json().to_compact().contains("arrival"));
        entry.arrival = Some(17);
        let line = entry.to_json().to_compact();
        assert!(line.contains("\"arrival\":17"));
        let back = EvalEntry::from_json(&entry.to_json()).unwrap();
        assert_eq!(back.arrival, Some(17));
        assert_eq!(back.to_json().to_compact(), line);
    }

    #[test]
    fn steady_and_generational_journals_reject_each_other() {
        let generational = ExperimentConfig::smoke();
        let mut steady = ExperimentConfig::smoke();
        steady.mode = CampaignMode::SteadyState;
        let dir =
            std::env::temp_dir().join(format!("dphpo-journal-mode-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        for (write_as, resume_as) in
            [(&generational, &steady), (&steady, &generational)]
        {
            let path = dir.join("mode.jsonl");
            drop(JournalWriter::create(&path, write_as).unwrap());
            let journal = Journal::load(&path).unwrap();
            journal.check_config(write_as).unwrap();
            let err = journal.check_config(resume_as).unwrap_err();
            assert!(err.to_string().contains("stale journal"), "{err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
