//! The write-ahead evaluation journal: crash-safe, bit-identically
//! resumable experiment campaigns.
//!
//! Every completed evaluation (genome, seed, fitness, wall-minutes, fault
//! flags, `lcurve.out` tail) and every generation boundary (population, RNG
//! stream state, mutation σ, Pareto archive, scheduler report) is appended
//! *before* the campaign moves on — one framed record per line, flushed per
//! record, via the in-repo [`Json`] codec. If the driver dies mid-campaign,
//! `resume` replays the journaled records instead of retraining, re-submits
//! only the missing tasks to the worker pool, and continues to a result
//! **bit-identical** to an uninterrupted run.
//!
//! # Framing (format v2)
//!
//! Each line is a checksummed frame (DESIGN.md §13):
//!
//! ```text
//! J2 <seq:08x> <len:08x> <crc:08x> <payload-json>\n
//! ```
//!
//! `seq` is a monotonic frame sequence number (the header is frame 0),
//! `len` the payload's byte length, and `crc` the CRC-32 (IEEE) of the
//! payload bytes. Readers therefore detect corruption *anywhere* in the
//! file — a flipped bit, a truncated middle, an overwritten region — not
//! just a torn tail. [`Journal::load`] refuses a damaged file; [`salvage`]
//! truncates it at the first bad frame, quarantines the trailing bytes to
//! `<journal>.quarantine`, and leaves a journal that resumes
//! deterministically from the last intact record. Unframed v1 journals
//! (plain JSONL) are still read by a compatibility scanner and upgraded to
//! v2 in place on the first resume.
//!
//! Steady-state campaigns additionally append self-contained **snapshot**
//! records at epoch-window boundaries (population, mutation σ, pending
//! queue, archive, slot cursors, per-epoch accumulators), so resume
//! restores the latest snapshot and replays only the arrival suffix after
//! it — O(window) work instead of O(campaign). [`compact`] rewrites a
//! journal down to that suffix. (Generational journals need no extra
//! record: every generation boundary already *is* a self-contained
//! snapshot.)
//!
//! # Determinism contract
//!
//! The resumed campaign equals the uninterrupted one because every source
//! of randomness is restored or re-derived exactly (see DESIGN.md §7 for
//! the field-by-field schema):
//!
//! 1. **EA stream** — each generation boundary stores the xoshiro256++
//!    state ([`rand::rngs::StdRng::state`]); resume rebuilds the generator
//!    with `from_state` so offspring of the next generation are
//!    regenerated bit-identically.
//! 2. **Training seeds** — per-evaluation seeds are pure functions of
//!    `(run seed, generation × population + slot)`
//!    ([`crate::workflow::derive_seed`]), independent of scheduling order.
//! 3. **Fault decisions** — worker deaths hash `(seed, generation, task,
//!    attempt)` ([`dphpo_hpc::FaultInjector`]), so an interrupted and an
//!    uninterrupted campaign see the same fault pattern.
//! 4. **Replay** — journaled evaluations are matched by `(run, generation,
//!    slot)` *and* a bit-exact genome comparison; a hit short-circuits
//!    training and returns the journaled outcome verbatim.
//! 5. **Steady-state campaigns** additionally journal each evaluation's
//!    `arrival` index — the position at which the population consumed it.
//!    All steady-state RNG draws are keyed off `(run seed, arrival)`, so
//!    the journaled arrival order fully determines population and archive
//!    bytes regardless of live thread interleaving (DESIGN.md §12).
//!
//! Journals additionally carry a fingerprint of the campaign configuration
//! ([`config_fingerprint`]); resuming under a changed configuration is
//! rejected rather than silently producing a chimera.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use dphpo_dnnp::{Json, LcurveRow};
use dphpo_evo::nsga2::GenerationRecord;
use dphpo_evo::{Fitness, Id, Individual};
use dphpo_hpc::faultplan::{IoFault, IoSite, JOURNAL_APPEND_SITE};
use dphpo_hpc::{EvalFault, EvalOutcome, PoolReport, StreamSlotsState, TaskError, TaskRecord};

use crate::campaign_report::{json_of_row, row_from_json, GenStatus};
use crate::experiment::{CampaignMode, ExperimentConfig};
use crate::workflow::EvalRecord;

/// Journal format version; bumped on any schema change. Version 2 added
/// the CRC frame layer, snapshot records, and deterministic individual
/// ids; version 1 files are still readable (and are upgraded in place on
/// the first resume).
pub const JOURNAL_VERSION: u64 = 2;

/// Journal parse/validation failure, with enough context to diagnose a
/// corrupt or stale file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalError {
    /// Human-readable description.
    pub message: String,
}

impl JournalError {
    fn new(message: impl Into<String>) -> Self {
        JournalError { message: message.into() }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal error: {}", self.message)
    }
}

impl std::error::Error for JournalError {}

// ---------------------------------------------------------------------------
// Frame layer (format v2): `J2 <seq:08x> <len:08x> <crc:08x> <payload>\n`
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected polynomial 0xedb88320) lookup table,
/// built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the checksum carried by every v2 frame.
/// Standard parameters: init and xorout `0xffffffff`, reflected. The
/// check value of `b"123456789"` is `0xcbf43926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Byte length of the v2 frame prefix:
/// `"J2 "` + 8 hex (seq) + `" "` + 8 hex (len) + `" "` + 8 hex (crc) + `" "`.
pub const FRAME_PREFIX_LEN: usize = 30;

/// Render one framed journal line. The payload must be newline-free
/// (compact JSON always is).
pub fn frame_line(seq: u64, payload: &str) -> String {
    debug_assert!(!payload.contains('\n'), "frame payloads are single-line");
    format!(
        "J2 {:08x} {:08x} {:08x} {}\n",
        seq,
        payload.len(),
        crc32(payload.as_bytes()),
        payload
    )
}

/// Parse one frame body (a line *without* its trailing newline), checking
/// the prefix shape, the sequence number against `expected_seq`, the
/// declared length, and the CRC. Returns the payload slice.
pub fn parse_frame(body: &str, expected_seq: u64) -> Result<&str, JournalError> {
    let bytes = body.as_bytes();
    if bytes.len() < FRAME_PREFIX_LEN {
        return Err(JournalError::new("frame shorter than its prefix"));
    }
    // An ASCII prefix guarantees every index below is a char boundary.
    if !bytes[..FRAME_PREFIX_LEN].is_ascii() {
        return Err(JournalError::new("frame prefix is not ASCII"));
    }
    if &body[..3] != "J2 " || bytes[11] != b' ' || bytes[20] != b' ' || bytes[29] != b' ' {
        return Err(JournalError::new("malformed frame prefix"));
    }
    let hex = |range: std::ops::Range<usize>, what: &str| {
        // Lowercase-only: `from_str_radix` would also accept uppercase,
        // letting a case-flipped byte (`'a' ^ 0x20 == 'A'`) slip through
        // undetected. The writer only ever emits lowercase.
        let field = &body[range];
        if !field.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return Err(JournalError::new(format!("frame {what} field is not lowercase hex")));
        }
        u64::from_str_radix(field, 16)
            .map_err(|_| JournalError::new(format!("frame {what} field is not hex")))
    };
    let seq = hex(3..11, "seq")?;
    let len = hex(12..20, "len")?;
    let crc = hex(21..29, "crc")? as u32;
    if seq != expected_seq {
        return Err(JournalError::new(format!(
            "frame sequence {seq} != expected {expected_seq}"
        )));
    }
    let payload = &body[FRAME_PREFIX_LEN..];
    if payload.len() as u64 != len {
        return Err(JournalError::new(format!(
            "frame length {len} != payload length {}",
            payload.len()
        )));
    }
    let actual = crc32(payload.as_bytes());
    if actual != crc {
        return Err(JournalError::new(format!(
            "frame crc {crc:08x} != computed {actual:08x}"
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Low-level JSON helpers
// ---------------------------------------------------------------------------

fn hex_u64(v: u64) -> Json {
    Json::String(format!("{v:#018x}"))
}

fn parse_hex_u64(j: Option<&Json>, what: &str) -> Result<u64, JournalError> {
    let s = j
        .and_then(Json::as_str)
        .ok_or_else(|| JournalError::new(format!("missing hex field '{what}'")))?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| JournalError::new(format!("field '{what}' is not 0x-prefixed: {s}")))?;
    u64::from_str_radix(digits, 16)
        .map_err(|_| JournalError::new(format!("field '{what}' is not hex: {s}")))
}

fn numbers(xs: &[f64]) -> Json {
    Json::Array(xs.iter().copied().map(Json::Number).collect())
}

fn f64_field(j: &Json, key: &str) -> Result<f64, JournalError> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| JournalError::new(format!("missing numeric field '{key}'")))
}

fn usize_field(j: &Json, key: &str) -> Result<usize, JournalError> {
    Ok(f64_field(j, key)? as usize)
}

fn array_field<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], JournalError> {
    match j.get(key) {
        Some(Json::Array(items)) => Ok(items),
        _ => Err(JournalError::new(format!("missing array field '{key}'"))),
    }
}

fn f64_array(j: &Json, key: &str) -> Result<Vec<f64>, JournalError> {
    array_field(j, key)?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| JournalError::new(format!("non-numeric entry in '{key}'")))
        })
        .collect()
}

/// Crowding distances on front boundaries are `+inf` (and a diverged loss
/// may be `NaN`), which JSON cannot express as number literals — encode
/// non-finite values as strings.
fn json_of_f64_or_inf(v: f64) -> Json {
    if v.is_finite() {
        Json::Number(v)
    } else if v.is_nan() {
        Json::String("nan".into())
    } else if v > 0.0 {
        Json::String("inf".into())
    } else {
        Json::String("-inf".into())
    }
}

fn f64_or_inf_field(j: &Json, key: &str) -> Result<f64, JournalError> {
    match j.get(key) {
        Some(Json::Number(v)) => Ok(*v),
        Some(Json::String(s)) if s == "inf" => Ok(f64::INFINITY),
        Some(Json::String(s)) if s == "-inf" => Ok(f64::NEG_INFINITY),
        Some(Json::String(s)) if s == "nan" => Ok(f64::NAN),
        _ => Err(JournalError::new(format!("missing float field '{key}'"))),
    }
}

// ---------------------------------------------------------------------------
// Serde for the domain types (also exercised by the round-trip tests)
// ---------------------------------------------------------------------------

/// Serialise a fitness vector (objectives only; `MAXINT` penalties are
/// large finite numbers and round-trip exactly).
pub fn fitness_to_json(f: &Fitness) -> Json {
    numbers(f.values())
}

/// Parse a fitness vector.
pub fn fitness_from_json(j: &Json) -> Result<Fitness, JournalError> {
    match j {
        Json::Array(items) => {
            let values: Result<Vec<f64>, _> = items
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| JournalError::new("non-numeric objective"))
                })
                .collect();
            let values = values?;
            if values.iter().any(|v| v.is_nan()) {
                return Err(JournalError::new("NaN objective in journal"));
            }
            Ok(Fitness::new(values))
        }
        _ => Err(JournalError::new("fitness must be an array")),
    }
}

/// Serialise an individual: identity, genome, evaluation state, and the
/// sort metadata (rank / crowding distance) that selection derived.
pub fn individual_to_json(ind: &Individual) -> Json {
    Json::object(vec![
        ("id", hex_u64(ind.id.raw())),
        ("genome", numbers(&ind.genome)),
        (
            "fitness",
            match &ind.fitness {
                Some(f) => fitness_to_json(f),
                None => Json::Null,
            },
        ),
        (
            "rank",
            if ind.rank == usize::MAX { Json::Null } else { Json::Number(ind.rank as f64) },
        ),
        ("distance", json_of_f64_or_inf(ind.distance)),
        ("minutes", ind.eval_minutes.map_or(Json::Null, Json::Number)),
    ])
}

/// Parse an individual. The restored id is registered with
/// [`Id::advance_past`] so freshly allocated ids never collide with it.
pub fn individual_from_json(j: &Json) -> Result<Individual, JournalError> {
    let raw = parse_hex_u64(j.get("id"), "id")?;
    Id::advance_past(raw);
    let fitness = match j.get("fitness") {
        None | Some(Json::Null) => None,
        Some(f) => Some(fitness_from_json(f)?),
    };
    let rank = match j.get("rank") {
        None | Some(Json::Null) => usize::MAX,
        Some(v) => v
            .as_f64()
            .ok_or_else(|| JournalError::new("non-numeric 'rank'"))? as usize,
    };
    let eval_minutes = match j.get("minutes") {
        None | Some(Json::Null) => None,
        Some(v) => {
            Some(v.as_f64().ok_or_else(|| JournalError::new("non-numeric 'minutes'"))?)
        }
    };
    Ok(Individual {
        id: Id::from_raw(raw),
        genome: f64_array(j, "genome")?,
        fitness,
        rank,
        distance: f64_or_inf_field(j, "distance")?,
        eval_minutes,
    })
}

/// Serialise a xoshiro256++ state snapshot as four hex words.
pub fn rng_state_to_json(state: [u64; 4]) -> Json {
    Json::Array(state.iter().map(|&w| hex_u64(w)).collect())
}

/// Parse a [`rng_state_to_json`] snapshot.
pub fn rng_state_from_json(j: &Json) -> Result<[u64; 4], JournalError> {
    let items = match j {
        Json::Array(items) if items.len() == 4 => items,
        _ => return Err(JournalError::new("rng state must be a 4-element array")),
    };
    let mut state = [0u64; 4];
    for (slot, item) in state.iter_mut().zip(items) {
        *slot = parse_hex_u64(Some(item), "rng word")?;
    }
    if state.iter().all(|&w| w == 0) {
        return Err(JournalError::new("all-zero rng state"));
    }
    Ok(state)
}

fn lcurve_row_to_json(r: &LcurveRow) -> Json {
    numbers(&[r.step as f64, r.rmse_e_val, r.rmse_e_trn, r.rmse_f_val, r.rmse_f_trn, r.lr])
}

fn lcurve_row_from_json(j: &Json) -> Result<LcurveRow, JournalError> {
    let v = match j {
        Json::Array(items) if items.len() == 6 => items
            .iter()
            .map(|x| x.as_f64().ok_or_else(|| JournalError::new("non-numeric lcurve entry")))
            .collect::<Result<Vec<f64>, _>>()?,
        _ => return Err(JournalError::new("lcurve row must be a 6-element array")),
    };
    Ok(LcurveRow {
        step: v[0] as usize,
        rmse_e_val: v[1],
        rmse_e_trn: v[2],
        rmse_f_val: v[3],
        rmse_f_trn: v[4],
        lr: v[5],
    })
}

/// Serialise the *deterministic* fields of a pool report. The two fields
/// that depend on physical thread races — `quarantined_workers`, and
/// `heartbeats` under speculation — are intentionally not journaled, so a
/// resumed campaign's reports stay bit-identical to an uninterrupted run's.
fn report_to_json(r: &PoolReport) -> Json {
    Json::object(vec![
        ("makespan", Json::Number(r.makespan_minutes)),
        ("per_worker", numbers(&r.per_worker_minutes)),
        ("deaths", Json::Number(r.worker_deaths as f64)),
        ("retried", Json::Number(r.retried_tasks as f64)),
        ("diverged", Json::Number(r.diverged_tasks as f64)),
        ("timeout", Json::Number(r.timeout_tasks as f64)),
        ("cancelled", Json::Number(r.cancelled_tasks as f64)),
        ("exhausted", Json::Number(r.exhausted_tasks as f64)),
        ("speculated", Json::Number(r.speculated_tasks as f64)),
        ("spec_deaths", Json::Number(r.speculative_deaths as f64)),
        ("lost_minutes", Json::Number(r.lost_minutes)),
        ("backoff_minutes", Json::Number(r.backoff_minutes)),
        ("busy", numbers(&r.busy_minutes)),
        ("lost_death", numbers(&r.lost_death_minutes)),
        ("lost_spec", numbers(&r.lost_speculation_minutes)),
        ("backoff_slot", numbers(&r.backoff_slot_minutes)),
        ("idle", numbers(&r.idle_minutes)),
        ("wall", Json::Number(r.wall_minutes)),
    ])
}

/// Optional numeric field (absent in journals written before the
/// supervision runtime existed): missing means zero.
fn opt_usize_field(j: &Json, key: &str) -> usize {
    j.get(key).and_then(Json::as_f64).map_or(0, |v| v as usize)
}

fn opt_f64_field(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Optional numeric array (absent in journals written before utilization
/// accounting existed): missing means empty.
fn opt_f64_array(j: &Json, key: &str) -> Vec<f64> {
    f64_array(j, key).unwrap_or_default()
}

fn report_from_json(j: &Json) -> Result<PoolReport, JournalError> {
    Ok(PoolReport {
        makespan_minutes: f64_field(j, "makespan")?,
        per_worker_minutes: f64_array(j, "per_worker")?,
        worker_deaths: usize_field(j, "deaths")?,
        retried_tasks: usize_field(j, "retried")?,
        diverged_tasks: opt_usize_field(j, "diverged"),
        timeout_tasks: opt_usize_field(j, "timeout"),
        cancelled_tasks: opt_usize_field(j, "cancelled"),
        exhausted_tasks: opt_usize_field(j, "exhausted"),
        speculated_tasks: opt_usize_field(j, "speculated"),
        speculative_deaths: opt_usize_field(j, "spec_deaths"),
        lost_minutes: opt_f64_field(j, "lost_minutes"),
        backoff_minutes: opt_f64_field(j, "backoff_minutes"),
        busy_minutes: opt_f64_array(j, "busy"),
        lost_death_minutes: opt_f64_array(j, "lost_death"),
        lost_speculation_minutes: opt_f64_array(j, "lost_spec"),
        backoff_slot_minutes: opt_f64_array(j, "backoff_slot"),
        idle_minutes: opt_f64_array(j, "idle"),
        wall_minutes: opt_f64_field(j, "wall"),
        ..PoolReport::default()
    })
}

// ---------------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------------

/// How a journaled evaluation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Training completed and produced a finite fitness.
    None,
    /// Training diverged or the configuration was invalid (MAXINT).
    Diverged,
    /// The simulated runtime exceeded the per-task limit (MAXINT).
    Timeout,
    /// The hosting worker died and attempts were exhausted (MAXINT).
    Worker,
    /// The evaluation was externally cancelled (MAXINT).
    Cancelled,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::Diverged => "diverged",
            FaultKind::Timeout => "timeout",
            FaultKind::Worker => "worker",
            FaultKind::Cancelled => "cancelled",
        }
    }

    fn parse(s: &str) -> Result<Self, JournalError> {
        match s {
            "none" => Ok(FaultKind::None),
            "diverged" => Ok(FaultKind::Diverged),
            "timeout" => Ok(FaultKind::Timeout),
            "worker" => Ok(FaultKind::Worker),
            "cancelled" => Ok(FaultKind::Cancelled),
            _ => Err(JournalError::new(format!("unknown fault kind '{s}'"))),
        }
    }
}

/// One completed evaluation, as journaled the moment the scheduler
/// finalised it.
#[derive(Clone, Debug)]
pub struct EvalEntry {
    /// Experiment run index.
    pub run: usize,
    /// Generation whose batch contained the task.
    pub gen: usize,
    /// Slot (task index) within the generation's batch.
    pub slot: usize,
    /// Derived training seed (informational; replay never retrains).
    pub seed: u64,
    /// The evaluated genome, bit-exact.
    pub genome: Vec<f64>,
    /// How the evaluation ended.
    pub fault: FaultKind,
    /// For [`FaultKind::Diverged`] with a structured sentinel abort: the
    /// training step at which divergence was detected.
    pub fault_step: Option<usize>,
    /// For [`FaultKind::Diverged`] with a structured sentinel abort: the
    /// offending loss (may be non-finite).
    pub fault_loss: Option<f64>,
    /// Objective values — present iff `fault == FaultKind::None`.
    pub objectives: Option<Vec<f64>>,
    /// Simulated minutes charged (timeouts charge the full limit).
    pub minutes: f64,
    /// Scheduler attempts consumed (1 = no retries).
    pub attempts: u32,
    /// Tail of the training curve (empty on failure).
    pub lcurve_tail: Vec<LcurveRow>,
    /// Steady-state arrival index this evaluation was consumed at — the
    /// journaled arrival order that fully determines population and archive
    /// bytes (DESIGN.md §12). `None` for generational entries, whose order
    /// is already fixed by `(gen, slot)`; the key is omitted from the JSON
    /// encoding so generational journal bytes are unchanged.
    pub arrival: Option<usize>,
}

impl EvalEntry {
    /// Build the journal entry for a finalised scheduler record.
    pub fn from_task(
        run: usize,
        gen: usize,
        slot: usize,
        seed: u64,
        genome: &[f64],
        task: &TaskRecord<EvalRecord>,
    ) -> Self {
        let mut fault_step = None;
        let mut fault_loss = None;
        let (fault, objectives, lcurve_tail) = match &task.value {
            Ok(record) => (
                FaultKind::None,
                Some(record.fitness.values().to_vec()),
                record.lcurve_tail.clone(),
            ),
            Err(TaskError::Failed(_)) => (FaultKind::Diverged, None, Vec::new()),
            Err(TaskError::Diverged { step, loss }) => {
                fault_step = Some(*step);
                fault_loss = Some(*loss);
                (FaultKind::Diverged, None, Vec::new())
            }
            Err(TaskError::Timeout { .. }) => (FaultKind::Timeout, None, Vec::new()),
            Err(TaskError::WorkerFailed) => (FaultKind::Worker, None, Vec::new()),
            // Cancelled terminals are rare (a task whose only result was an
            // externally cancelled attempt); Speculated is never terminal
            // but gets a defensive mapping rather than a panic.
            Err(TaskError::Cancelled) | Err(TaskError::Speculated) => {
                (FaultKind::Cancelled, None, Vec::new())
            }
        };
        EvalEntry {
            run,
            gen,
            slot,
            seed,
            genome: genome.to_vec(),
            fault,
            fault_step,
            fault_loss,
            objectives,
            minutes: task.minutes,
            attempts: task.attempts,
            lcurve_tail,
            arrival: None,
        }
    }

    /// Reconstruct the pool-level outcome this entry recorded, so replay
    /// can short-circuit training. Successful entries rebuild the full
    /// [`EvalRecord`]; faulted entries return an evaluation error that the
    /// evaluator maps to the same MAXINT penalty the original run saw.
    pub fn to_outcome(&self) -> EvalOutcome<EvalRecord> {
        let fault = match (&self.fault, &self.objectives) {
            (FaultKind::None, Some(objectives)) => {
                return EvalOutcome {
                    value: Ok(EvalRecord {
                        fitness: Fitness::new(objectives.clone()),
                        minutes: self.minutes,
                        failed: false,
                        lcurve_tail: self.lcurve_tail.clone(),
                    }),
                    minutes: self.minutes,
                }
            }
            (FaultKind::Diverged, _) => match (self.fault_step, self.fault_loss) {
                (Some(step), Some(loss)) => EvalFault::Diverged { step, loss },
                _ => EvalFault::Failed(format!("replayed {} fault", self.fault.name())),
            },
            // A replayed timeout carries minutes equal to the limit, so the
            // scheduler's post-hoc `minutes > limit` check cannot re-fire;
            // the structured Deadline fault restores the Timeout error.
            (FaultKind::Timeout, _) => EvalFault::Deadline,
            (FaultKind::Cancelled, _) => EvalFault::Cancelled,
            _ => EvalFault::Failed(format!("replayed {} fault", self.fault.name())),
        };
        EvalOutcome { value: Err(fault), minutes: self.minutes }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("type", Json::String("eval".into())),
            ("run", Json::Number(self.run as f64)),
            ("gen", Json::Number(self.gen as f64)),
            ("slot", Json::Number(self.slot as f64)),
            ("seed", hex_u64(self.seed)),
            ("genome", numbers(&self.genome)),
            ("fault", Json::String(self.fault.name().into())),
            (
                "fault_step",
                self.fault_step.map_or(Json::Null, |s| Json::Number(s as f64)),
            ),
            (
                "fault_loss",
                self.fault_loss.map_or(Json::Null, json_of_f64_or_inf),
            ),
            (
                "objectives",
                match &self.objectives {
                    Some(o) => numbers(o),
                    None => Json::Null,
                },
            ),
            ("minutes", Json::Number(self.minutes)),
            ("attempts", Json::Number(self.attempts as f64)),
            (
                "lcurve_tail",
                Json::Array(self.lcurve_tail.iter().map(lcurve_row_to_json).collect()),
            ),
        ];
        // Generational entries omit the key entirely (not `null`) so their
        // journal bytes predate-and-postdate this field identically.
        if let Some(arrival) = self.arrival {
            fields.push(("arrival", Json::Number(arrival as f64)));
        }
        Json::object(fields)
    }

    fn from_json(j: &Json) -> Result<Self, JournalError> {
        let fault = FaultKind::parse(
            j.get("fault")
                .and_then(Json::as_str)
                .ok_or_else(|| JournalError::new("missing 'fault'"))?,
        )?;
        let objectives = match j.get("objectives") {
            None | Some(Json::Null) => None,
            Some(_) => Some(f64_array(j, "objectives")?),
        };
        if fault == FaultKind::None && objectives.is_none() {
            return Err(JournalError::new("successful eval entry without objectives"));
        }
        let fault_step = match j.get("fault_step") {
            None | Some(Json::Null) => None,
            Some(_) => Some(usize_field(j, "fault_step")?),
        };
        let fault_loss = match j.get("fault_loss") {
            None | Some(Json::Null) => None,
            Some(_) => Some(f64_or_inf_field(j, "fault_loss")?),
        };
        Ok(EvalEntry {
            run: usize_field(j, "run")?,
            gen: usize_field(j, "gen")?,
            slot: usize_field(j, "slot")?,
            seed: parse_hex_u64(j.get("seed"), "seed")?,
            genome: f64_array(j, "genome")?,
            fault,
            fault_step,
            fault_loss,
            objectives,
            minutes: f64_field(j, "minutes")?,
            attempts: usize_field(j, "attempts")? as u32,
            lcurve_tail: array_field(j, "lcurve_tail")?
                .iter()
                .map(lcurve_row_from_json)
                .collect::<Result<_, _>>()?,
            arrival: match j.get("arrival") {
                None | Some(Json::Null) => None,
                Some(_) => Some(usize_field(j, "arrival")?),
            },
        })
    }
}

/// One generation boundary: everything needed to restore the EA mid-run.
#[derive(Clone, Debug)]
pub struct GenEntry {
    /// Experiment run index.
    pub run: usize,
    /// The completed generation's record (population, failures).
    pub record: GenerationRecord,
    /// Mutation σ *after* this generation's annealing (the σ the next
    /// generation will mutate with).
    pub std: Vec<f64>,
    /// Cumulative fitness evaluations in this run.
    pub evaluations: usize,
    /// EA stream state after this generation completed.
    pub rng_state: [u64; 4],
    /// Pareto-archive members at this boundary.
    pub archive: Vec<Individual>,
    /// Scheduler report for this generation's batch.
    pub report: PoolReport,
}

impl GenEntry {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("type", Json::String("generation".into())),
            ("run", Json::Number(self.run as f64)),
            ("gen", Json::Number(self.record.generation as f64)),
            ("failures", Json::Number(self.record.failures as f64)),
            ("evaluations", Json::Number(self.evaluations as f64)),
            ("std", numbers(&self.std)),
            ("rng", rng_state_to_json(self.rng_state)),
            (
                "population",
                Json::Array(self.record.population.iter().map(individual_to_json).collect()),
            ),
            (
                "archive",
                Json::Array(self.archive.iter().map(individual_to_json).collect()),
            ),
            ("report", report_to_json(&self.report)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, JournalError> {
        Ok(GenEntry {
            run: usize_field(j, "run")?,
            record: GenerationRecord {
                generation: usize_field(j, "gen")?,
                failures: usize_field(j, "failures")?,
                population: array_field(j, "population")?
                    .iter()
                    .map(individual_from_json)
                    .collect::<Result<_, _>>()?,
            },
            std: f64_array(j, "std")?,
            evaluations: usize_field(j, "evaluations")?,
            rng_state: rng_state_from_json(
                j.get("rng").ok_or_else(|| JournalError::new("missing 'rng'"))?,
            )?,
            archive: array_field(j, "archive")?
                .iter()
                .map(individual_from_json)
                .collect::<Result<_, _>>()?,
            report: report_from_json(
                j.get("report").ok_or_else(|| JournalError::new("missing 'report'"))?,
            )?,
        })
    }
}

fn generation_record_to_json(r: &GenerationRecord) -> Json {
    Json::object(vec![
        ("gen", Json::Number(r.generation as f64)),
        ("failures", Json::Number(r.failures as f64)),
        (
            "population",
            Json::Array(r.population.iter().map(individual_to_json).collect()),
        ),
    ])
}

fn generation_record_from_json(j: &Json) -> Result<GenerationRecord, JournalError> {
    Ok(GenerationRecord {
        generation: usize_field(j, "gen")?,
        failures: usize_field(j, "failures")?,
        population: array_field(j, "population")?
            .iter()
            .map(individual_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn slots_state_to_json(s: &StreamSlotsState) -> Json {
    Json::object(vec![
        ("busy", numbers(&s.busy)),
        ("lost", numbers(&s.lost)),
        ("backoff", numbers(&s.backoff)),
        ("deaths", Json::Number(s.deaths as f64)),
        ("retried", Json::Number(s.retried as f64)),
        ("diverged", Json::Number(s.diverged as f64)),
        ("timeout", Json::Number(s.timeout as f64)),
        ("cancelled", Json::Number(s.cancelled as f64)),
        ("exhausted", Json::Number(s.exhausted as f64)),
        ("base_busy", numbers(&s.baseline_busy)),
        ("base_lost", numbers(&s.baseline_lost)),
        ("base_backoff", numbers(&s.baseline_backoff)),
        ("base_deaths", Json::Number(s.baseline_deaths as f64)),
        ("base_retried", Json::Number(s.baseline_retried as f64)),
        ("base_diverged", Json::Number(s.baseline_diverged as f64)),
        ("base_timeout", Json::Number(s.baseline_timeout as f64)),
        ("base_cancelled", Json::Number(s.baseline_cancelled as f64)),
        ("base_exhausted", Json::Number(s.baseline_exhausted as f64)),
    ])
}

fn slots_state_from_json(j: &Json) -> Result<StreamSlotsState, JournalError> {
    Ok(StreamSlotsState {
        busy: f64_array(j, "busy")?,
        lost: f64_array(j, "lost")?,
        backoff: f64_array(j, "backoff")?,
        deaths: usize_field(j, "deaths")?,
        retried: usize_field(j, "retried")?,
        diverged: usize_field(j, "diverged")?,
        timeout: usize_field(j, "timeout")?,
        cancelled: usize_field(j, "cancelled")?,
        exhausted: usize_field(j, "exhausted")?,
        baseline_busy: f64_array(j, "base_busy")?,
        baseline_lost: f64_array(j, "base_lost")?,
        baseline_backoff: f64_array(j, "base_backoff")?,
        baseline_deaths: usize_field(j, "base_deaths")?,
        baseline_retried: usize_field(j, "base_retried")?,
        baseline_diverged: usize_field(j, "base_diverged")?,
        baseline_timeout: usize_field(j, "base_timeout")?,
        baseline_cancelled: usize_field(j, "base_cancelled")?,
        baseline_exhausted: usize_field(j, "base_exhausted")?,
    })
}

/// One steady-state snapshot: everything a resume needs to restore the
/// driver at an epoch-window boundary without replaying the arrivals
/// before it. Self-contained by design: the records *before* the last
/// snapshot are dead weight ([`compact`] drops them), and resume replays
/// only the arrival suffix after it — O(window) instead of O(campaign).
///
/// Steady-state RNG needs no words here: every draw is a pure function of
/// `(run seed, arrival index)` (DESIGN.md §12), both of which the snapshot
/// carries. A snapshot can land mid-epoch (window boundaries are arrival
/// counts, not epoch boundaries), hence the partial per-epoch accumulators.
#[derive(Clone, Debug)]
pub struct SnapshotEntry {
    /// Experiment run index.
    pub run: usize,
    /// Arrivals consumed when the snapshot was taken (also its key).
    pub arrivals: usize,
    /// Submissions issued so far (arrivals + in-flight + queued).
    pub submitted: usize,
    /// Mutation σ at the snapshot point.
    pub std: Vec<f64>,
    /// The steady population.
    pub population: Vec<Individual>,
    /// Bred-but-not-consumed individuals, with their submission indices —
    /// the resubmission queue, in order.
    pub pending: Vec<(usize, Individual)>,
    /// Pareto-archive members.
    pub archive: Vec<Individual>,
    /// The slot accountant (cursors, loss/backoff tallies, epoch baseline).
    pub slots: StreamSlotsState,
    /// Completed epoch records so far.
    pub history: Vec<GenerationRecord>,
    /// Completed epochs' scheduler reports.
    pub epoch_reports: Vec<PoolReport>,
    /// MAXINT failures within the current (partial) epoch.
    pub epoch_failures: usize,
    /// Archive churn within the current epoch: `(offered, added, evicted)`.
    pub epoch_churn: (usize, usize, usize),
    /// Simulated-clock offset of the current epoch's start, minutes.
    pub epoch_sim_offset: f64,
    /// Status rows published for completed epochs (steady rows cannot be
    /// replayed from generation records alone — churn is per-arrival).
    pub status_rows: Vec<GenStatus>,
}

impl SnapshotEntry {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("type", Json::String("snapshot".into())),
            ("run", Json::Number(self.run as f64)),
            ("arrivals", Json::Number(self.arrivals as f64)),
            ("submitted", Json::Number(self.submitted as f64)),
            ("std", numbers(&self.std)),
            (
                "population",
                Json::Array(self.population.iter().map(individual_to_json).collect()),
            ),
            (
                "pending",
                Json::Array(
                    self.pending
                        .iter()
                        .map(|(submission, ind)| {
                            Json::Array(vec![
                                Json::Number(*submission as f64),
                                individual_to_json(ind),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "archive",
                Json::Array(self.archive.iter().map(individual_to_json).collect()),
            ),
            ("slots", slots_state_to_json(&self.slots)),
            (
                "history",
                Json::Array(self.history.iter().map(generation_record_to_json).collect()),
            ),
            (
                "epoch_reports",
                Json::Array(self.epoch_reports.iter().map(report_to_json).collect()),
            ),
            ("epoch_failures", Json::Number(self.epoch_failures as f64)),
            (
                "epoch_churn",
                numbers(&[
                    self.epoch_churn.0 as f64,
                    self.epoch_churn.1 as f64,
                    self.epoch_churn.2 as f64,
                ]),
            ),
            ("epoch_sim_offset", Json::Number(self.epoch_sim_offset)),
            (
                "status_rows",
                Json::Array(self.status_rows.iter().map(json_of_row).collect()),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, JournalError> {
        let pending = array_field(j, "pending")?
            .iter()
            .map(|pair| match pair {
                Json::Array(items) if items.len() == 2 => {
                    let submission = items[0]
                        .as_f64()
                        .ok_or_else(|| JournalError::new("non-numeric pending submission"))?
                        as usize;
                    Ok((submission, individual_from_json(&items[1])?))
                }
                _ => Err(JournalError::new("pending entry must be a [submission, individual] pair")),
            })
            .collect::<Result<Vec<_>, JournalError>>()?;
        let churn = f64_array(j, "epoch_churn")?;
        if churn.len() != 3 {
            return Err(JournalError::new("epoch_churn must be a 3-element array"));
        }
        Ok(SnapshotEntry {
            run: usize_field(j, "run")?,
            arrivals: usize_field(j, "arrivals")?,
            submitted: usize_field(j, "submitted")?,
            std: f64_array(j, "std")?,
            population: array_field(j, "population")?
                .iter()
                .map(individual_from_json)
                .collect::<Result<_, _>>()?,
            pending,
            archive: array_field(j, "archive")?
                .iter()
                .map(individual_from_json)
                .collect::<Result<_, _>>()?,
            slots: slots_state_from_json(
                j.get("slots").ok_or_else(|| JournalError::new("missing 'slots'"))?,
            )?,
            history: array_field(j, "history")?
                .iter()
                .map(generation_record_from_json)
                .collect::<Result<_, _>>()?,
            epoch_reports: array_field(j, "epoch_reports")?
                .iter()
                .map(report_from_json)
                .collect::<Result<_, _>>()?,
            epoch_failures: usize_field(j, "epoch_failures")?,
            epoch_churn: (churn[0] as usize, churn[1] as usize, churn[2] as usize),
            epoch_sim_offset: f64_field(j, "epoch_sim_offset")?,
            status_rows: array_field(j, "status_rows")?.iter().map(row_from_json).collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// Configuration fingerprint (stale-journal rejection)
// ---------------------------------------------------------------------------

/// A stable fingerprint of everything that determines a campaign's result.
/// Stored in the journal header; resume refuses a journal whose fingerprint
/// differs from the configuration it is asked to continue.
pub fn config_fingerprint(config: &ExperimentConfig) -> u64 {
    let g = &config.gen_config;
    let mut fields = vec![
        ("n_runs", Json::Number(config.n_runs as f64)),
        ("pop_size", Json::Number(config.pop_size as f64)),
        ("generations", Json::Number(config.generations as f64)),
        ("train", hex_u64(config.base_train_config.config_hash())),
        (
            "gen",
            Json::object(vec![
                ("n_atoms", Json::Number(g.n_atoms as f64)),
                ("box_len", Json::Number(g.box_len)),
                ("temperature", Json::Number(g.temperature)),
                ("dt_fs", Json::Number(g.dt_fs)),
                ("friction", Json::Number(g.friction)),
                ("equil_steps", Json::Number(g.equil_steps as f64)),
                ("sample_every", Json::Number(g.sample_every as f64)),
                ("n_frames", Json::Number(g.n_frames as f64)),
            ]),
        ),
        ("noise", numbers(&[config.label_noise.0, config.label_noise.1])),
        (
            "pool",
            Json::object(vec![
                ("n_workers", Json::Number(config.pool.n_workers as f64)),
                (
                    "timeout",
                    config.pool.timeout_minutes.map_or(Json::Null, Json::Number),
                ),
                ("nanny", Json::Bool(config.pool.nanny)),
                ("max_attempts", Json::Number(config.pool.max_attempts as f64)),
                ("speculate", Json::Bool(config.pool.supervisor.speculate)),
                (
                    "straggler_quantile",
                    Json::Number(config.pool.supervisor.straggler_quantile),
                ),
                (
                    "straggler_factor",
                    Json::Number(config.pool.supervisor.straggler_factor),
                ),
                (
                    "backoff_base",
                    Json::Number(config.pool.supervisor.backoff_base_minutes),
                ),
                ("backoff_factor", Json::Number(config.pool.supervisor.backoff_factor)),
                (
                    "quarantine_deaths",
                    Json::Number(config.pool.supervisor.quarantine_deaths as f64),
                ),
            ]),
        ),
        ("fault_probability", Json::Number(config.fault_probability)),
        ("master_seed", hex_u64(config.master_seed)),
    ];
    // The campaign mode changes every downstream byte (arrival-keyed RNG vs
    // generation-keyed RNG), so steady-state journals must never resume a
    // generational campaign or vice versa. The key is only added in
    // steady-state mode so every previously written generational
    // fingerprint — including the checked-in artifacts — is unchanged.
    if config.mode == CampaignMode::SteadyState {
        fields.push(("mode", Json::String("steady-state".into())));
    }
    Json::object(fields).stable_hash()
}

fn header_json(config: &ExperimentConfig) -> Json {
    Json::object(vec![
        ("type", Json::String("header".into())),
        ("version", Json::Number(JOURNAL_VERSION as f64)),
        ("config", hex_u64(config_fingerprint(config))),
        ("n_runs", Json::Number(config.n_runs as f64)),
        ("pop_size", Json::Number(config.pop_size as f64)),
        ("generations", Json::Number(config.generations as f64)),
        ("master_seed", hex_u64(config.master_seed)),
    ])
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends framed journal records, flushing each line before returning —
/// the "write-ahead" property: once a record is appended, a driver crash
/// cannot lose it.
///
/// Appends are fallible: real I/O errors and injected [`IoFault`]s (via
/// [`JournalWriter::set_io_site`]) surface as `Err`, and the writer does
/// **not** advance its offset or sequence counter on failure. A driver
/// receiving `Err` must stop journaling and crash out (it may have left a
/// torn frame behind); [`salvage`] + resume recovers.
pub struct JournalWriter {
    file: File,
    /// Byte offset the next record will be written at. Append methods
    /// return the offset of the record they wrote, so telemetry events can
    /// cross-reference journal entries by position.
    offset: u64,
    /// Sequence number of the next frame.
    seq: u64,
    /// Fault-injection site for appends (disabled by default).
    io: IoSite,
}

impl JournalWriter {
    /// Create a fresh journal at `path`, writing the header as frame 0.
    pub fn create(path: &Path, config: &ExperimentConfig) -> Result<Self, JournalError> {
        let file = File::create(path)
            .map_err(|e| JournalError::new(format!("cannot create {}: {e}", path.display())))?;
        let mut writer = JournalWriter {
            file,
            offset: 0,
            seq: 0,
            io: IoSite::disabled(JOURNAL_APPEND_SITE),
        };
        writer.append(&header_json(config))?;
        Ok(writer)
    }

    /// Attach a fault-injection site consulted before every append.
    pub fn set_io_site(&mut self, io: IoSite) {
        self.io = io;
    }

    /// Reopen an existing journal for appending, first truncating it to
    /// `journal.valid_len` — the valid prefix [`Journal::load`] measured —
    /// so a torn final frame from the crash is discarded. A v1 journal is
    /// upgraded in place: its records are rewritten as v2 frames under a
    /// fresh v2 header (atomically, via a temp file + rename) before the
    /// writer opens at the end.
    pub fn open_append(
        path: &Path,
        config: &ExperimentConfig,
        journal: &Journal,
    ) -> Result<Self, JournalError> {
        if journal.version < 2 {
            return upgrade_v1(path, config, journal);
        }
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| JournalError::new(format!("cannot open {}: {e}", path.display())))?;
        file.set_len(journal.valid_len)
            .map_err(|e| JournalError::new(format!("cannot truncate journal: {e}")))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| JournalError::new(format!("cannot seek journal: {e}")))?;
        Ok(JournalWriter {
            file,
            offset: journal.valid_len,
            seq: journal.frames,
            io: IoSite::disabled(JOURNAL_APPEND_SITE),
        })
    }

    /// Append one framed record, returning the byte offset it was written
    /// at. On failure (real or injected) the offset and sequence number do
    /// not advance; the file may hold a torn frame (short write) or a
    /// complete frame of uncertain durability (fsync failure) — both are
    /// exactly the states [`salvage`] and the torn-tail reader tolerate.
    fn append(&mut self, record: &Json) -> Result<u64, JournalError> {
        let payload = record.to_compact();
        let line = frame_line(self.seq, &payload);
        match self.io.next() {
            Some(IoFault::ShortWrite) => {
                // Half the frame reaches the file, then the write fails: a
                // torn tail with no trailing newline.
                let cut = line.len() / 2;
                let _ = self
                    .file
                    .write_all(&line.as_bytes()[..cut])
                    .and_then(|()| self.file.flush());
                return Err(JournalError::new(format!(
                    "injected short write at journal offset {}",
                    self.offset
                )));
            }
            Some(IoFault::FsyncFail) => {
                // The frame itself reaches the file but the durability
                // barrier fails: the record may or may not survive. Here it
                // does (the pessimistic case for resume, which must replay
                // it and still land byte-identical).
                self.file
                    .write_all(line.as_bytes())
                    .and_then(|()| self.file.flush())
                    .map_err(|e| JournalError::new(format!("journal append failed: {e}")))?;
                return Err(JournalError::new(format!(
                    "injected fsync failure at journal offset {}",
                    self.offset
                )));
            }
            Some(fault @ (IoFault::IoError | IoFault::DiskFull)) => {
                // Nothing reaches the file.
                return Err(JournalError::new(format!(
                    "injected {fault} at journal offset {}",
                    self.offset
                )));
            }
            None => {}
        }
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| JournalError::new(format!("journal append failed: {e}")))?;
        let at = self.offset;
        self.offset += line.len() as u64;
        self.seq += 1;
        Ok(at)
    }

    /// Append a completed-evaluation record; returns its byte offset.
    pub fn append_eval(&mut self, entry: &EvalEntry) -> Result<u64, JournalError> {
        self.append(&entry.to_json())
    }

    /// Append a generation-boundary record; returns its byte offset.
    pub fn append_generation(&mut self, entry: &GenEntry) -> Result<u64, JournalError> {
        self.append(&entry.to_json())
    }

    /// Append a steady-state snapshot record; returns its byte offset.
    pub fn append_snapshot(&mut self, entry: &SnapshotEntry) -> Result<u64, JournalError> {
        self.append(&entry.to_json())
    }
}

/// Upgrade a v1 journal to v2 framing, atomically: a fresh v2 header
/// (frame 0) followed by every v1 record payload re-framed in original
/// file order, written to a temp file and renamed over the original. The
/// v1 header, blank lines, and any torn tail are dropped.
fn upgrade_v1(
    path: &Path,
    config: &ExperimentConfig,
    journal: &Journal,
) -> Result<JournalWriter, JournalError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| JournalError::new(format!("cannot read {}: {e}", path.display())))?;
    let scan = scan_text(&text[..journal.valid_len as usize]);
    if let Some((offset, reason)) = &scan.first_bad {
        return Err(JournalError::new(format!(
            "cannot upgrade {}: corrupt record at byte {offset}: {reason}",
            path.display()
        )));
    }
    let mut content = String::new();
    let mut seq = 0u64;
    content.push_str(&frame_line(seq, &header_json(config).to_compact()));
    seq += 1;
    for frame in &scan.frames {
        if matches!(frame.record, ScannedRecord::Header { .. }) {
            continue;
        }
        content.push_str(&frame_line(seq, &frame.payload));
        seq += 1;
    }
    let tmp = path.with_extension("upgrade.tmp");
    {
        let mut f = File::create(&tmp)
            .map_err(|e| JournalError::new(format!("cannot create {}: {e}", tmp.display())))?;
        f.write_all(content.as_bytes())
            .and_then(|()| f.sync_all())
            .map_err(|e| JournalError::new(format!("cannot write upgraded journal: {e}")))?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| JournalError::new(format!("cannot install upgraded journal: {e}")))?;
    let mut file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| JournalError::new(format!("cannot open {}: {e}", path.display())))?;
    file.seek(SeekFrom::End(0))
        .map_err(|e| JournalError::new(format!("cannot seek journal: {e}")))?;
    Ok(JournalWriter {
        file,
        offset: content.len() as u64,
        seq,
        io: IoSite::disabled(JOURNAL_APPEND_SITE),
    })
}

/// The journal handle an evaluator carries: where to append, which run it
/// belongs to, and the replay map of already-journaled evaluations.
#[derive(Clone)]
pub struct JournalSink {
    /// Run this sink journals for.
    pub run: usize,
    /// Shared append handle (the experiment loop also writes boundaries).
    pub writer: Rc<RefCell<JournalWriter>>,
    /// Journaled evaluations of this run, keyed `(generation, slot)`.
    pub replay: Rc<HashMap<(usize, usize), EvalEntry>>,
}

impl JournalSink {
    /// A sink with nothing to replay (fresh campaign).
    pub fn fresh(run: usize, writer: Rc<RefCell<JournalWriter>>) -> Self {
        JournalSink { run, writer, replay: Rc::new(HashMap::new()) }
    }
}

// ---------------------------------------------------------------------------
// Reader: scan machinery shared by load / salvage / verify / compact
// ---------------------------------------------------------------------------

/// A decoded record, typed.
enum ScannedRecord {
    Header { fingerprint: u64 },
    Eval(EvalEntry),
    Generation(GenEntry),
    Snapshot(SnapshotEntry),
}

/// One valid record with its file position and original payload text (the
/// payload is re-emitted verbatim by upgrade and compaction, so rewritten
/// journals never drift through re-serialisation).
struct ScannedFrame {
    payload: String,
    record: ScannedRecord,
}

/// The result of scanning journal text: every valid record in file order,
/// the byte length of the valid prefix, and the first corruption found (a
/// torn, newline-less tail is *not* corruption — it is the expected
/// signature of a crash mid-append).
struct ScanOutcome {
    version: u64,
    frames: Vec<ScannedFrame>,
    valid_len: u64,
    first_bad: Option<(u64, String)>,
}

/// Scan journal text, sniffing the format: v2 frames start with `J2 `,
/// v1 records are bare JSON objects starting with `{`.
fn scan_text(text: &str) -> ScanOutcome {
    if text.starts_with('{') {
        scan_v1(text)
    } else {
        scan_v2(text)
    }
}

fn scan_v2(text: &str) -> ScanOutcome {
    let mut out = ScanOutcome { version: 2, frames: Vec::new(), valid_len: 0, first_bad: None };
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            // Torn tail: the frame never became durable. Tolerated.
            break;
        }
        let body = &line[..line.len() - 1];
        let expected_seq = out.frames.len() as u64;
        let parsed = parse_frame(body, expected_seq).and_then(|payload| {
            typed_record(payload, offset as u64, out.frames.is_empty())
                .map(|record| (payload.to_string(), record))
        });
        match parsed {
            Ok((payload, record)) => {
                out.frames.push(ScannedFrame { payload, record });
                offset += line.len();
                out.valid_len = offset as u64;
            }
            Err(e) => {
                // A *terminated* bad frame is corruption, wherever it is:
                // the writer never terminates a frame it did not complete.
                out.first_bad = Some((offset as u64, e.message));
                break;
            }
        }
    }
    out
}

/// v1 compatibility scanner: bare JSONL with the original tolerance rules
/// (blank lines skipped, a torn or unparseable *final* line tolerated,
/// anything earlier corrupt).
fn scan_v1(text: &str) -> ScanOutcome {
    let mut out = ScanOutcome { version: 1, frames: Vec::new(), valid_len: 0, first_bad: None };
    let mut offset = 0usize;
    let mut lines = text.split_inclusive('\n').peekable();
    while let Some(line) = lines.next() {
        let is_last = lines.peek().is_none();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            offset += line.len();
            continue;
        }
        // A record is durable only once its trailing newline reached the
        // file: a torn write can end exactly at a parseable boundary, and
        // appending after it would merge two records onto one line.
        if is_last && !line.ends_with('\n') {
            break;
        }
        match typed_record(trimmed, offset as u64, out.frames.is_empty()) {
            Ok(record) => {
                out.frames.push(ScannedFrame { payload: trimmed.to_string(), record });
                offset += line.len();
                out.valid_len = offset as u64;
            }
            // An unparseable final line is the v1 signature of a crash
            // mid-append; anything earlier is real corruption.
            Err(_) if is_last => break,
            Err(e) => {
                out.first_bad = Some((offset as u64, e.message));
                break;
            }
        }
    }
    out
}

/// Parse and type-check one record payload. The header must be the first
/// record and nothing else may be; payload-level JSON or semantic failures
/// count as corruption at `offset`.
fn typed_record(payload: &str, offset: u64, first: bool) -> Result<ScannedRecord, JournalError> {
    let record = Json::parse(payload)
        .map_err(|e| JournalError::new(format!("bad JSON at byte {offset}: {e}")))?;
    match record.get("type").and_then(Json::as_str) {
        Some("header") => {
            if !first {
                return Err(JournalError::new(format!(
                    "unexpected header record at byte {offset}"
                )));
            }
            let version = f64_field(&record, "version")? as u64;
            if version == 0 || version > JOURNAL_VERSION {
                return Err(JournalError::new(format!(
                    "journal version {version} > supported {JOURNAL_VERSION}"
                )));
            }
            Ok(ScannedRecord::Header {
                fingerprint: parse_hex_u64(record.get("config"), "config")?,
            })
        }
        Some("eval") => Ok(ScannedRecord::Eval(EvalEntry::from_json(&record)?)),
        Some("generation") => Ok(ScannedRecord::Generation(GenEntry::from_json(&record)?)),
        Some("snapshot") => Ok(ScannedRecord::Snapshot(SnapshotEntry::from_json(&record)?)),
        other => Err(JournalError::new(format!(
            "unknown record type {other:?} at byte {offset}"
        ))),
    }
}

/// Read a file as UTF-8 text plus the offset of the first invalid byte, if
/// any — scanning proceeds over the valid prefix.
fn read_text_prefix(path: &Path) -> Result<(Vec<u8>, usize, Option<u64>), JournalError> {
    let bytes = std::fs::read(path)
        .map_err(|e| JournalError::new(format!("cannot read {}: {e}", path.display())))?;
    let (text_len, utf8_bad) = match std::str::from_utf8(&bytes) {
        Ok(_) => (bytes.len(), None),
        Err(e) => (e.valid_up_to(), Some(e.valid_up_to() as u64)),
    };
    Ok((bytes, text_len, utf8_bad))
}

/// A parsed journal: header metadata plus every valid record, with the
/// byte length of the valid prefix (a torn final frame from a crash is
/// tolerated and measured off; any *other* damage makes `load` fail —
/// run [`salvage`] to truncate and quarantine it).
#[derive(Debug)]
pub struct Journal {
    /// Configuration fingerprint from the header.
    pub config_fingerprint: u64,
    /// Completed evaluations keyed `(run, generation, slot)`.
    pub evals: HashMap<(usize, usize, usize), EvalEntry>,
    /// Generation boundaries keyed `(run, generation)`.
    pub generations: BTreeMap<(usize, usize), GenEntry>,
    /// Steady-state snapshots keyed `(run, arrivals)`.
    pub snapshots: BTreeMap<(usize, usize), SnapshotEntry>,
    /// Byte length of the valid prefix (pass to [`JournalWriter::open_append`]).
    pub valid_len: u64,
    /// Container format the file was read as (1 = bare JSONL, 2 = framed).
    pub version: u64,
    /// Valid records (frames) in the file, header included.
    pub frames: u64,
}

impl Journal {
    /// Load and validate a journal file.
    pub fn load(path: &Path) -> Result<Journal, JournalError> {
        let (bytes, _, utf8_bad) = read_text_prefix(path)?;
        if let Some(offset) = utf8_bad {
            return Err(JournalError::new(format!(
                "{}: invalid UTF-8 at byte {offset} — run salvage to quarantine the damage",
                path.display()
            )));
        }
        let text = std::str::from_utf8(&bytes).expect("checked above");
        let scan = scan_text(text);
        if let Some((offset, reason)) = &scan.first_bad {
            return Err(JournalError::new(format!(
                "{}: corrupt record at byte {offset}: {reason} — run salvage to truncate \
                 and quarantine",
                path.display()
            )));
        }
        Journal::from_scan(scan)
    }

    fn from_scan(scan: ScanOutcome) -> Result<Journal, JournalError> {
        let mut journal = Journal {
            config_fingerprint: 0,
            evals: HashMap::new(),
            generations: BTreeMap::new(),
            snapshots: BTreeMap::new(),
            valid_len: scan.valid_len,
            version: scan.version,
            frames: scan.frames.len() as u64,
        };
        let mut saw_header = false;
        for frame in scan.frames {
            match frame.record {
                ScannedRecord::Header { fingerprint } => {
                    journal.config_fingerprint = fingerprint;
                    saw_header = true;
                }
                ScannedRecord::Eval(entry) => {
                    journal.evals.insert((entry.run, entry.gen, entry.slot), entry);
                }
                ScannedRecord::Generation(entry) => {
                    journal.generations.insert((entry.run, entry.record.generation), entry);
                }
                ScannedRecord::Snapshot(entry) => {
                    journal.snapshots.insert((entry.run, entry.arrivals), entry);
                }
            }
        }
        if !saw_header {
            return Err(JournalError::new("journal has no header record"));
        }
        Ok(journal)
    }

    /// The latest journaled snapshot of one run, if any.
    pub fn last_snapshot_for(&self, run: usize) -> Option<&SnapshotEntry> {
        self.snapshots.range((run, 0)..=(run, usize::MAX)).next_back().map(|(_, s)| s)
    }

    /// Reject the journal if it was written under a different campaign
    /// configuration.
    pub fn check_config(&self, config: &ExperimentConfig) -> Result<(), JournalError> {
        let expected = config_fingerprint(config);
        if self.config_fingerprint != expected {
            return Err(JournalError::new(format!(
                "stale journal: config fingerprint {:#018x} != expected {:#018x} \
                 (the campaign configuration changed since the journal was written)",
                self.config_fingerprint, expected
            )));
        }
        Ok(())
    }

    /// The replay map for one run: journaled evaluations keyed
    /// `(generation, slot)`.
    pub fn replay_for(&self, run: usize) -> HashMap<(usize, usize), EvalEntry> {
        self.evals
            .values()
            .filter(|e| e.run == run)
            .map(|e| ((e.gen, e.slot), e.clone()))
            .collect()
    }

    /// Generation boundaries of one run, ordered by generation. Errors if
    /// the boundaries are not contiguous from 0 (a corrupt journal).
    pub fn boundaries_for(&self, run: usize) -> Result<Vec<&GenEntry>, JournalError> {
        let entries: Vec<&GenEntry> = self
            .generations
            .range((run, 0)..=(run, usize::MAX))
            .map(|(_, e)| e)
            .collect();
        for (i, entry) in entries.iter().enumerate() {
            if entry.record.generation != i {
                return Err(JournalError::new(format!(
                    "run {run}: generation boundaries not contiguous (found {} at index {i})",
                    entry.record.generation
                )));
            }
        }
        Ok(entries)
    }
}

// ---------------------------------------------------------------------------
// Salvage / verify / compact
// ---------------------------------------------------------------------------

/// What [`salvage`] did to a damaged journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SalvageReport {
    /// Container format of the salvaged file (1 or 2).
    pub version: u64,
    /// Valid records kept (header included).
    pub frames_kept: u64,
    /// Byte length the journal was truncated to.
    pub valid_len: u64,
    /// Bytes moved to the quarantine file (0 if the file was clean).
    pub quarantined_bytes: u64,
    /// Offset of the first corrupt byte, if actual corruption (not just a
    /// benign torn tail) was found.
    pub first_bad_offset: Option<u64>,
    /// Where the quarantined bytes went: `<journal>.quarantine`.
    pub quarantine_path: PathBuf,
}

/// Truncate a journal to its longest valid prefix, quarantining everything
/// after it (torn tail, corrupt frames, trailing garbage, invalid UTF-8)
/// to `<journal>.quarantine`. After salvage, [`Journal::load`] succeeds on
/// any file that still has its header, and resume continues
/// deterministically from the last intact record. Idempotent on clean
/// files (nothing is written).
pub fn salvage(path: &Path) -> Result<SalvageReport, JournalError> {
    let (bytes, text_len, utf8_bad) = read_text_prefix(path)?;
    let text = std::str::from_utf8(&bytes[..text_len]).expect("prefix is valid UTF-8");
    let scan = scan_text(text);
    let quarantine_path = PathBuf::from(format!("{}.quarantine", path.display()));
    let quarantined = &bytes[scan.valid_len as usize..];
    if !quarantined.is_empty() {
        std::fs::write(&quarantine_path, quarantined).map_err(|e| {
            JournalError::new(format!("cannot write {}: {e}", quarantine_path.display()))
        })?;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| JournalError::new(format!("cannot open {}: {e}", path.display())))?;
        file.set_len(scan.valid_len)
            .map_err(|e| JournalError::new(format!("cannot truncate journal: {e}")))?;
        file.sync_all()
            .map_err(|e| JournalError::new(format!("cannot sync journal: {e}")))?;
    }
    Ok(SalvageReport {
        version: scan.version,
        frames_kept: scan.frames.len() as u64,
        valid_len: scan.valid_len,
        quarantined_bytes: quarantined.len() as u64,
        first_bad_offset: scan.first_bad.map(|(offset, _)| offset).or(utf8_bad),
        quarantine_path,
    })
}

/// Offline integrity report for a journal file ([`verify`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Container format (1 = bare JSONL, 2 = framed).
    pub version: u64,
    /// Valid records (header included).
    pub frames: u64,
    /// Evaluation records among them.
    pub evals: u64,
    /// Generation-boundary records among them.
    pub generations: u64,
    /// Snapshot records among them.
    pub snapshots: u64,
    /// `(run, arrivals)` of the last snapshot in file order, if any.
    pub last_snapshot: Option<(usize, usize)>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Total file length.
    pub total_len: u64,
    /// Offset of the first corrupt byte, if any. A benign torn ASCII tail
    /// (crash mid-append) is *not* damage and leaves this `None`.
    pub first_corrupt_offset: Option<u64>,
}

impl VerifyReport {
    /// True when the file needs [`salvage`] before it can be loaded.
    pub fn damaged(&self) -> bool {
        self.first_corrupt_offset.is_some()
    }
}

/// Check a journal's integrity without modifying it: counts valid frames
/// by kind, finds the last snapshot, and reports the first corrupt offset
/// if any. Errs only if the file cannot be read at all.
pub fn verify(path: &Path) -> Result<VerifyReport, JournalError> {
    let (bytes, text_len, utf8_bad) = read_text_prefix(path)?;
    let text = std::str::from_utf8(&bytes[..text_len]).expect("prefix is valid UTF-8");
    let scan = scan_text(text);
    let mut report = VerifyReport {
        version: scan.version,
        frames: scan.frames.len() as u64,
        evals: 0,
        generations: 0,
        snapshots: 0,
        last_snapshot: None,
        valid_len: scan.valid_len,
        total_len: bytes.len() as u64,
        first_corrupt_offset: scan.first_bad.map(|(offset, _)| offset).or(utf8_bad),
    };
    for frame in &scan.frames {
        match &frame.record {
            ScannedRecord::Header { .. } => {}
            ScannedRecord::Eval(_) => report.evals += 1,
            ScannedRecord::Generation(_) => report.generations += 1,
            ScannedRecord::Snapshot(s) => {
                report.snapshots += 1;
                report.last_snapshot = Some((s.run, s.arrivals));
            }
        }
    }
    Ok(report)
}

/// What [`compact`] achieved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// Valid records before compaction.
    pub frames_before: u64,
    /// Records in the rewritten journal.
    pub frames_after: u64,
    /// File bytes before.
    pub bytes_before: u64,
    /// File bytes after.
    pub bytes_after: u64,
}

/// Rewrite a journal down to what resume actually replays, atomically
/// (temp file + rename). Steady-state journals keep, per run, the last
/// snapshot and the arrival suffix at or after it; generational journals
/// keep every generation boundary (each one doubles as that mode's
/// snapshot, and resume needs the full history) plus the evaluations after
/// the last boundary. Original payload bytes are re-emitted verbatim under
/// fresh frame sequence numbers, so nothing drifts through
/// re-serialisation. Refuses damaged files (salvage first) and torn tails
/// are dropped. v1 journals are compacted *and* upgraded to v2 framing in
/// one pass.
pub fn compact(path: &Path) -> Result<CompactReport, JournalError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| JournalError::new(format!("cannot read {}: {e}", path.display())))?;
    let scan = scan_text(&text);
    if let Some((offset, reason)) = &scan.first_bad {
        return Err(JournalError::new(format!(
            "cannot compact {}: corrupt record at byte {offset}: {reason} — salvage first",
            path.display()
        )));
    }
    let header = match scan.frames.first() {
        Some(frame) if matches!(frame.record, ScannedRecord::Header { .. }) => frame,
        _ => return Err(JournalError::new("journal has no header record")),
    };
    // v1 header payloads declare version 1; re-framing them under v2
    // containers requires the declared version to follow.
    let header_payload = if scan.version < 2 {
        upgraded_header_payload(&header.payload)?
    } else {
        header.payload.clone()
    };

    // Steady-state journals are recognisable by their records alone:
    // snapshots, or evals carrying an arrival index.
    let steady = scan.frames.iter().any(|f| match &f.record {
        ScannedRecord::Snapshot(_) => true,
        ScannedRecord::Eval(e) => e.arrival.is_some(),
        _ => false,
    });

    let mut runs: Vec<usize> = scan
        .frames
        .iter()
        .filter_map(|f| match &f.record {
            ScannedRecord::Eval(e) => Some(e.run),
            ScannedRecord::Generation(g) => Some(g.run),
            ScannedRecord::Snapshot(s) => Some(s.run),
            ScannedRecord::Header { .. } => None,
        })
        .collect();
    runs.sort_unstable();
    runs.dedup();

    let mut kept: Vec<&str> = vec![&header_payload];
    for &run in &runs {
        if steady {
            // Last snapshot (file order == arrivals order), then the
            // arrival suffix at or after it.
            let snapshot = scan
                .frames
                .iter()
                .rev()
                .find(|f| matches!(&f.record, ScannedRecord::Snapshot(s) if s.run == run));
            let horizon = snapshot.map_or(0, |f| match &f.record {
                ScannedRecord::Snapshot(s) => s.arrivals,
                _ => unreachable!(),
            });
            if let Some(frame) = snapshot {
                kept.push(&frame.payload);
            }
            let mut evals: Vec<(usize, &str)> = scan
                .frames
                .iter()
                .filter_map(|f| match &f.record {
                    ScannedRecord::Eval(e) if e.run == run => {
                        let arrival = e.arrival.unwrap_or(0);
                        (arrival >= horizon).then_some((arrival, f.payload.as_str()))
                    }
                    _ => None,
                })
                .collect();
            evals.sort_by_key(|&(arrival, _)| arrival);
            kept.extend(evals.into_iter().map(|(_, payload)| payload));
        } else {
            // Every boundary, in generation order (resume reconstructs the
            // full history and checks contiguity), then the evaluations of
            // the unfinished generation.
            let mut boundaries: Vec<(usize, &str)> = scan
                .frames
                .iter()
                .filter_map(|f| match &f.record {
                    ScannedRecord::Generation(g) if g.run == run => {
                        Some((g.record.generation, f.payload.as_str()))
                    }
                    _ => None,
                })
                .collect();
            boundaries.sort_by_key(|&(generation, _)| generation);
            let horizon = boundaries.last().map_or(0, |&(generation, _)| generation + 1);
            kept.extend(boundaries.iter().map(|&(_, payload)| payload));
            let mut evals: Vec<((usize, usize), &str)> = scan
                .frames
                .iter()
                .filter_map(|f| match &f.record {
                    ScannedRecord::Eval(e)
                        if e.run == run && (e.gen >= horizon || boundaries.is_empty()) =>
                    {
                        Some(((e.gen, e.slot), f.payload.as_str()))
                    }
                    _ => None,
                })
                .collect();
            evals.sort_by_key(|&(key, _)| key);
            kept.extend(evals.into_iter().map(|(_, payload)| payload));
        }
    }

    let mut content = String::new();
    for (seq, payload) in kept.iter().enumerate() {
        content.push_str(&frame_line(seq as u64, payload));
    }
    let tmp = path.with_extension("compact.tmp");
    {
        let mut f = File::create(&tmp)
            .map_err(|e| JournalError::new(format!("cannot create {}: {e}", tmp.display())))?;
        f.write_all(content.as_bytes())
            .and_then(|()| f.sync_all())
            .map_err(|e| JournalError::new(format!("cannot write compacted journal: {e}")))?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| JournalError::new(format!("cannot install compacted journal: {e}")))?;
    Ok(CompactReport {
        frames_before: scan.frames.len() as u64,
        frames_after: kept.len() as u64,
        bytes_before: text.len() as u64,
        bytes_after: content.len() as u64,
    })
}

/// Rewrite a v1 header payload with `version` bumped to the current
/// format, preserving every other field and the canonical key order.
fn upgraded_header_payload(payload: &str) -> Result<String, JournalError> {
    let header = Json::parse(payload)
        .map_err(|e| JournalError::new(format!("bad header payload: {e}")))?;
    let field = |key: &str| {
        header
            .get(key)
            .cloned()
            .ok_or_else(|| JournalError::new(format!("header missing '{key}'")))
    };
    Ok(Json::object(vec![
        ("type", Json::String("header".into())),
        ("version", Json::Number(JOURNAL_VERSION as f64)),
        ("config", field("config")?),
        ("n_runs", field("n_runs")?),
        ("pop_size", field("pop_size")?),
        ("generations", field("generations")?),
        ("master_seed", field("master_seed")?),
    ])
    .to_compact())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluated(genome: Vec<f64>, objectives: Vec<f64>) -> Individual {
        let mut ind = Individual::new(genome);
        ind.fitness = Some(Fitness::new(objectives));
        ind.rank = 1;
        ind.distance = f64::INFINITY;
        ind.eval_minutes = Some(63.25);
        ind
    }

    #[test]
    fn individual_round_trips_including_infinite_distance() {
        let ind = evaluated(vec![0.005, 1e-4, 7.0], vec![0.0016, 0.0357]);
        let j = individual_to_json(&ind);
        let back = individual_from_json(&j).unwrap();
        assert_eq!(back.id, ind.id);
        assert_eq!(back.genome, ind.genome);
        assert_eq!(back.fitness, ind.fitness);
        assert_eq!(back.rank, ind.rank);
        assert_eq!(back.distance, f64::INFINITY);
        assert_eq!(back.eval_minutes, ind.eval_minutes);
        // Serialize → parse → serialize is a fixed point.
        assert_eq!(individual_to_json(&back).to_compact(), j.to_compact());
    }

    #[test]
    fn unevaluated_individual_round_trips() {
        let ind = Individual::new(vec![1.5, -2.0]);
        let back = individual_from_json(&individual_to_json(&ind)).unwrap();
        assert!(back.fitness.is_none());
        assert_eq!(back.rank, usize::MAX);
        assert_eq!(back.eval_minutes, None);
    }

    #[test]
    fn maxint_penalty_round_trips_exactly() {
        let f = Fitness::penalty(2);
        let back = fitness_from_json(&fitness_to_json(&f)).unwrap();
        assert!(back.is_penalty());
        assert_eq!(back, f);
    }

    #[test]
    fn rng_state_round_trips_and_rejects_zero() {
        let state = [0x1234_5678_9abc_def0u64, 42, u64::MAX, 7];
        let back = rng_state_from_json(&rng_state_to_json(state)).unwrap();
        assert_eq!(back, state);
        assert!(rng_state_from_json(&rng_state_to_json([1, 2, 3, 4])).is_ok());
        let zero = Json::Array((0..4).map(|_| hex_u64(0)).collect());
        assert!(rng_state_from_json(&zero).is_err());
    }

    #[test]
    fn eval_entry_round_trips_through_json() {
        let entry = EvalEntry {
            run: 1,
            gen: 3,
            slot: 7,
            seed: 0xdead_beef_0000_0001,
            genome: vec![0.005, 1e-4, 7.0, 2.5, 2.5, 4.5, 4.5],
            fault: FaultKind::None,
            fault_step: None,
            fault_loss: None,
            objectives: Some(vec![0.0016, 0.0357]),
            minutes: 63.25,
            attempts: 2,
            lcurve_tail: vec![LcurveRow {
                step: 50,
                rmse_e_val: 0.0016,
                rmse_e_trn: 0.002,
                rmse_f_val: 0.0357,
                rmse_f_trn: 0.04,
                lr: 1e-5,
            }],
            arrival: None,
        };
        let j = entry.to_json();
        let back = EvalEntry::from_json(&j).unwrap();
        assert_eq!(back.genome, entry.genome);
        assert_eq!(back.objectives, entry.objectives);
        assert_eq!(back.seed, entry.seed);
        assert_eq!(back.lcurve_tail, entry.lcurve_tail);
        assert_eq!(back.to_json().to_compact(), j.to_compact());
    }

    #[test]
    fn faulted_entry_without_objectives_is_valid_but_success_is_not() {
        let mut entry = EvalEntry {
            run: 0,
            gen: 0,
            slot: 0,
            seed: 1,
            genome: vec![1.0],
            fault: FaultKind::Worker,
            fault_step: None,
            fault_loss: None,
            objectives: None,
            minutes: 0.0,
            attempts: 3,
            lcurve_tail: Vec::new(),
            arrival: None,
        };
        assert!(EvalEntry::from_json(&entry.to_json()).is_ok());
        entry.fault = FaultKind::None;
        assert!(EvalEntry::from_json(&entry.to_json()).is_err());
    }

    fn sample_eval() -> EvalEntry {
        EvalEntry {
            run: 0,
            gen: 0,
            slot: 0,
            seed: 9,
            genome: vec![1.0, 2.0],
            fault: FaultKind::Diverged,
            fault_step: None,
            fault_loss: None,
            objectives: None,
            minutes: 0.1,
            attempts: 1,
            lcurve_tail: Vec::new(),
            arrival: None,
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn frame_round_trips_and_rejects_wrong_sequence() {
        let payload = r#"{"type":"eval","run":0}"#;
        let line = frame_line(7, payload);
        assert!(line.starts_with("J2 00000007 "));
        assert!(line.ends_with('\n'));
        let body = &line[..line.len() - 1];
        assert_eq!(parse_frame(body, 7).unwrap(), payload);
        let err = parse_frame(body, 8).unwrap_err();
        assert!(err.message.contains("sequence"), "{err}");
    }

    #[test]
    fn any_single_byte_flip_in_a_frame_is_detected() {
        let payload = r#"{"type":"eval","run":0,"gen":3}"#;
        let line = frame_line(0, payload);
        let body = &line[..line.len() - 1];
        for i in 0..body.len() {
            let mut flipped = body.as_bytes().to_vec();
            flipped[i] ^= 0x01; // stays ASCII, so UTF-8 stays valid
            let flipped = String::from_utf8(flipped).unwrap();
            assert!(
                parse_frame(&flipped, 0).is_err(),
                "flip at byte {i} went undetected: {flipped}"
            );
        }
    }

    #[test]
    fn torn_final_line_is_tolerated_and_measured_off() {
        let config = ExperimentConfig::smoke();
        let dir = std::env::temp_dir().join(format!("dphpo-journal-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("torn.jsonl");
        {
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            writer.append_eval(&sample_eval()).unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: a torn, newline-less final frame.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"J2 00000002 0000001f 1234abcd {\"type\":\"ev").unwrap();
        drop(f);

        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.valid_len, full_len);
        assert_eq!(journal.evals.len(), 1);
        assert_eq!(journal.version, JOURNAL_VERSION);
        assert_eq!(journal.frames, 2);
        journal.check_config(&config).unwrap();

        // A different configuration is rejected as stale.
        let mut other = ExperimentConfig::smoke();
        other.master_seed += 1;
        assert!(journal.check_config(&other).is_err());

        // Reopening for append truncates the torn tail.
        drop(JournalWriter::open_append(&path, &config, &journal).unwrap());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parseable_final_line_without_newline_is_dropped() {
        let config = ExperimentConfig::smoke();
        let dir =
            std::env::temp_dir().join(format!("dphpo-journal-nonl-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("nonl.jsonl");
        let entry = sample_eval();
        drop(JournalWriter::create(&path, &config).unwrap());
        let header_len = std::fs::metadata(&path).unwrap().len();
        // A torn write can end exactly at a frame boundary minus the
        // newline: the frame parses, but without its newline it is not
        // durable and must be dropped, or the next append would merge two
        // frames onto one line.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        let full_frame = frame_line(1, &entry.to_json().to_compact());
        f.write_all(&full_frame.as_bytes()[..full_frame.len() - 1]).unwrap();
        drop(f);

        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.evals.len(), 0);
        assert_eq!(journal.valid_len, header_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_returns_the_records_byte_offset() {
        let config = ExperimentConfig::smoke();
        let dir =
            std::env::temp_dir().join(format!("dphpo-journal-off-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("offsets.jsonl");
        let entry = sample_eval();
        let (first, second) = {
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            (writer.append_eval(&entry).unwrap(), writer.append_eval(&entry).unwrap())
        };
        // The first record starts right after the header; the second right
        // after the first — and both match what is actually on disk.
        let text = std::fs::read_to_string(&path).unwrap();
        let header_len = text.lines().next().unwrap().len() as u64 + 1;
        assert_eq!(first, header_len);
        assert_eq!(second, header_len + (second - first));
        // The slice at the returned offset is exactly the record's frame.
        let line_at_first = text[first as usize..].lines().next().unwrap();
        assert_eq!(line_at_first, &frame_line(1, &entry.to_json().to_compact())[..line_at_first.len()]);
        assert_eq!(parse_frame(line_at_first, 1).unwrap(), entry.to_json().to_compact());
        assert_eq!(second + (second - first), text.len() as u64);

        // Reopening for append continues from the valid length, with the
        // next sequence number.
        let journal = Journal::load(&path).unwrap();
        let third = JournalWriter::open_append(&path, &config, &journal)
            .unwrap()
            .append_eval(&entry)
            .unwrap();
        assert_eq!(third, text.len() as u64);
        assert!(Journal::load(&path).is_ok(), "sequence must continue contiguously");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_before_the_final_line_is_an_error() {
        let dir = std::env::temp_dir().join(format!("dphpo-journal-mid-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("corrupt.jsonl");
        let config = ExperimentConfig::smoke();
        // v2: flip one payload byte of the middle frame.
        {
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            writer.append_eval(&sample_eval()).unwrap();
            writer.append_eval(&sample_eval()).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let target = bytes.len() / 2;
        bytes[target] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = Journal::load(&path).unwrap_err();
        assert!(err.message.contains("salvage"), "{err}");
        // v1: a garbage line before the end.
        let header = r#"{"type":"header","version":1,"config":"0x0000000000000abc"}"#;
        std::fs::write(&path, format!("{header}\nnot json at all\n{header}\n")).unwrap();
        assert!(Journal::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_fail_appends_per_kind_and_salvage_recovers() {
        use dphpo_hpc::faultplan::FaultPlan;
        use std::sync::Arc;
        let config = ExperimentConfig::smoke();
        let dir =
            std::env::temp_dir().join(format!("dphpo-journal-fault-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let entry = sample_eval();

        // ShortWrite: a torn frame lands, the append errors, and salvage
        // quarantines the torn bytes.
        let path = dir.join("short.jsonl");
        let clean_len = {
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            writer.append_eval(&entry).unwrap();
            let clean_len = std::fs::metadata(&path).unwrap().len();
            let plan =
                Arc::new(FaultPlan::new(3).script(JOURNAL_APPEND_SITE, 0, IoFault::ShortWrite));
            writer.set_io_site(IoSite::new(plan, JOURNAL_APPEND_SITE));
            assert!(writer.append_eval(&entry).is_err());
            clean_len
        };
        assert!(std::fs::metadata(&path).unwrap().len() > clean_len, "torn frame expected");
        let report = salvage(&path).unwrap();
        assert_eq!(report.valid_len, clean_len);
        assert_eq!(report.frames_kept, 2);
        assert!(report.quarantined_bytes > 0);
        assert!(report.first_bad_offset.is_none(), "a torn tail is not corruption");
        assert!(report.quarantine_path.exists());
        assert_eq!(Journal::load(&path).unwrap().evals.len(), 1);

        // IoError / DiskFull: nothing reaches the file.
        for fault in [IoFault::IoError, IoFault::DiskFull] {
            let path = dir.join(format!("{fault}.jsonl"));
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            let before = std::fs::metadata(&path).unwrap().len();
            let plan = Arc::new(FaultPlan::new(3).script(JOURNAL_APPEND_SITE, 0, fault));
            writer.set_io_site(IoSite::new(plan, JOURNAL_APPEND_SITE));
            assert!(writer.append_eval(&entry).is_err());
            drop(writer);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
            assert_eq!(Journal::load(&path).unwrap().frames, 1);
        }

        // FsyncFail: the frame lands whole (the pessimistic durable case)
        // but the append still errors.
        let path = dir.join("fsync.jsonl");
        let mut writer = JournalWriter::create(&path, &config).unwrap();
        let plan = Arc::new(FaultPlan::new(3).script(JOURNAL_APPEND_SITE, 0, IoFault::FsyncFail));
        writer.set_io_site(IoSite::new(plan, JOURNAL_APPEND_SITE));
        assert!(writer.append_eval(&entry).is_err());
        drop(writer);
        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.evals.len(), 1, "fsync-failed frame is durable here");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_reports_damage_and_salvage_truncates_to_the_prefix() {
        let config = ExperimentConfig::smoke();
        let dir =
            std::env::temp_dir().join(format!("dphpo-journal-verify-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("verify.jsonl");
        {
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            for slot in 0..3 {
                writer.append_eval(&EvalEntry { slot, ..sample_eval() }).unwrap();
            }
        }
        let clean = verify(&path).unwrap();
        assert_eq!(clean.version, JOURNAL_VERSION);
        assert_eq!(clean.frames, 4);
        assert_eq!(clean.evals, 3);
        assert!(!clean.damaged());
        assert_eq!(clean.valid_len, clean.total_len);

        // Flip a byte in the third frame: verify pinpoints it, load
        // refuses, salvage keeps exactly the two frames before it.
        let mut bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let third_frame_offset: usize =
            text.split_inclusive('\n').take(2).map(str::len).sum();
        bytes[third_frame_offset + FRAME_PREFIX_LEN + 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let damaged = verify(&path).unwrap();
        assert!(damaged.damaged());
        assert_eq!(damaged.first_corrupt_offset, Some(third_frame_offset as u64));
        assert_eq!(damaged.frames, 2);
        assert!(Journal::load(&path).is_err());
        let report = salvage(&path).unwrap();
        assert_eq!(report.frames_kept, 2);
        assert_eq!(report.first_bad_offset, Some(third_frame_offset as u64));
        assert_eq!(report.valid_len, third_frame_offset as u64);
        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.evals.len(), 1);
        // Salvage is idempotent: a second pass finds a clean file.
        let again = salvage(&path).unwrap();
        assert_eq!(again.quarantined_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_utf8_is_refused_by_load_and_quarantined_by_salvage() {
        let config = ExperimentConfig::smoke();
        let dir =
            std::env::temp_dir().join(format!("dphpo-journal-utf8-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("utf8.jsonl");
        {
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            writer.append_eval(&sample_eval()).unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xff, 0xfe, 0xfd]).unwrap();
        drop(f);
        let err = Journal::load(&path).unwrap_err();
        assert!(err.message.contains("UTF-8"), "{err}");
        let report = salvage(&path).unwrap();
        assert_eq!(report.valid_len, clean_len);
        assert_eq!(report.quarantined_bytes, 3);
        assert_eq!(report.first_bad_offset, Some(clean_len));
        assert!(Journal::load(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handwritten_v1_journal_loads_and_upgrades_to_v2() {
        let config = ExperimentConfig::smoke();
        let dir = std::env::temp_dir().join(format!("dphpo-journal-v1-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("v1.jsonl");
        // A v1 journal is bare JSONL with a version-1 header.
        let header = Json::object(vec![
            ("type", Json::String("header".into())),
            ("version", Json::Number(1.0)),
            ("config", hex_u64(config_fingerprint(&config))),
            ("n_runs", Json::Number(config.n_runs as f64)),
            ("pop_size", Json::Number(config.pop_size as f64)),
            ("generations", Json::Number(config.generations as f64)),
            ("master_seed", hex_u64(config.master_seed)),
        ])
        .to_compact();
        let eval_payload = sample_eval().to_json().to_compact();
        std::fs::write(&path, format!("{header}\n{eval_payload}\n")).unwrap();

        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.version, 1);
        assert_eq!(journal.frames, 2);
        assert_eq!(journal.evals.len(), 1);
        journal.check_config(&config).unwrap();

        // open_append upgrades in place: same records, v2 frames, and the
        // writer continues with the right sequence number.
        let mut writer = JournalWriter::open_append(&path, &config, &journal).unwrap();
        writer.append_eval(&EvalEntry { slot: 1, ..sample_eval() }).unwrap();
        drop(writer);
        let upgraded = Journal::load(&path).unwrap();
        assert_eq!(upgraded.version, JOURNAL_VERSION);
        assert_eq!(upgraded.frames, 3);
        assert_eq!(upgraded.evals.len(), 2);
        upgraded.check_config(&config).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().all(|l| l.starts_with("J2 ")), "all frames must be v2");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_entry_round_trips_through_json() {
        let snapshot = SnapshotEntry {
            run: 1,
            arrivals: 8,
            submitted: 11,
            std: vec![0.1, 0.2, 0.3],
            population: vec![evaluated(vec![1.0, 2.0], vec![0.01, 0.2])],
            pending: vec![(9, Individual::new(vec![3.0, 4.0]))],
            archive: vec![evaluated(vec![5.0, 6.0], vec![0.02, 0.1])],
            slots: StreamSlotsState {
                busy: vec![10.0, 12.5],
                lost: vec![0.0, 1.5],
                backoff: vec![0.5, 0.0],
                deaths: 1,
                retried: 1,
                diverged: 0,
                timeout: 1,
                cancelled: 0,
                exhausted: 0,
                baseline_busy: vec![5.0, 6.0],
                baseline_lost: vec![0.0, 0.0],
                baseline_backoff: vec![0.0, 0.0],
                baseline_deaths: 0,
                baseline_retried: 0,
                baseline_diverged: 0,
                baseline_timeout: 1,
                baseline_cancelled: 0,
                baseline_exhausted: 0,
            },
            history: vec![GenerationRecord {
                generation: 0,
                failures: 1,
                population: vec![evaluated(vec![1.0, 2.0], vec![0.01, 0.2])],
            }],
            epoch_reports: vec![PoolReport {
                makespan_minutes: 70.0,
                per_worker_minutes: vec![70.0, 35.0],
                busy_minutes: vec![70.0, 35.0],
                idle_minutes: vec![0.0, 35.0],
                lost_death_minutes: vec![0.0, 0.0],
                lost_speculation_minutes: vec![0.0, 0.0],
                backoff_slot_minutes: vec![0.0, 0.0],
                wall_minutes: 70.0,
                ..PoolReport::default()
            }],
            epoch_failures: 2,
            epoch_churn: (5, 3, 1),
            epoch_sim_offset: 123.5,
            status_rows: vec![GenStatus {
                generation: 0,
                evaluations: 4,
                hypervolume: 0.005,
                ..GenStatus::default()
            }],
        };
        let j = snapshot.to_json();
        let back = SnapshotEntry::from_json(&j).unwrap();
        assert_eq!(back.run, snapshot.run);
        assert_eq!(back.arrivals, snapshot.arrivals);
        assert_eq!(back.submitted, snapshot.submitted);
        assert_eq!(back.std, snapshot.std);
        assert_eq!(back.pending.len(), 1);
        assert_eq!(back.pending[0].0, 9);
        assert_eq!(back.pending[0].1.genome, vec![3.0, 4.0]);
        assert_eq!(back.slots, snapshot.slots);
        assert_eq!(back.history.len(), 1);
        assert_eq!(back.epoch_churn, (5, 3, 1));
        assert_eq!(back.epoch_sim_offset, 123.5);
        assert_eq!(back.status_rows, snapshot.status_rows);
        // Serialize → parse → serialize is a fixed point.
        assert_eq!(back.to_json().to_compact(), j.to_compact());
    }

    #[test]
    fn compact_keeps_the_last_snapshot_and_the_arrival_suffix() {
        let config = ExperimentConfig::smoke();
        let dir =
            std::env::temp_dir().join(format!("dphpo-journal-compact-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("compact.jsonl");
        let steady_eval = |arrival: usize| EvalEntry {
            slot: arrival,
            arrival: Some(arrival),
            ..sample_eval()
        };
        let snapshot = |arrivals: usize| SnapshotEntry {
            run: 0,
            arrivals,
            submitted: arrivals,
            std: vec![0.1],
            population: Vec::new(),
            pending: Vec::new(),
            archive: Vec::new(),
            slots: StreamSlotsState {
                busy: vec![0.0],
                lost: vec![0.0],
                backoff: vec![0.0],
                baseline_busy: vec![0.0],
                baseline_lost: vec![0.0],
                baseline_backoff: vec![0.0],
                ..StreamSlotsState::default()
            },
            history: Vec::new(),
            epoch_reports: Vec::new(),
            epoch_failures: 0,
            epoch_churn: (0, 0, 0),
            epoch_sim_offset: 0.0,
            status_rows: Vec::new(),
        };
        {
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            for arrival in 0..4 {
                writer.append_eval(&steady_eval(arrival)).unwrap();
            }
            writer.append_snapshot(&snapshot(4)).unwrap();
            for arrival in 4..6 {
                writer.append_eval(&steady_eval(arrival)).unwrap();
            }
        }
        let before = verify(&path).unwrap();
        assert_eq!(before.frames, 8);
        let report = compact(&path).unwrap();
        assert_eq!(report.frames_before, 8);
        // header + snapshot + 2 suffix evals
        assert_eq!(report.frames_after, 4);
        assert!(report.bytes_after < report.bytes_before);
        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.frames, 4);
        assert_eq!(journal.evals.len(), 2);
        assert_eq!(journal.last_snapshot_for(0).unwrap().arrivals, 4);
        assert!(journal.evals.values().all(|e| e.arrival.unwrap() >= 4));
        // Compaction is idempotent.
        let again = compact(&path).unwrap();
        assert_eq!(again.frames_after, again.frames_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_keeps_every_generational_boundary_and_the_unfinished_suffix() {
        let config = ExperimentConfig::smoke();
        let dir = std::env::temp_dir()
            .join(format!("dphpo-journal-compact-gen-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("compact_gen.jsonl");
        let gen_entry = |generation: usize| GenEntry {
            run: 0,
            record: GenerationRecord { generation, failures: 0, population: Vec::new() },
            std: vec![0.1],
            evaluations: 4 * (generation + 1),
            rng_state: [1, 2, 3, 4],
            archive: Vec::new(),
            report: PoolReport::default(),
        };
        {
            let mut writer = JournalWriter::create(&path, &config).unwrap();
            for generation in 0..2usize {
                for slot in 0..2 {
                    writer
                        .append_eval(&EvalEntry {
                            gen: generation,
                            slot,
                            ..sample_eval()
                        })
                        .unwrap();
                }
                writer.append_generation(&gen_entry(generation)).unwrap();
            }
            // Unfinished generation 2: evals, no boundary yet.
            writer.append_eval(&EvalEntry { gen: 2, slot: 0, ..sample_eval() }).unwrap();
        }
        let report = compact(&path).unwrap();
        assert_eq!(report.frames_before, 8);
        // header + 2 boundaries + 1 suffix eval; the 4 boundary-covered
        // evals are dropped.
        assert_eq!(report.frames_after, 4);
        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.boundaries_for(0).unwrap().len(), 2);
        assert_eq!(journal.evals.len(), 1);
        assert!(journal.evals.contains_key(&(0, 2, 0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_campaign_knob() {
        let base = ExperimentConfig::smoke();
        let f0 = config_fingerprint(&base);
        let mut c = base.clone();
        c.master_seed = 8;
        assert_ne!(config_fingerprint(&c), f0);
        let mut c = base.clone();
        c.pop_size += 1;
        assert_ne!(config_fingerprint(&c), f0);
        let mut c = base.clone();
        c.fault_probability = 0.5;
        assert_ne!(config_fingerprint(&c), f0);
        let mut c = base.clone();
        c.base_train_config.num_steps += 1;
        assert_ne!(config_fingerprint(&c), f0);
        let mut c = base.clone();
        c.gen_config.n_atoms += 10;
        assert_ne!(config_fingerprint(&c), f0);
        let mut c = base.clone();
        c.mode = CampaignMode::SteadyState;
        assert_ne!(config_fingerprint(&c), f0);
        assert_eq!(config_fingerprint(&base.clone()), f0);
    }

    #[test]
    fn arrival_index_round_trips_and_is_absent_from_generational_bytes() {
        let mut entry = EvalEntry {
            run: 0,
            gen: 0,
            slot: 5,
            seed: 9,
            genome: vec![1.0, 2.0],
            fault: FaultKind::None,
            fault_step: None,
            fault_loss: None,
            objectives: Some(vec![0.1, 0.2]),
            minutes: 1.5,
            attempts: 1,
            lcurve_tail: Vec::new(),
            arrival: None,
        };
        // Generational entries must not grow a key: old readers and the
        // checked-in journal bytes both depend on the exact encoding.
        assert!(!entry.to_json().to_compact().contains("arrival"));
        entry.arrival = Some(17);
        let line = entry.to_json().to_compact();
        assert!(line.contains("\"arrival\":17"));
        let back = EvalEntry::from_json(&entry.to_json()).unwrap();
        assert_eq!(back.arrival, Some(17));
        assert_eq!(back.to_json().to_compact(), line);
    }

    #[test]
    fn steady_and_generational_journals_reject_each_other() {
        let generational = ExperimentConfig::smoke();
        let mut steady = ExperimentConfig::smoke();
        steady.mode = CampaignMode::SteadyState;
        let dir =
            std::env::temp_dir().join(format!("dphpo-journal-mode-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        for (write_as, resume_as) in
            [(&generational, &steady), (&steady, &generational)]
        {
            let path = dir.join("mode.jsonl");
            drop(JournalWriter::create(&path, write_as).unwrap());
            let journal = Journal::load(&path).unwrap();
            journal.check_config(write_as).unwrap();
            let err = journal.check_config(resume_as).unwrap_err();
            assert!(err.to_string().contains("stale journal"), "{err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
