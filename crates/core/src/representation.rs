//! The seven-gene real-valued representation of Table 1.

/// Gene indices into the seven-element genome.
pub mod gene {
    /// Start learning rate.
    pub const START_LR: usize = 0;
    /// Stop learning rate.
    pub const STOP_LR: usize = 1;
    /// Descriptor radial cutoff (Å).
    pub const RCUT: usize = 2;
    /// Switching-onset radius (Å).
    pub const RCUT_SMTH: usize = 3;
    /// Learning-rate scaling scheme (decoded to {linear, sqrt, none}).
    pub const SCALE_BY_WORKER: usize = 4;
    /// Descriptor activation (decoded to one of five functions).
    pub const DESC_ACTIV_FUNC: usize = 5;
    /// Fitting activation (decoded to one of five functions).
    pub const FITTING_ACTIV_FUNC: usize = 6;
}

/// Number of genes.
pub const N_GENES: usize = 7;

/// Human-readable gene names, in genome order (used by Fig. 3 exports).
pub const GENE_NAMES: [&str; N_GENES] = [
    "start_lr",
    "stop_lr",
    "rcut",
    "rcut_smth",
    "scale_by_worker",
    "desc_activ_func",
    "fitting_activ_func",
];

/// The representation: initialisation ranges, hard bounds, and initial
/// mutation standard deviations — Table 1 of the paper, verbatim.
#[derive(Clone, Debug)]
pub struct DeepMDRepresentation;

impl DeepMDRepresentation {
    /// Table 1, column 2: ranges in which random initial gene values are
    /// generated.
    pub fn init_ranges() -> Vec<(f64, f64)> {
        vec![
            (3.51e-8, 0.01),   // start_lr
            (3.51e-8, 0.0001), // stop_lr
            (6.0, 12.0),       // rcut
            (2.0, 6.0),        // rcut_smth
            (0.0, 3.0),        // scale_by_worker
            (0.0, 5.0),        // desc_activ_func
            (0.0, 5.0),        // fitting_activ_func
        ]
    }

    /// Hard bounds applied by the Gaussian mutation operator
    /// (`hard_bounds=DeepMDRepresentation.bounds` in Listing 1).
    pub fn bounds() -> Vec<(f64, f64)> {
        Self::init_ranges()
    }

    /// Table 1, column 3: initial Gaussian mutation standard deviations.
    pub fn initial_std() -> Vec<f64> {
        vec![0.001, 0.0001, 0.0625, 0.0625, 0.0625, 0.0625, 0.0625]
    }

    /// The per-generation σ annealing factor (§2.2.3).
    pub const ANNEAL_FACTOR: f64 = 0.85;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_dimensions_agree() {
        assert_eq!(DeepMDRepresentation::init_ranges().len(), N_GENES);
        assert_eq!(DeepMDRepresentation::bounds().len(), N_GENES);
        assert_eq!(DeepMDRepresentation::initial_std().len(), N_GENES);
        assert_eq!(GENE_NAMES.len(), N_GENES);
    }

    #[test]
    fn table_1_values_match_paper() {
        let ranges = DeepMDRepresentation::init_ranges();
        assert_eq!(ranges[gene::START_LR], (3.51e-8, 0.01));
        assert_eq!(ranges[gene::STOP_LR], (3.51e-8, 0.0001));
        assert_eq!(ranges[gene::RCUT], (6.0, 12.0));
        assert_eq!(ranges[gene::RCUT_SMTH], (2.0, 6.0));
        assert_eq!(ranges[gene::SCALE_BY_WORKER], (0.0, 3.0));
        assert_eq!(ranges[gene::DESC_ACTIV_FUNC], (0.0, 5.0));
        assert_eq!(ranges[gene::FITTING_ACTIV_FUNC], (0.0, 5.0));
        let std = DeepMDRepresentation::initial_std();
        assert_eq!(std[gene::START_LR], 0.001);
        assert_eq!(std[gene::STOP_LR], 0.0001);
        assert!(std[2..].iter().all(|&s| s == 0.0625));
    }

    #[test]
    fn ranges_are_well_formed() {
        for (lo, hi) in DeepMDRepresentation::init_ranges() {
            assert!(lo < hi);
        }
    }

    #[test]
    fn rcut_ranges_cannot_invert() {
        // rcut_smth ∈ (2, 6) is always strictly below rcut ∈ (6, 12), so
        // the decoded configuration never violates rcut_smth < rcut.
        let ranges = DeepMDRepresentation::init_ranges();
        assert!(ranges[gene::RCUT_SMTH].1 <= ranges[gene::RCUT].0);
    }
}
