//! Campaign-level deterministic profiling: journal-derived attribution
//! trees and atomic `profile.json` / `profile.folded` artifacts.
//!
//! The campaign profile is a pure function of data the write-ahead journal
//! already persists — each generation's [`GenerationRecord`] (population
//! with per-individual `eval_minutes` and penalty fitness) and its
//! [`PoolReport`] (the scheduler's busy/idle/backoff/lost slot partition).
//! It deliberately does **not** fold the live span stream: replayed
//! evaluations emit no training events, so a span-derived profile would
//! differ between an uninterrupted campaign and a killed-and-resumed one.
//! Deriving from the journal instead extends the §11/§12 determinism
//! contract: `profile.json` and `profile.folded` are byte-identical across
//! kill+resume, re-runs, and profiling-on/off status comparisons (see
//! DESIGN.md §14).
//!
//! Tree shape (all sums exact, via [`dphpo_obs::metrics::fsum`]):
//!
//! ```text
//! campaign                      structural (count 0)
//! └─ run{r}                     structural (count 0)
//!    └─ gen{g}                  count 1, self 0 — inclusive = slot capacity
//!       ├─ busy                 self = busy − attributed eval minutes
//!       │  ├─ eval.ok           count = non-penalty evals, self = Σ minutes
//!       │  └─ eval.failed       count = penalty evals, self = Σ minutes
//!       ├─ idle                 count = worker slots
//!       ├─ backoff              count = worker slots
//!       ├─ lost.death           count = worker slots
//!       └─ lost.speculation     count = worker slots
//! ```
//!
//! By the scheduler's partition invariant, a generation's inclusive time is
//! exactly `wall × slots` worker-minutes. Children sort lexicographically by
//! name ([`ProfileNode::branch`]'s contract), which is what makes the
//! artifacts independent of insertion order.

use std::collections::BTreeMap;
use std::path::Path;

use dphpo_dnnp::StepBudget;
use dphpo_dnnp::Json;
use dphpo_evo::nsga2::GenerationRecord;
use dphpo_hpc::PoolReport;
use dphpo_obs::metrics::{fsum, ExactSum};
use dphpo_obs::profile::{folded, ProfileNode, PROFILE_SCHEMA};

use crate::campaign_report::write_atomic;
use crate::experiment::ExperimentResult;

/// Fold one generation boundary into its attribution subtree. Every field
/// is read from the journaled record/report pair, so replaying a journal
/// reproduces the node bit-for-bit.
pub fn generation_node(record: &GenerationRecord, report: &PoolReport) -> ProfileNode {
    let slots = report.busy_minutes.len() as u64;
    let busy = fsum(report.busy_minutes.iter().copied());
    let idle = fsum(report.idle_minutes.iter().copied());
    let backoff = fsum(report.backoff_slot_minutes.iter().copied());
    let lost_death = fsum(report.lost_death_minutes.iter().copied());
    let lost_spec = fsum(report.lost_speculation_minutes.iter().copied());

    let mut ok_count = 0u64;
    let mut failed_count = 0u64;
    let mut ok_minutes = ExactSum::default();
    let mut failed_minutes = ExactSum::default();
    for ind in &record.population {
        let minutes = ind.eval_minutes.unwrap_or(0.0);
        if ind.fitness.as_ref().is_some_and(|f| f.is_penalty()) {
            failed_count += 1;
            failed_minutes.add(minutes);
        } else {
            ok_count += 1;
            ok_minutes.add(minutes);
        }
    }
    // Busy self-time is scheduler overhead the evaluations themselves do
    // not account for (duplicate speculative wins, timeout truncation
    // residue); it can be negative when attributed minutes exceed the
    // busy partition, which the JSON keeps as a diagnostic.
    let busy_self = fsum([busy, -ok_minutes.value(), -failed_minutes.value()]);
    let busy_node = ProfileNode::branch(
        "busy",
        slots,
        busy_self,
        vec![
            ProfileNode::leaf("eval.ok", ok_count, ok_minutes.value()),
            ProfileNode::leaf("eval.failed", failed_count, failed_minutes.value()),
        ],
    );
    ProfileNode::branch(
        format!("gen{}", record.generation),
        1,
        0.0,
        vec![
            busy_node,
            ProfileNode::leaf("idle", slots, idle),
            ProfileNode::leaf("backoff", slots, backoff),
            ProfileNode::leaf("lost.death", slots, lost_death),
            ProfileNode::leaf("lost.speculation", slots, lost_spec),
        ],
    )
}

/// One run's subtree: a structural `run{r}` node over its generation nodes.
pub fn run_node(run: usize, rows: Vec<ProfileNode>) -> ProfileNode {
    ProfileNode::branch(format!("run{run}"), 0, 0.0, rows)
}

/// The campaign root over per-run generation rows (keyed by run index).
pub fn campaign_node(runs: &BTreeMap<usize, Vec<ProfileNode>>) -> ProfileNode {
    let nodes = runs.iter().map(|(run, rows)| run_node(*run, rows.clone())).collect();
    ProfileNode::branch("campaign", 0, 0.0, nodes)
}

/// Build the full attribution tree from a finished experiment — the same
/// tree the live [`crate::experiment::Campaign`] profiler writes, derived
/// here from the result's histories and pool reports (used by `fig1
/// --profile` to append report tables).
pub fn campaign_profile(result: &ExperimentResult) -> ProfileNode {
    let mut runs = BTreeMap::new();
    for (idx, (run, reports)) in result.runs.iter().zip(&result.pool_reports).enumerate() {
        let rows =
            run.history.iter().zip(reports).map(|(rec, rep)| generation_node(rec, rep)).collect();
        runs.insert(idx, rows);
    }
    campaign_node(&runs)
}

fn node_json(node: &ProfileNode) -> Json {
    Json::object(vec![
        ("name", Json::String(node.name.clone())),
        ("count", Json::Number(node.count as f64)),
        ("self_min", Json::Number(node.self_min)),
        ("inclusive_min", Json::Number(node.inclusive_min)),
        ("children", Json::Array(node.children.iter().map(node_json).collect())),
    ])
}

fn budget_json(budget: &StepBudget) -> Json {
    Json::Array(
        budget
            .phases
            .iter()
            .map(|p| {
                Json::object(vec![
                    ("phase", Json::String(p.phase.to_string())),
                    ("nodes", Json::Number(p.nodes as f64)),
                    (
                        "kernels",
                        Json::object(
                            p.kernels
                                .iter()
                                .map(|(k, c)| (*k, Json::Number(*c as f64)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Render the profile document (schema [`PROFILE_SCHEMA`]): the attribution
/// tree on the simulated clock, plus the per-phase tape-node step budget
/// when one was computed. Deterministic pretty JSON — same tree, same
/// bytes.
pub fn profile_json(root: &ProfileNode, budget: Option<&StepBudget>) -> String {
    let mut fields = vec![
        ("schema", Json::String(PROFILE_SCHEMA.into())),
        ("clock", Json::String("sim_minutes".into())),
        ("root", node_json(root)),
    ];
    if let Some(budget) = budget {
        fields.push(("step_budget", budget_json(budget)));
    }
    format!("{}\n", Json::object(fields))
}

/// Rewrite `profile.json` and `profile.folded` in `dir`, each atomically
/// (temp file + fsync + rename, like `campaign_status.json`). Called at
/// every generation/epoch boundary; a crash leaves either the previous or
/// the new artifacts, never torn ones.
pub fn write_profile_atomic(
    dir: &Path,
    root: &ProfileNode,
    budget: Option<&StepBudget>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    write_atomic(&dir.join("profile.json"), &profile_json(root, budget))?;
    write_atomic(&dir.join("profile.folded"), &folded(root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_evo::{Fitness, Individual};
    use dphpo_obs::profile::markdown_table;

    fn ind(minutes: f64, penalty: bool) -> Individual {
        let mut i = Individual::new(vec![0.0]);
        i.fitness = Some(if penalty {
            Fitness::penalty(2)
        } else {
            Fitness::new(vec![0.01, 0.3])
        });
        i.eval_minutes = Some(minutes);
        i
    }

    fn sample() -> (GenerationRecord, PoolReport) {
        let record = GenerationRecord {
            generation: 0,
            population: vec![ind(10.0, false), ind(20.0, false), ind(5.0, true)],
            failures: 1,
        };
        let report = PoolReport {
            makespan_minutes: 40.0,
            wall_minutes: 40.0,
            busy_minutes: vec![30.0, 7.0],
            idle_minutes: vec![10.0, 33.0],
            lost_death_minutes: vec![0.0, 0.0],
            lost_speculation_minutes: vec![0.0, 0.0],
            backoff_slot_minutes: vec![0.0, 0.0],
            per_worker_minutes: vec![30.0, 7.0],
            ..PoolReport::default()
        };
        (record, report)
    }

    #[test]
    fn generation_node_partitions_slot_capacity() {
        let (record, report) = sample();
        let node = generation_node(&record, &report);
        // Inclusive time is the slot capacity: wall × slots.
        assert_eq!(node.inclusive_min, 80.0);
        let busy = node.children.iter().find(|c| c.name == "busy").unwrap();
        assert_eq!(busy.inclusive_min, 37.0);
        assert_eq!(busy.self_min, 2.0); // 37 − 30 ok − 5 failed
        let ok = busy.children.iter().find(|c| c.name == "eval.ok").unwrap();
        assert_eq!((ok.count, ok.self_min), (2, 30.0));
        let failed = busy.children.iter().find(|c| c.name == "eval.failed").unwrap();
        assert_eq!((failed.count, failed.self_min), (1, 5.0));
    }

    #[test]
    fn profile_json_is_deterministic_and_schema_tagged() {
        let (record, report) = sample();
        let mut runs = BTreeMap::new();
        runs.insert(0usize, vec![generation_node(&record, &report)]);
        let root = campaign_node(&runs);
        let text = profile_json(&root, None);
        assert!(text.contains("\"schema\": \"dphpo-profile-v1\""));
        assert!(text.contains("\"clock\": \"sim_minutes\""));
        assert!(!text.contains("step_budget"));
        assert_eq!(text, profile_json(&root, None));
        // The folded rendering keeps the structural path intact.
        let out = folded(&root);
        assert!(out.contains("campaign;run0;gen0;busy;eval.ok 1800000000\n"), "{out}");
        // And the markdown table shows the generation row.
        assert!(markdown_table(&root).contains("· · gen0 |"));
    }

    #[test]
    fn atomic_profile_write_leaves_both_artifacts() {
        let dir = std::env::temp_dir().join(format!("dphpo_profile_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (record, report) = sample();
        let mut runs = BTreeMap::new();
        runs.insert(0usize, vec![generation_node(&record, &report)]);
        let root = campaign_node(&runs);
        write_profile_atomic(&dir, &root, None).unwrap();
        write_profile_atomic(&dir, &root, None).unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("profile.json")).unwrap(), profile_json(&root, None));
        assert_eq!(std::fs::read_to_string(dir.join("profile.folded")).unwrap(), folded(&root));
        assert!(!dir.join("profile.json.tmp").exists());
        assert!(!dir.join("profile.folded.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
