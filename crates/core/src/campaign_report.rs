//! Campaign observatory: a deterministic, resumable status surface.
//!
//! Every generation boundary distils two stories into one `CampaignStatus`
//! row — *search quality* (Pareto-archive hypervolume, cardinality, spread,
//! and dominance churn) and *resource efficiency* (the scheduler's
//! busy/idle/backoff/lost utilization partition) — and rewrites
//! `campaign_status.json` atomically. The rows are pure functions of data
//! the write-ahead journal already persists (each generation's population
//! and scheduler report), so a killed-and-resumed campaign reproduces the
//! status file, the end-of-run report, and the Chrome counter tracks
//! byte-for-byte (see DESIGN.md §11 for the determinism contract).
//!
//! The hypervolume convention: objectives are minimised `(energy RMSE
//! eV/atom, force RMSE eV/Å)` and the fixed reference point is
//! [`REFERENCE_POINT`] — the same `(0.03, 0.6)` box the fig1 level plots
//! cull to, so a row's hypervolume is directly comparable across
//! generations, runs, and campaigns.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use dphpo_dnnp::Json;
use dphpo_evo::nsga2::GenerationRecord;
use dphpo_evo::{front_stats_2d, ArchiveChurn, FrontStats, ParetoArchive};
use dphpo_hpc::PoolReport;
use dphpo_obs::chrome::{render, TraceEvent, US_PER_MIN};
use dphpo_obs::cats;

use crate::experiment::ExperimentConfig;

/// Schema tag written into `campaign_status.json`.
pub const STATUS_SCHEMA: &str = "dphpo-campaign-status-v1";

/// Fixed hypervolume reference point `(energy RMSE eV/atom, force RMSE
/// eV/Å)` — the fig1 level-plot axis limits, beyond which the paper culls
/// outliers.
pub const REFERENCE_POINT: (f64, f64) = (0.03, 0.6);

/// One generation boundary's observatory row: search quality plus the
/// utilization partition, every field a deterministic function of the
/// journaled generation record and scheduler report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GenStatus {
    /// Generation index (0 = the random initial generation).
    pub generation: usize,
    /// Evaluations submitted this generation (population size).
    pub evaluations: usize,
    /// Evaluations that came back as MAXINT penalties.
    pub failures: usize,
    /// Archive hypervolume against [`REFERENCE_POINT`] after this
    /// generation's population was absorbed.
    pub hypervolume: f64,
    /// Archive cardinality at the boundary.
    pub cardinality: usize,
    /// Front spread (gap uniformity; 0 = perfectly uniform).
    pub spread: f64,
    /// Dominance churn: individuals admitted to the archive.
    pub added: usize,
    /// Dominance churn: archive members evicted by admissions.
    pub evicted: usize,
    /// Scheduler makespan of this generation's batch, minutes.
    pub makespan_minutes: f64,
    /// Backoff-inclusive wall clock of the batch, minutes.
    pub wall_minutes: f64,
    /// Σ busy minutes across worker slots.
    pub busy_minutes: f64,
    /// Σ idle minutes across worker slots.
    pub idle_minutes: f64,
    /// Σ retry-backoff minutes across worker slots.
    pub backoff_minutes: f64,
    /// Σ minutes lost to dead primary attempts.
    pub lost_death_minutes: f64,
    /// Σ minutes lost to dying speculative twins.
    pub lost_speculation_minutes: f64,
    /// Busy share of worker-minutes capacity, percent.
    pub utilization_pct: f64,
    /// Worker deaths on primary attempts.
    pub deaths: usize,
    /// Tasks retried at least once.
    pub retried: usize,
    /// Straggler tasks granted a speculative twin.
    pub speculated: usize,
    /// Speculative twins killed by the fault plan.
    pub speculative_deaths: usize,
    /// Terminal diverged / structural failures.
    pub diverged: usize,
    /// Terminal timeouts.
    pub timeout: usize,
    /// Terminal cancellations.
    pub cancelled: usize,
    /// Tasks that exhausted their retry budget.
    pub exhausted: usize,
}

/// One run's status rows, oldest generation first.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStatus {
    /// Run index (Chrome-trace process id).
    pub run: usize,
    /// Rows for the generation boundaries reached so far.
    pub generations: Vec<GenStatus>,
}

/// The whole campaign's live status: configuration echo plus per-run rows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignStatus {
    /// Independent EA deployments configured.
    pub n_runs: usize,
    /// Population size per generation.
    pub pop_size: usize,
    /// EA steps after the random initial generation.
    pub generations: usize,
    /// Hypervolume reference point `(energy, force)`.
    pub reference: (f64, f64),
    /// Per-run rows (a run appears once its first boundary lands).
    pub runs: Vec<RunStatus>,
}

impl CampaignStatus {
    /// An empty status for `config`, rows to be filled per boundary.
    pub fn new(config: &ExperimentConfig) -> Self {
        CampaignStatus {
            n_runs: config.n_runs,
            pop_size: config.pop_size,
            generations: config.generations,
            reference: REFERENCE_POINT,
            runs: Vec::new(),
        }
    }

    /// Replace (or install) one run's rows.
    pub fn set_run(&mut self, run: usize, rows: Vec<GenStatus>) {
        if let Some(existing) = self.runs.iter_mut().find(|r| r.run == run) {
            existing.generations = rows;
        } else {
            self.runs.push(RunStatus { run, generations: rows });
            self.runs.sort_by_key(|r| r.run);
        }
    }

    /// Append one boundary row to a run.
    pub fn push_row(&mut self, run: usize, row: GenStatus) {
        if let Some(existing) = self.runs.iter_mut().find(|r| r.run == run) {
            existing.generations.push(row);
        } else {
            self.runs.push(RunStatus { run, generations: vec![row] });
            self.runs.sort_by_key(|r| r.run);
        }
    }
}

/// Build one boundary row from the live archive state and this
/// generation's record, churn, and scheduler report.
pub fn generation_row(
    record: &GenerationRecord,
    archive: &ParetoArchive,
    churn: ArchiveChurn,
    report: &PoolReport,
) -> GenStatus {
    let stats: FrontStats = front_stats_2d(&archive.objective_pairs(), REFERENCE_POINT);
    let busy: f64 = report.busy_minutes.iter().sum();
    let idle: f64 = report.idle_minutes.iter().sum();
    let backoff: f64 = report.backoff_slot_minutes.iter().sum();
    let lost_death: f64 = report.lost_death_minutes.iter().sum();
    let lost_spec: f64 = report.lost_speculation_minutes.iter().sum();
    let capacity = report.wall_minutes * report.busy_minutes.len() as f64;
    GenStatus {
        generation: record.generation,
        evaluations: record.population.len(),
        failures: record.failures,
        hypervolume: stats.hypervolume,
        cardinality: stats.cardinality,
        spread: stats.spread,
        added: churn.added,
        evicted: churn.evicted,
        makespan_minutes: report.makespan_minutes,
        wall_minutes: report.wall_minutes,
        busy_minutes: busy,
        idle_minutes: idle,
        backoff_minutes: backoff,
        lost_death_minutes: lost_death,
        lost_speculation_minutes: lost_spec,
        utilization_pct: if capacity > 0.0 { busy / capacity * 100.0 } else { 0.0 },
        deaths: report.worker_deaths,
        retried: report.retried_tasks,
        speculated: report.speculated_tasks,
        speculative_deaths: report.speculative_deaths,
        diverged: report.diverged_tasks,
        timeout: report.timeout_tasks,
        cancelled: report.cancelled_tasks,
        exhausted: report.exhausted_tasks,
    }
}

/// Rebuild one run's rows from its generation records and reports by
/// replaying the archive offers from scratch — the exact operation
/// sequence the live run performed, so a resumed campaign's rows are
/// bit-identical to the uninterrupted run's.
pub fn replay_rows(records: &[GenerationRecord], reports: &[PoolReport]) -> Vec<GenStatus> {
    let mut archive = ParetoArchive::new();
    records
        .iter()
        .zip(reports)
        .map(|(record, report)| {
            let churn = archive.offer_all_counted(&record.population);
            generation_row(record, &archive, churn, report)
        })
        .collect()
}

pub(crate) fn json_of_row(row: &GenStatus) -> Json {
    Json::object(vec![
        ("generation", Json::Number(row.generation as f64)),
        ("evaluations", Json::Number(row.evaluations as f64)),
        ("failures", Json::Number(row.failures as f64)),
        ("hypervolume", Json::Number(row.hypervolume)),
        ("cardinality", Json::Number(row.cardinality as f64)),
        ("spread", Json::Number(row.spread)),
        ("added", Json::Number(row.added as f64)),
        ("evicted", Json::Number(row.evicted as f64)),
        ("makespan_minutes", Json::Number(row.makespan_minutes)),
        ("wall_minutes", Json::Number(row.wall_minutes)),
        ("busy_minutes", Json::Number(row.busy_minutes)),
        ("idle_minutes", Json::Number(row.idle_minutes)),
        ("backoff_minutes", Json::Number(row.backoff_minutes)),
        ("lost_death_minutes", Json::Number(row.lost_death_minutes)),
        ("lost_speculation_minutes", Json::Number(row.lost_speculation_minutes)),
        ("utilization_pct", Json::Number(row.utilization_pct)),
        ("deaths", Json::Number(row.deaths as f64)),
        ("retried", Json::Number(row.retried as f64)),
        ("speculated", Json::Number(row.speculated as f64)),
        ("speculative_deaths", Json::Number(row.speculative_deaths as f64)),
        ("diverged", Json::Number(row.diverged as f64)),
        ("timeout", Json::Number(row.timeout as f64)),
        ("cancelled", Json::Number(row.cancelled as f64)),
        ("exhausted", Json::Number(row.exhausted as f64)),
    ])
}

/// Render the status as deterministic pretty JSON (sorted keys, shortest
/// round-trip numbers, trailing newline).
pub fn status_json(status: &CampaignStatus) -> String {
    let runs: Vec<Json> = status
        .runs
        .iter()
        .map(|r| {
            Json::object(vec![
                ("run", Json::Number(r.run as f64)),
                ("generations", Json::Array(r.generations.iter().map(json_of_row).collect())),
            ])
        })
        .collect();
    let doc = Json::object(vec![
        ("schema", Json::String(STATUS_SCHEMA.into())),
        ("n_runs", Json::Number(status.n_runs as f64)),
        ("pop_size", Json::Number(status.pop_size as f64)),
        ("generations", Json::Number(status.generations as f64)),
        (
            "reference_point",
            Json::Array(vec![
                Json::Number(status.reference.0),
                Json::Number(status.reference.1),
            ]),
        ),
        ("runs", Json::Array(runs)),
    ]);
    format!("{doc}\n")
}

/// Rewrite `path` atomically and durably: the new contents land in a
/// sibling temp file first (written and fsynced), the *parent directory*
/// is fsynced so the temp file's existence survives a power loss, the temp
/// file is renamed over the target, and the directory is fsynced again so
/// the rename itself is durable. A reader (or a crash) never sees a torn
/// status, and after a crash the file is either the old or the new bytes.
pub fn write_status_atomic(path: &Path, status: &CampaignStatus) -> std::io::Result<()> {
    write_atomic(path, &status_json(status))
}

/// The atomic-rewrite primitive behind [`write_status_atomic`] (and the
/// profile artifacts): write-and-fsync a `<name>.tmp` sibling, fsync the
/// parent directory, rename over the target, fsync the directory again.
pub(crate) fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    sync_parent_dir(path)?;
    fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Fsync the directory containing `path`, making directory-entry changes
/// (a new file, a rename) durable. A bare relative path has an empty
/// parent, which means the current directory.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    fs::File::open(parent)?.sync_all()
}

/// Parse a `campaign_status.json` document back into a [`CampaignStatus`]
/// (used by tooling; the campaign itself never reads the file back).
pub fn parse_status(text: &str) -> Result<CampaignStatus, String> {
    let doc = Json::parse(text).map_err(|e| format!("{e:?}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or_default();
    if schema != STATUS_SCHEMA {
        return Err(format!("unexpected status schema '{schema}'"));
    }
    let num = num_field;
    let reference = match doc.get("reference_point") {
        Some(Json::Array(items)) if items.len() == 2 => (
            items[0].as_f64().unwrap_or(REFERENCE_POINT.0),
            items[1].as_f64().unwrap_or(REFERENCE_POINT.1),
        ),
        _ => REFERENCE_POINT,
    };
    let mut status = CampaignStatus {
        n_runs: num(&doc, "n_runs") as usize,
        pop_size: num(&doc, "pop_size") as usize,
        generations: num(&doc, "generations") as usize,
        reference,
        runs: Vec::new(),
    };
    if let Some(Json::Array(runs)) = doc.get("runs") {
        for r in runs {
            let mut rows = Vec::new();
            if let Some(Json::Array(gens)) = r.get("generations") {
                for g in gens {
                    rows.push(row_from_json(g));
                }
            }
            status.runs.push(RunStatus { run: num(r, "run") as usize, generations: rows });
        }
    }
    Ok(status)
}

fn num_field(j: &Json, k: &str) -> f64 {
    j.get(k).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Parse one [`json_of_row`] object back into a [`GenStatus`]. Missing
/// fields read as zero, matching [`parse_status`]'s tolerance.
pub(crate) fn row_from_json(g: &Json) -> GenStatus {
    let num = num_field;
    GenStatus {
        generation: num(g, "generation") as usize,
        evaluations: num(g, "evaluations") as usize,
        failures: num(g, "failures") as usize,
        hypervolume: num(g, "hypervolume"),
        cardinality: num(g, "cardinality") as usize,
        spread: num(g, "spread"),
        added: num(g, "added") as usize,
        evicted: num(g, "evicted") as usize,
        makespan_minutes: num(g, "makespan_minutes"),
        wall_minutes: num(g, "wall_minutes"),
        busy_minutes: num(g, "busy_minutes"),
        idle_minutes: num(g, "idle_minutes"),
        backoff_minutes: num(g, "backoff_minutes"),
        lost_death_minutes: num(g, "lost_death_minutes"),
        lost_speculation_minutes: num(g, "lost_speculation_minutes"),
        utilization_pct: num(g, "utilization_pct"),
        deaths: num(g, "deaths") as usize,
        retried: num(g, "retried") as usize,
        speculated: num(g, "speculated") as usize,
        speculative_deaths: num(g, "speculative_deaths") as usize,
        diverged: num(g, "diverged") as usize,
        timeout: num(g, "timeout") as usize,
        cancelled: num(g, "cancelled") as usize,
        exhausted: num(g, "exhausted") as usize,
    }
}

/// The end-of-run report: hypervolume trajectory, utilization table, and
/// failure breakdown in markdown — every byte a function of the status.
pub fn markdown_report(status: &CampaignStatus) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Campaign report");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} runs × population {} × {} generations (+1 random); hypervolume \
         reference point (energy, force) = ({}, {}).",
        status.n_runs,
        status.pop_size,
        status.generations,
        status.reference.0,
        status.reference.1
    );
    let _ = writeln!(out);

    let _ = writeln!(out, "## Hypervolume trajectory");
    let _ = writeln!(out);
    let _ = writeln!(out, "| gen | {}mean |", header_cells(status));
    let _ = writeln!(out, "|----:|{}-----:|", "-----:|".repeat(status.runs.len()));
    let max_gens = status.runs.iter().map(|r| r.generations.len()).max().unwrap_or(0);
    for g in 0..max_gens {
        let mut cells = String::new();
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in &status.runs {
            match r.generations.get(g) {
                Some(row) => {
                    let _ = write!(cells, " {:.3e} |", row.hypervolume);
                    sum += row.hypervolume;
                    n += 1;
                }
                None => cells.push_str(" - |"),
            }
        }
        let mean = if n > 0 { sum / n as f64 } else { 0.0 };
        let _ = writeln!(out, "| {g} |{cells} {mean:.3e} |");
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Utilization");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| run | wall min | busy % | idle % | backoff % | lost-death % | lost-spec % |"
    );
    let _ = writeln!(out, "|----:|---------:|-------:|-------:|----------:|-------------:|------------:|");
    let mut totals = UtilizationTotals::default();
    for r in &status.runs {
        let t = UtilizationTotals::of(&r.generations);
        let _ = writeln!(out, "| {} |{}", r.run, t.cells());
        totals.absorb(&t);
    }
    let _ = writeln!(out, "| all |{}", totals.cells());
    let _ = writeln!(out);

    let _ = writeln!(out, "## Failure breakdown");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| run | deaths | retried | speculated | spec-deaths | diverged | timeout | cancelled | exhausted |"
    );
    let _ = writeln!(
        out,
        "|----:|-------:|--------:|-----------:|------------:|---------:|--------:|----------:|----------:|"
    );
    let mut all = [0usize; 8];
    for r in &status.runs {
        let mut f = [0usize; 8];
        for row in &r.generations {
            for (slot, v) in [
                row.deaths,
                row.retried,
                row.speculated,
                row.speculative_deaths,
                row.diverged,
                row.timeout,
                row.cancelled,
                row.exhausted,
            ]
            .into_iter()
            .enumerate()
            {
                f[slot] += v;
                all[slot] += v;
            }
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            r.run, f[0], f[1], f[2], f[3], f[4], f[5], f[6], f[7]
        );
    }
    let _ = writeln!(
        out,
        "| all | {} | {} | {} | {} | {} | {} | {} | {} |",
        all[0], all[1], all[2], all[3], all[4], all[5], all[6], all[7]
    );
    out
}

fn header_cells(status: &CampaignStatus) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for r in &status.runs {
        let _ = write!(s, "run {} | ", r.run);
    }
    s
}

#[derive(Default)]
struct UtilizationTotals {
    wall: f64,
    busy: f64,
    idle: f64,
    backoff: f64,
    lost_death: f64,
    lost_spec: f64,
    capacity: f64,
}

impl UtilizationTotals {
    fn of(rows: &[GenStatus]) -> Self {
        let mut t = UtilizationTotals::default();
        for row in rows {
            t.wall += row.wall_minutes;
            t.busy += row.busy_minutes;
            t.idle += row.idle_minutes;
            t.backoff += row.backoff_minutes;
            t.lost_death += row.lost_death_minutes;
            t.lost_spec += row.lost_speculation_minutes;
            // Capacity (wall × workers) equals the category sum exactly,
            // by the scheduler's partition invariant.
            t.capacity += row.busy_minutes
                + row.idle_minutes
                + row.backoff_minutes
                + row.lost_death_minutes
                + row.lost_speculation_minutes;
        }
        t
    }

    fn absorb(&mut self, other: &UtilizationTotals) {
        self.wall += other.wall;
        self.busy += other.busy;
        self.idle += other.idle;
        self.backoff += other.backoff;
        self.lost_death += other.lost_death;
        self.lost_spec += other.lost_spec;
        self.capacity += other.capacity;
    }

    fn cells(&self) -> String {
        let pct = |v: f64| if self.capacity > 0.0 { v / self.capacity * 100.0 } else { 0.0 };
        format!(
            " {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |",
            self.wall,
            pct(self.busy),
            pct(self.idle),
            pct(self.backoff),
            pct(self.lost_death),
            pct(self.lost_spec)
        )
    }
}

/// Chrome counter tracks derived from the status: per run, `queue depth`
/// and `utilization %` at each generation's start and `hypervolume` at its
/// end, on the simulated clock. Derived from the status — not the live
/// event stream — so a killed-and-resumed campaign exports the same bytes
/// as an uninterrupted one (replayed generations never re-emit live
/// events).
pub fn counter_tracks(status: &CampaignStatus) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for r in &status.runs {
        let pid = r.run as u64;
        let mut clock_min = 0.0f64;
        for row in &r.generations {
            let start_us = clock_min * US_PER_MIN;
            clock_min += row.makespan_minutes;
            let end_us = clock_min * US_PER_MIN;
            out.push(TraceEvent::counter(
                "queue depth",
                cats::EA,
                pid,
                start_us,
                row.evaluations as f64,
            ));
            out.push(TraceEvent::counter(
                "utilization %",
                cats::EA,
                pid,
                start_us,
                row.utilization_pct,
            ));
            out.push(TraceEvent::counter("hypervolume", cats::EA, pid, end_us, row.hypervolume));
        }
    }
    out
}

/// [`counter_tracks`] rendered as a Perfetto-loadable trace document.
pub fn counter_trace_json(status: &CampaignStatus) -> String {
    render(&counter_tracks(status))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_evo::{Fitness, Individual};

    fn ind(e: f64, f: f64) -> Individual {
        let mut i = Individual::new(vec![0.0]);
        i.fitness = Some(Fitness::new(vec![e, f]));
        i
    }

    fn record(generation: usize, points: &[(f64, f64)]) -> GenerationRecord {
        GenerationRecord {
            generation,
            population: points.iter().map(|&(e, f)| ind(e, f)).collect(),
            failures: 0,
        }
    }

    fn report(makespan: f64) -> PoolReport {
        PoolReport {
            makespan_minutes: makespan,
            wall_minutes: makespan,
            busy_minutes: vec![makespan, makespan * 0.5],
            idle_minutes: vec![0.0, makespan * 0.5],
            lost_death_minutes: vec![0.0, 0.0],
            lost_speculation_minutes: vec![0.0, 0.0],
            backoff_slot_minutes: vec![0.0, 0.0],
            per_worker_minutes: vec![makespan, makespan * 0.5],
            ..PoolReport::default()
        }
    }

    fn sample_status() -> CampaignStatus {
        let records =
            vec![record(0, &[(0.02, 0.5), (0.025, 0.45)]), record(1, &[(0.01, 0.3)])];
        let reports = vec![report(100.0), report(80.0)];
        let rows = replay_rows(&records, &reports);
        let mut status = CampaignStatus {
            n_runs: 1,
            pop_size: 2,
            generations: 1,
            reference: REFERENCE_POINT,
            runs: Vec::new(),
        };
        status.set_run(0, rows);
        status
    }

    #[test]
    fn replay_rows_track_archive_progress() {
        let status = sample_status();
        let rows = &status.runs[0].generations;
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].added, 2);
        // (0.01, 0.3) dominates both generation-0 members.
        assert_eq!(rows[1].added, 1);
        assert_eq!(rows[1].evicted, 2);
        assert_eq!(rows[1].cardinality, 1);
        assert!(rows[1].hypervolume > rows[0].hypervolume);
        assert!((rows[0].utilization_pct - 75.0).abs() < 1e-9);
    }

    #[test]
    fn status_json_round_trips() {
        let status = sample_status();
        let text = status_json(&status);
        assert!(text.contains("\"schema\": \"dphpo-campaign-status-v1\""));
        let parsed = parse_status(&text).expect("parse");
        assert_eq!(parsed, status);
        // Deterministic: same value, same bytes.
        assert_eq!(text, status_json(&parsed));
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("dphpo_status_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign_status.json");
        let status = sample_status();
        write_status_atomic(&path, &status).unwrap();
        write_status_atomic(&path, &status).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), status_json(&status));
        assert!(!path.with_extension("json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn markdown_report_contains_all_sections() {
        let text = markdown_report(&sample_status());
        assert!(text.contains("## Hypervolume trajectory"));
        assert!(text.contains("## Utilization"));
        assert!(text.contains("## Failure breakdown"));
        assert!(text.contains("| all |"));
        // The utilization percentages partition to 100 for run 0.
        assert!(text.contains("75.0"), "busy share missing: {text}");
    }

    #[test]
    fn counter_tracks_follow_the_simulated_clock() {
        let events = counter_tracks(&sample_status());
        assert_eq!(events.len(), 6);
        assert!(events.iter().all(|e| e.ph == 'C'));
        // Generation 1's hypervolume sample lands at the cumulative
        // makespan (100 + 80 minutes).
        let hv: Vec<_> = events.iter().filter(|e| e.name == "hypervolume").collect();
        assert_eq!(hv[1].ts_us, 180.0 * US_PER_MIN);
        let doc = counter_trace_json(&sample_status());
        assert!(doc.contains("\"ph\":\"C\""));
    }
}
