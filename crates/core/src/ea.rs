//! The distributed NSGA-II deployment: `dphpo-evo`'s Listing-1 pipeline
//! driven by a `dphpo-hpc` worker pool that evaluates every offspring's
//! DNNP training in parallel, with the paper's timeout/fault semantics.
//!
//! The evaluator optionally journals every completed task (see
//! [`crate::journal`]): each finalised evaluation is appended to the
//! write-ahead journal from the driver thread before the batch returns,
//! and previously journaled evaluations are *replayed* — the worker
//! short-circuits training and returns the journaled outcome — so a
//! resumed campaign recomputes nothing and still reproduces the original
//! scheduler traffic (fault decisions, retries, reports) bit-identically.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use dphpo_dnnp::AbortReason;
use dphpo_evo::nsga2::{BatchEvaluator, EvalResult};
use dphpo_evo::{ArchiveChurn, Fitness, FrontStats};
use dphpo_hpc::{
    run_batch_observed, EvalFault, EvalOutcome, FaultInjector, PoolConfig, PoolReport, TaskCtx,
    TaskRecord, Timeline,
};
use dphpo_obs::{cats, names, Event, Recorder, SpanCtx, When, NOOP};

use crate::journal::{EvalEntry, JournalSink};
use crate::workflow::{
    derive_seed, estimated_minutes, evaluate_individual_observed, EvalContext, EvalRecord,
};

/// Busy share of a batch's worker-minutes capacity, in percent:
/// `Σ busy / (wall × workers)`. Zero for an empty batch.
pub fn utilization_pct(report: &PoolReport, n_workers: usize) -> f64 {
    let busy: f64 = report.busy_minutes.iter().sum();
    let capacity = report.wall_minutes * n_workers as f64;
    if capacity > 0.0 {
        busy / capacity * 100.0
    } else {
        0.0
    }
}

/// Evaluate one genome under scheduler supervision and map a structured
/// training abort onto the scheduler's fault taxonomy. Shared by the
/// generational batch evaluator below and the steady-state driver
/// ([`crate::steady`]), so both campaign modes classify and penalise
/// failures identically.
pub(crate) fn summit_eval_outcome(
    ctx: &EvalContext,
    genome: &[f64],
    seed: u64,
    tc: &TaskCtx<'_>,
    obs: &dyn Recorder,
    span: SpanCtx,
) -> EvalOutcome<EvalRecord> {
    let (record, abort) = evaluate_individual_observed(ctx, genome, seed, tc, obs, span);
    if record.failed {
        let fault = match abort {
            Some(AbortReason::Diverged { step, loss }) => EvalFault::Diverged { step, loss },
            Some(AbortReason::Deadline { .. }) => EvalFault::Deadline,
            Some(AbortReason::Cancelled { .. }) => EvalFault::Cancelled,
            None => EvalFault::Failed("training failed".to_string()),
        };
        EvalOutcome { value: Err(fault), minutes: record.minutes }
    } else {
        let minutes = record.minutes;
        EvalOutcome { value: Ok(record), minutes }
    }
}

/// A batch evaluator that fans genomes out across the simulated Summit
/// allocation. Any task-level error — timeout, worker death, divergence —
/// becomes the MAXINT penalty fitness, per §2.2.4.
pub struct SummitEvaluator {
    ctx: Arc<EvalContext>,
    pool: PoolConfig,
    faults: FaultInjector,
    base_seed: u64,
    /// Next batch's generation index. Seeds are derived from
    /// `generation × batch_size + slot`, so they depend only on an
    /// individual's position in the campaign — never on scheduling order —
    /// which is what makes journal replay bit-identical.
    generation: u64,
    reports: Vec<PoolReport>,
    journal: Option<JournalSink>,
    /// Telemetry sink plus the EA run index it labels spans with. `None`
    /// keeps every instrumentation site on its single-branch disabled path.
    obs: Option<(Arc<dyn Recorder>, u32)>,
}

impl SummitEvaluator {
    /// Build an evaluator around a shared context.
    pub fn new(
        ctx: Arc<EvalContext>,
        pool: PoolConfig,
        faults: FaultInjector,
        base_seed: u64,
    ) -> Self {
        SummitEvaluator {
            ctx,
            pool,
            faults,
            base_seed,
            generation: 0,
            reports: Vec::new(),
            journal: None,
            obs: None,
        }
    }

    /// Attach a write-ahead journal sink: completed tasks are appended,
    /// journaled tasks are replayed instead of retrained.
    pub fn attach_journal(&mut self, sink: JournalSink) {
        self.journal = Some(sink);
    }

    /// Attach a telemetry recorder; `run` is the EA run index events are
    /// labelled with (one Chrome-trace process per run). Recording never
    /// perturbs the campaign: every emitted value is something the driver
    /// or trainer already computed, and span timestamps live on the same
    /// simulated clock the scheduler charges makespan in. Replayed
    /// (journaled) evaluations short-circuit training, so they emit no
    /// per-step events — their `eval` spans still appear, reconstructed
    /// from the charged minutes.
    pub fn attach_recorder(&mut self, recorder: Arc<dyn Recorder>, run: u32) {
        self.obs = Some((recorder, run));
    }

    /// Set the generation index the next `evaluate` call belongs to (used
    /// when resuming a run mid-campaign).
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// The fault injector (exposes driver-liveness for chaos testing).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Seed the report list with journaled reports from completed
    /// generations, so a resumed run accumulates the same totals.
    pub fn preload_reports(&mut self, reports: Vec<PoolReport>) {
        self.reports = reports;
    }

    /// Scheduler reports collected so far (one per evaluated batch).
    pub fn reports(&self) -> &[PoolReport] {
        &self.reports
    }

    /// Total simulated makespan across all batches, in minutes — what the
    /// batch job's wall clock would have accumulated.
    pub fn total_makespan_minutes(&self) -> f64 {
        self.reports.iter().map(|r| r.makespan_minutes).sum()
    }

    /// Emit the generation-boundary front observation: an `ea.front`
    /// instant carrying the archive's hypervolume / cardinality / spread
    /// and its dominance churn, plus the matching gauges and counters.
    /// Called by the campaign driver after the archive absorbs the
    /// generation's population; a no-op without an attached recorder. The
    /// event is timestamped at the cumulative makespan — the simulated
    /// moment this generation's batch drained.
    pub fn observe_front(&self, generation: u64, stats: FrontStats, churn: ArchiveChurn) {
        let Some((obs, run)) = &self.obs else { return };
        if !obs.enabled() {
            return;
        }
        let ctx = SpanCtx::root(self.base_seed, *run).with_gen(generation as u32);
        let mut ev = Event::instant(names::FRONT, cats::EA, ctx);
        ev.when = When::Sim(self.total_makespan_minutes());
        ev.args = vec![
            ("hypervolume", stats.hypervolume),
            ("cardinality", stats.cardinality as f64),
            ("spread", stats.spread),
            ("offered", churn.offered as f64),
            ("added", churn.added as f64),
            ("evicted", churn.evicted as f64),
        ];
        obs.record(ev);
        obs.gauge_set(names::G_HYPERVOLUME, stats.hypervolume);
        obs.gauge_set(names::G_ARCHIVE_SIZE, stats.cardinality as f64);
        obs.gauge_set(names::G_FRONT_SPREAD, stats.spread);
        obs.counter_add(names::C_ARCHIVE_ADDED, churn.added as u64);
        obs.counter_add(names::C_ARCHIVE_EVICTED, churn.evicted as u64);
    }
}

impl BatchEvaluator for SummitEvaluator {
    fn evaluate(&mut self, genomes: &[Vec<f64>]) -> Vec<EvalResult> {
        let gen = self.generation;
        self.generation += 1;
        // Fault decisions hash (seed, generation, task, attempt): keying
        // the batch makes every generation's fault pattern reproducible in
        // isolation, independent of how earlier batches were scheduled.
        self.faults.set_batch_key(gen);
        let first = gen * genomes.len() as u64;
        let seeds: Vec<u64> = (0..genomes.len() as u64)
            .map(|i| derive_seed(self.base_seed, first + i))
            .collect();
        let ctx = Arc::clone(&self.ctx);
        let faults = &self.faults;
        let journal = self.journal.as_ref();
        let replay: Option<&HashMap<(usize, usize), EvalEntry>> =
            journal.map(|sink| &*sink.replay);
        let gen_idx = gen as usize;
        let seeds_ref = &seeds;
        let estimate_ctx = Arc::clone(&self.ctx);
        // Span timestamps are absolute on the campaign's simulated clock:
        // this batch starts where the previous batches' makespans end.
        let sim_offset: f64 = self.reports.iter().map(|r| r.makespan_minutes).sum();
        let (obs, base_span): (&dyn Recorder, SpanCtx) = match &self.obs {
            Some((rec, run)) => {
                (rec.as_ref(), SpanCtx::root(self.base_seed, *run).with_gen(gen as u32))
            }
            None => (&NOOP, SpanCtx::default()),
        };
        let obs_on = obs.enabled();
        // Reorder buffer between the racy physical completion order and the
        // deterministic slot order: completions are buffered by slot and
        // journaled as the contiguous slot prefix becomes ready, so the set
        // of records a chaos kill leaves on disk is always a slot-order
        // prefix — which is what makes an interrupted-then-resumed journal
        // byte-identical to an uninterrupted one. `None` marks a replayed
        // (already-journaled) slot. Both cells live on the driver thread:
        // `on_complete` runs there, never concurrently.
        type Pending = Option<(EvalEntry, u32, bool)>;
        let buffered: RefCell<BTreeMap<usize, Pending>> = RefCell::new(BTreeMap::new());
        let next_release = Cell::new(0usize);
        let (records, report) = run_batch_observed(
            genomes,
            |tc: &TaskCtx<'_>, genome: &Vec<f64>| {
                let i = tc.task;
                // Replay: a journaled outcome for this (generation, slot)
                // with a bit-exact genome match short-circuits training.
                if let Some(entry) = replay.and_then(|map| map.get(&(gen_idx, i))) {
                    if entry.genome == *genome {
                        return entry.to_outcome();
                    }
                }
                summit_eval_outcome(
                    &ctx,
                    genome,
                    seeds_ref[i],
                    tc,
                    obs,
                    base_span.with_task(i as u32, tc.attempt),
                )
            },
            |_, genome: &Vec<f64>| estimated_minutes(&estimate_ctx, genome),
            &self.pool,
            faults,
            |slot, task: &TaskRecord<EvalRecord>| {
                let replayed = journal.is_some_and(|sink| {
                    sink.replay
                        .get(&(gen_idx, slot))
                        .is_some_and(|e| e.genome == genomes[slot])
                });
                let entry = match (journal, replayed) {
                    (Some(sink), false) => Some((
                        EvalEntry::from_task(
                            sink.run,
                            gen_idx,
                            slot,
                            seeds_ref[slot],
                            &genomes[slot],
                            task,
                        ),
                        task.attempts,
                        task.value.is_ok(),
                    )),
                    _ => None,
                };
                buffered.borrow_mut().insert(slot, entry);
                // Release (and journal) the contiguous slot prefix. Each
                // release counts one completion against the (chaos-mode)
                // driver lifetime; a dead driver loses the record — exactly
                // the crash the journal protects against.
                while let Some(item) = buffered.borrow_mut().remove(&next_release.get()) {
                    let released = next_release.get();
                    next_release.set(released + 1);
                    let driver_alive = faults.note_task_completion();
                    let (Some(sink), true, Some((entry, attempts, ok))) =
                        (journal, driver_alive, item)
                    else {
                        continue;
                    };
                    match sink.writer.borrow_mut().append_eval(&entry) {
                        // Cross-reference the telemetry stream to the
                        // journal: the event names the byte offset the
                        // record landed at (runs on the driver thread, so
                        // ordering is deterministic).
                        Ok(offset) => {
                            if obs_on {
                                obs.counter_add(names::C_JOURNAL_APPENDS, 1);
                                let mut ev = Event::instant(
                                    names::JOURNAL_APPEND,
                                    cats::JOURNAL,
                                    base_span.with_task(released as u32, attempts),
                                );
                                ev.args = vec![
                                    ("offset", offset as f64),
                                    ("ok", if ok { 1.0 } else { 0.0 }),
                                ];
                                obs.record(ev);
                            }
                        }
                        // A record that failed to reach disk is a crash at
                        // this completion: the driver dies and every later
                        // record is lost, exactly as in a real crash.
                        Err(_) => faults.declare_dead(),
                    }
                }
            },
            obs,
            base_span,
        );
        if obs_on {
            obs.counter_add(names::C_GENERATIONS, 1);
            // Worker-lane placement: the same list-scheduling reconstruction
            // the Gantt chart uses, charged from the records' minutes —
            // fault-free it reproduces the scheduler's makespan exactly.
            let timeline = Timeline::reconstruct(&records, self.pool.n_workers);
            for (w, spans) in timeline.timelines.iter().enumerate() {
                for s in spans {
                    let rec = &records[s.task];
                    obs.observe(names::H_EVAL_MINUTES, rec.minutes);
                    obs.record(Event {
                        name: names::EVAL,
                        cat: cats::SCHED,
                        ctx: base_span.with_task(s.task as u32, rec.attempts),
                        step: None,
                        when: When::Sim(sim_offset + s.start),
                        dur_min: s.end - s.start,
                        worker: Some(w as u32),
                        args: vec![
                            ("ok", if s.ok { 1.0 } else { 0.0 }),
                            ("minutes", rec.minutes),
                            ("attempts", rec.attempts as f64),
                        ],
                    });
                }
            }
            obs.record(Event {
                name: names::GENERATION,
                cat: cats::EA,
                ctx: base_span,
                step: None,
                when: When::Sim(sim_offset),
                dur_min: report.makespan_minutes,
                worker: None,
                args: vec![
                    ("n_tasks", genomes.len() as f64),
                    ("deaths", report.worker_deaths as f64),
                    ("retried", report.retried_tasks as f64),
                    ("speculated", report.speculated_tasks as f64),
                    ("lost_min", report.lost_minutes),
                    ("wall_min", report.wall_minutes),
                    ("backoff_min", report.backoff_minutes),
                    ("util_busy_pct", utilization_pct(&report, self.pool.n_workers)),
                ],
            });
        }
        self.reports.push(report);
        records
            .into_iter()
            .map(|r| {
                let fitness = match r.value {
                    Ok(record) => record.fitness,
                    Err(_) => Fitness::penalty(2),
                };
                EvalResult { fitness, minutes: Some(r.minutes) }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_dnnp::TrainConfig;
    use dphpo_hpc::CostModel;
    use dphpo_md::generate::{generate_dataset, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_ctx() -> Arc<EvalContext> {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gen = GenConfig::tiny();
        gen.n_atoms = 10;
        gen.box_len = 9.0;
        gen.n_frames = 8;
        let mut ds = generate_dataset(&gen, &mut rng);
        ds.add_label_noise(0.0005, 0.03, &mut rng);
        let (train_ds, val_ds) = ds.split(0.25, &mut rng);
        Arc::new(EvalContext {
            base_config: TrainConfig {
                embedding_neurons: vec![4, 4],
                fitting_neurons: vec![6],
                num_steps: 15,
                batch_per_worker: 1,
                n_workers: 1,
                disp_freq: 10,
                val_max_frames: 2,
                ..TrainConfig::default()
            },
            train: Arc::new(train_ds),
            val: Arc::new(val_ds),
            cost_model: CostModel::default(),
            workdir: None,
        })
    }

    #[test]
    fn batch_evaluation_returns_one_result_per_genome() {
        let mut evaluator = SummitEvaluator::new(
            tiny_ctx(),
            PoolConfig { n_workers: 3, ..PoolConfig::default() },
            FaultInjector::none(),
            9,
        );
        let genomes: Vec<Vec<f64>> = vec![
            vec![0.005, 1e-4, 7.0, 2.5, 2.5, 4.5, 4.5],
            vec![0.002, 5e-5, 9.0, 3.0, 1.5, 2.5, 4.5],
            vec![0.008, 1e-4, 6.5, 2.2, 0.5, 3.5, 2.5],
        ];
        let results = evaluator.evaluate(&genomes);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.fitness.len(), 2);
            assert!(!r.fitness.is_penalty(), "healthy genome failed");
            assert!(r.minutes.unwrap() > 0.0);
        }
        assert_eq!(evaluator.reports().len(), 1);
        assert!(evaluator.total_makespan_minutes() > 0.0);
    }

    #[test]
    fn worker_faults_become_penalties_or_retries() {
        let mut evaluator = SummitEvaluator::new(
            tiny_ctx(),
            PoolConfig { n_workers: 2, nanny: true, max_attempts: 1, ..PoolConfig::default() },
            FaultInjector::new(0.5, 3),
            10,
        );
        let genomes: Vec<Vec<f64>> =
            (0..12).map(|_| vec![0.005, 1e-4, 7.0, 2.5, 2.5, 4.5, 4.5]).collect();
        let results = evaluator.evaluate(&genomes);
        assert_eq!(results.len(), 12);
        // With 50 % per-task deaths and no retries, a mixed outcome over 12
        // tasks is overwhelmingly likely (each tail has probability 2⁻¹²).
        let penalties = results.iter().filter(|r| r.fitness.is_penalty()).count();
        assert!(penalties > 0, "expected at least one fault-penalty");
        assert!(penalties < 12, "expected at least one survivor");
    }

    #[test]
    fn telemetry_spans_cover_every_evaluation_without_changing_results() {
        use dphpo_obs::MemoryRecorder;
        let genomes: Vec<Vec<f64>> = vec![
            vec![0.005, 1e-4, 7.0, 2.5, 2.5, 4.5, 4.5],
            vec![0.002, 5e-5, 9.0, 3.0, 1.5, 2.5, 4.5],
            vec![0.008, 1e-4, 6.5, 2.2, 0.5, 3.5, 2.5],
        ];
        let pool = PoolConfig { n_workers: 2, ..PoolConfig::default() };
        let mut plain = SummitEvaluator::new(tiny_ctx(), pool, FaultInjector::none(), 9);
        let want = plain.evaluate(&genomes);

        let rec = Arc::new(MemoryRecorder::new());
        let mut observed = SummitEvaluator::new(tiny_ctx(), pool, FaultInjector::none(), 9);
        observed.attach_recorder(Arc::clone(&rec) as Arc<dyn Recorder>, 3);
        let got = observed.evaluate(&genomes);
        let _ = observed.evaluate(&genomes); // second generation, for offsets

        // Telemetry must not change the optimisation.
        let values = |rs: &[EvalResult]| {
            rs.iter().map(|r| r.fitness.values().to_vec()).collect::<Vec<_>>()
        };
        assert_eq!(values(&want), values(&got));

        let snap = rec.snapshot();
        assert_eq!(snap.counter(names::C_GENERATIONS), 2);
        // One eval span per genome per generation, all on worker lanes and
        // labelled with the attached run index.
        let evals: Vec<_> = snap.events.iter().filter(|e| e.name == names::EVAL).collect();
        assert_eq!(evals.len(), 2 * genomes.len());
        assert!(evals.iter().all(|e| e.worker.is_some() && e.ctx.run == 3));

        // The generation spans sit end-to-end on the simulated clock: the
        // second starts exactly where the first's makespan ended.
        let gens: Vec<_> =
            snap.events.iter().filter(|e| e.name == names::GENERATION).collect();
        assert_eq!(gens.len(), 2);
        let (When::Sim(t0), When::Sim(t1)) = (gens[0].when, gens[1].when) else {
            panic!("generation spans must carry absolute sim times");
        };
        assert_eq!(t0, 0.0);
        assert!((t1 - observed.reports()[0].makespan_minutes).abs() < 1e-12);
        assert!((gens[0].dur_min - observed.reports()[0].makespan_minutes).abs() < 1e-12);

        // Trainer events flowed through the same recorder and are nested
        // task-relative; per-step instrumentation covered every training.
        assert!(snap.counter(names::C_STEPS) >= 2 * genomes.len() as u64 * 15);
        assert!(snap
            .events
            .iter()
            .any(|e| e.name == names::TRAIN_STEP && matches!(e.when, When::InTask(_))));
    }

    #[test]
    fn seeds_depend_on_generation_not_call_history() {
        // Two evaluators that reach generation 1 differently (one evaluated
        // generation 0, the other resumed) must evaluate identically.
        let genomes: Vec<Vec<f64>> =
            vec![vec![0.005, 1e-4, 7.0, 2.5, 2.5, 4.5, 4.5], vec![0.002, 5e-5, 9.0, 3.0, 1.5, 2.5, 4.5]];
        let mut a = SummitEvaluator::new(
            tiny_ctx(),
            PoolConfig { n_workers: 2, ..PoolConfig::default() },
            FaultInjector::none(),
            9,
        );
        let _ = a.evaluate(&genomes); // generation 0
        let from_a = a.evaluate(&genomes); // generation 1

        let mut b = SummitEvaluator::new(
            tiny_ctx(),
            PoolConfig { n_workers: 2, ..PoolConfig::default() },
            FaultInjector::none(),
            9,
        );
        b.set_generation(1);
        let from_b = b.evaluate(&genomes);
        let values = |rs: &[EvalResult]| {
            rs.iter().map(|r| r.fitness.values().to_vec()).collect::<Vec<_>>()
        };
        assert_eq!(values(&from_a), values(&from_b));
    }
}
