//! Neural-architecture-search extension (the paper's §4 future work):
//! "model fidelity may also be further improved by incorporating neural
//! architecture searching on the two DeePMD neural networks".
//!
//! This module extends the seven-gene representation with two width genes
//! — one for the embedding (descriptor) network, one for the fitting
//! network — decoded with the same floor-based scheme as the categorical
//! genes, so the *same* NSGA-II machinery optimises hyperparameters and
//! architecture jointly.

use dphpo_dnnp::TrainConfig;

use crate::decode::{decode, DecodedGenome};
use crate::representation::{DeepMDRepresentation, N_GENES};

/// Number of genes in the extended representation.
pub const N_NAS_GENES: usize = N_GENES + 2;

/// Index of the embedding-width gene.
pub const GENE_EMB_WIDTH: usize = N_GENES;
/// Index of the fitting-width gene.
pub const GENE_FIT_WIDTH: usize = N_GENES + 1;

/// The architecture-search representation: Table 1 plus two width genes.
pub struct NasRepresentation;

impl NasRepresentation {
    /// Initialisation ranges: the seven of Table 1, then embedding width
    /// ∈ (4, 12) and fitting width ∈ (8, 32).
    pub fn init_ranges() -> Vec<(f64, f64)> {
        let mut ranges = DeepMDRepresentation::init_ranges();
        ranges.push((4.0, 12.0));
        ranges.push((8.0, 32.0));
        ranges
    }

    /// Hard bounds (same as the initialisation ranges).
    pub fn bounds() -> Vec<(f64, f64)> {
        Self::init_ranges()
    }

    /// Mutation standard deviations: Table 1 plus width σ of 0.5 / 1.0.
    pub fn initial_std() -> Vec<f64> {
        let mut std = DeepMDRepresentation::initial_std();
        std.push(0.5);
        std.push(1.0);
        std
    }
}

/// A decoded extended genome: the paper's seven hyperparameters plus
/// concrete network shapes.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedNas {
    /// The seven base hyperparameters.
    pub base: DecodedGenome,
    /// Embedding net widths (two layers: `[w, max(2, 2w/3)]`, final entry
    /// is the descriptor channel count M).
    pub embedding_neurons: Vec<usize>,
    /// Fitting net widths (two equal hidden layers).
    pub fitting_neurons: Vec<usize>,
}

/// Decode a nine-gene genome.
pub fn decode_nas(genome: &[f64]) -> DecodedNas {
    assert_eq!(genome.len(), N_NAS_GENES, "genome must have {N_NAS_GENES} genes");
    let base = decode(&genome[..N_GENES]);
    let emb = genome[GENE_EMB_WIDTH].floor().max(2.0) as usize;
    let fit = genome[GENE_FIT_WIDTH].floor().max(4.0) as usize;
    DecodedNas {
        base,
        embedding_neurons: vec![emb, (emb * 2 / 3).max(2)],
        fitting_neurons: vec![fit, fit],
    }
}

impl DecodedNas {
    /// Merge into a base training configuration (hyperparameters *and*
    /// architecture).
    pub fn apply_to(&self, base: &TrainConfig) -> TrainConfig {
        let mut config = self.base.apply_to(base);
        config.embedding_neurons = self.embedding_neurons.clone();
        config.fitting_neurons = self.fitting_neurons.clone();
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_evo::ops::random_population;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn representation_dimensions() {
        assert_eq!(NasRepresentation::init_ranges().len(), 9);
        assert_eq!(NasRepresentation::initial_std().len(), 9);
        // The first seven entries are exactly Table 1.
        assert_eq!(
            &NasRepresentation::init_ranges()[..7],
            &DeepMDRepresentation::init_ranges()[..]
        );
    }

    #[test]
    fn decode_produces_legal_architectures() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = random_population(200, &NasRepresentation::init_ranges(), &mut rng);
        for ind in &pop {
            let d = decode_nas(&ind.genome);
            assert!(d.embedding_neurons[0] >= 4 && d.embedding_neurons[0] <= 12);
            assert!(d.embedding_neurons[1] >= 2);
            assert!(d.fitting_neurons[0] >= 8 && d.fitting_neurons[0] <= 32);
            assert_eq!(d.fitting_neurons[0], d.fitting_neurons[1]);
        }
    }

    #[test]
    fn apply_to_overrides_architecture() {
        let genome = vec![0.005, 1e-4, 9.0, 2.5, 2.5, 4.5, 4.5, 10.2, 24.9];
        let d = decode_nas(&genome);
        let config = d.apply_to(&TrainConfig::default());
        assert_eq!(config.embedding_neurons, vec![10, 6]);
        assert_eq!(config.fitting_neurons, vec![24, 24]);
        assert_eq!(config.rcut, 9.0);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn nas_configs_train_end_to_end() {
        use dphpo_md::generate::{generate_dataset, GenConfig};
        let mut rng = StdRng::seed_from_u64(2);
        let gen = GenConfig {
            n_atoms: 10,
            box_len: 9.0,
            n_frames: 8,
            equil_steps: 80,
            sample_every: 4,
            ..GenConfig::tiny()
        };
        let ds = generate_dataset(&gen, &mut rng);
        let (train_ds, val_ds) = ds.split(0.25, &mut rng);
        let genome = vec![0.005, 1e-4, 6.5, 2.5, 2.5, 4.5, 4.5, 5.5, 9.5];
        let config = decode_nas(&genome).apply_to(&TrainConfig {
            num_steps: 10,
            disp_freq: 10,
            val_max_frames: 2,
            batch_per_worker: 1,
            n_workers: 1,
            ..TrainConfig::default()
        });
        let report = dphpo_dnnp::train(&config, &train_ds, &val_ds, &mut rng).unwrap();
        assert!(report.lcurve.final_losses().is_some());
    }

    #[test]
    #[should_panic(expected = "genome must have")]
    fn wrong_length_panics() {
        decode_nas(&[0.0; 7]);
    }
}
