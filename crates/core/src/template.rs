//! `string.Template`-style substitution (§2.2.4, step 3).
//!
//! The paper builds each individual's DeePMD `input.json` by substituting
//! decoded gene values into a JSON template with Python's
//! `string.Template`. This module reimplements that mechanism: `$name` and
//! `${name}` placeholders, `$$` escaping, and an error on unknown
//! placeholders (matching `Template.substitute` strictness).

use std::collections::BTreeMap;

use crate::decode::DecodedGenome;

/// Substitute `$name` / `${name}` placeholders from `vars`; `$$` → `$`.
pub fn substitute(template: &str, vars: &BTreeMap<String, String>) -> Result<String, String> {
    let bytes = template.as_bytes();
    let mut out = String::with_capacity(template.len());
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'$' {
            // Copy the run up to the next '$'.
            let start = i;
            while i < bytes.len() && bytes[i] != b'$' {
                i += 1;
            }
            out.push_str(&template[start..i]);
            continue;
        }
        // At a '$'.
        i += 1;
        match bytes.get(i) {
            Some(b'$') => {
                out.push('$');
                i += 1;
            }
            Some(b'{') => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != b'}' {
                    i += 1;
                }
                if i == bytes.len() {
                    return Err("unterminated ${placeholder}".to_string());
                }
                let name = &template[start..i];
                i += 1;
                out.push_str(
                    vars.get(name)
                        .ok_or_else(|| format!("unknown placeholder '{name}'"))?,
                );
            }
            Some(c) if c.is_ascii_alphabetic() || *c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let name = &template[start..i];
                out.push_str(
                    vars.get(name)
                        .ok_or_else(|| format!("unknown placeholder '{name}'"))?,
                );
            }
            _ => return Err("lone '$' in template".to_string()),
        }
    }
    Ok(out)
}

/// The DeePMD input template used by the evaluation workflow: fixed
/// settings inline, EA-tuned hyperparameters as placeholders.
pub const INPUT_TEMPLATE: &str = r#"{
    "model": {
        "descriptor": {
            "type": "se_e2_r",
            "rcut": $rcut,
            "rcut_smth": $rcut_smth,
            "neuron": $embedding_neurons,
            "activation_function": "$desc_activ_func"
        },
        "fitting_net": {
            "neuron": $fitting_neurons,
            "activation_function": "$fitting_activ_func"
        }
    },
    "learning_rate": {
        "type": "exp",
        "start_lr": $start_lr,
        "stop_lr": $stop_lr,
        "scale_by_worker": "$scale_by_worker"
    },
    "loss": {
        "start_pref_e": 0.02,
        "limit_pref_e": 1,
        "start_pref_f": 1000,
        "limit_pref_f": 1
    },
    "training": {
        "numb_steps": $numb_steps,
        "batch_size": $batch_size,
        "n_workers": $n_workers,
        "disp_freq": $disp_freq,
        "val_max_frames": $val_max_frames,
        "seed": $seed
    }
}
"#;

/// Substitution variables for one decoded individual plus run settings.
#[allow(clippy::too_many_arguments)]
pub fn template_vars(
    decoded: &DecodedGenome,
    embedding_neurons: &[usize],
    fitting_neurons: &[usize],
    numb_steps: usize,
    batch_size: usize,
    n_workers: usize,
    disp_freq: usize,
    val_max_frames: usize,
    seed: u64,
) -> BTreeMap<String, String> {
    let list = |ns: &[usize]| {
        let items: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
        format!("[{}]", items.join(", "))
    };
    let mut vars = BTreeMap::new();
    vars.insert("start_lr".into(), format!("{:e}", decoded.start_lr));
    vars.insert("stop_lr".into(), format!("{:e}", decoded.stop_lr));
    vars.insert("rcut".into(), format!("{}", decoded.rcut));
    vars.insert("rcut_smth".into(), format!("{}", decoded.rcut_smth));
    vars.insert("scale_by_worker".into(), decoded.scale_by_worker.name().to_string());
    vars.insert("desc_activ_func".into(), decoded.desc_activ_func.name().to_string());
    vars.insert("fitting_activ_func".into(), decoded.fitting_activ_func.name().to_string());
    vars.insert("embedding_neurons".into(), list(embedding_neurons));
    vars.insert("fitting_neurons".into(), list(fitting_neurons));
    vars.insert("numb_steps".into(), numb_steps.to_string());
    vars.insert("batch_size".into(), batch_size.to_string());
    vars.insert("n_workers".into(), n_workers.to_string());
    vars.insert("disp_freq".into(), disp_freq.to_string());
    vars.insert("val_max_frames".into(), val_max_frames.to_string());
    vars.insert("seed".into(), seed.to_string());
    vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use dphpo_dnnp::{Json, TrainConfig};

    fn vars_of(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn basic_substitution_forms() {
        let vars = vars_of(&[("a", "1"), ("b_c", "two")]);
        assert_eq!(substitute("x=$a y=${b_c}!", &vars).unwrap(), "x=1 y=two!");
        assert_eq!(substitute("$$a stays", &vars).unwrap(), "$a stays");
        assert_eq!(substitute("no placeholders", &vars).unwrap(), "no placeholders");
    }

    #[test]
    fn unknown_placeholder_is_an_error() {
        let vars = vars_of(&[("a", "1")]);
        assert!(substitute("$missing", &vars).unwrap_err().contains("missing"));
        assert!(substitute("${also_missing}", &vars).is_err());
    }

    #[test]
    fn malformed_templates_error() {
        let vars = vars_of(&[("a", "1")]);
        assert!(substitute("${unterminated", &vars).is_err());
        assert!(substitute("lone $ sign", &vars).is_err());
    }

    #[test]
    fn full_template_produces_valid_input_json() {
        let decoded = decode(&[0.0047, 1e-4, 11.32, 2.42, 2.0, 4.0, 4.0]);
        let vars = template_vars(&decoded, &[10, 8], &[24, 24], 300, 1, 6, 50, 8, 7);
        let text = substitute(INPUT_TEMPLATE, &vars).unwrap();
        let doc = Json::parse(&text).expect("substituted template must be valid JSON");
        let config = TrainConfig::from_input_json(&doc).expect("and a valid TrainConfig");
        assert_eq!(config.rcut, 11.32);
        assert_eq!(config.rcut_smth, 2.42);
        assert!((config.start_lr - 0.0047).abs() < 1e-12);
        assert_eq!(config.desc_activation.name(), "tanh");
        assert_eq!(config.scale_by_worker.name(), "none");
        assert_eq!(config.num_steps, 300);
        assert_eq!(config.seed, 7);
        // Fixed prefactors came through the literal part of the template.
        assert_eq!(config.start_pref_f, 1000.0);
        assert_eq!(config.limit_pref_e, 1.0);
    }

    #[test]
    fn template_round_trips_every_decoded_choice() {
        for (scale_gene, act_gene) in [(0.5, 0.5), (1.5, 1.5), (2.5, 2.5), (0.1, 3.5), (2.9, 4.9)] {
            let decoded = decode(&[0.001, 1e-5, 8.0, 3.0, scale_gene, act_gene, act_gene]);
            let vars = template_vars(&decoded, &[4], &[6], 10, 1, 6, 5, 2, 0);
            let text = substitute(INPUT_TEMPLATE, &vars).unwrap();
            let config = TrainConfig::from_input_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(config.scale_by_worker, decoded.scale_by_worker);
            assert_eq!(config.desc_activation, decoded.desc_activ_func);
        }
    }
}
