//! The fitness-evaluation workflow of §2.2.4, step by step:
//!
//! 1. decode the seven-gene genome (including float → string mapping);
//! 2. create a UUID-named working directory for the training run;
//! 3. build `input.json` by `string.Template` substitution into the JSON
//!    template and write it to the run directory;
//! 4. run training, read the last `rmse_e_val`/`rmse_f_val` values from
//!    `lcurve.out`, and return them as the two-element fitness — or MAXINT
//!    on *any* failure (timeout, divergence, bad configuration, worker
//!    fault).
//!
//! The run directory is optional (`workdir: None` keeps everything in
//! memory); when present, the artifacts a DeePMD user would expect —
//! `input.json`, `lcurve.out` — really are written there.

use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dphpo_dnnp::{
    train_supervised, AbortReason, Json, Lcurve, LcurveRow, Sentinel, Supervision, TrainConfig,
};
use dphpo_obs::{Recorder, SpanCtx, NOOP};
use dphpo_evo::{Fitness, Id};
use dphpo_hpc::{paper_job, CostModel, TaskCtx};
use dphpo_md::Dataset;

use crate::decode::decode;
use crate::template::{substitute, template_vars, INPUT_TEMPLATE};

/// Shared, read-only context for all evaluations of an experiment.
pub struct EvalContext {
    /// Fixed training settings (network sizes, prefactors, steps, workers).
    pub base_config: TrainConfig,
    /// Training split.
    pub train: Arc<Dataset>,
    /// Validation split.
    pub val: Arc<Dataset>,
    /// Simulated-runtime model.
    pub cost_model: CostModel,
    /// When set, each evaluation materialises a UUID-named run directory
    /// with `input.json` and `lcurve.out` under this root.
    pub workdir: Option<PathBuf>,
}

/// Everything learned from evaluating one individual.
#[derive(Clone, Debug)]
pub struct EvalRecord {
    /// Two-objective fitness `[rmse_e_val (eV/atom), rmse_f_val (eV/Å)]`;
    /// MAXINT penalty on failure.
    pub fitness: Fitness,
    /// Simulated training runtime in minutes (at paper scale: the cost of
    /// the equivalent 40k-step, 160-atom job, so runtimes are directly
    /// comparable with the paper's Fig. 3 axis).
    pub minutes: f64,
    /// True if training diverged or configuration was invalid.
    pub failed: bool,
    /// The last rows of the training curve (up to [`LCURVE_TAIL_ROWS`]),
    /// preserved in the experiment journal as convergence evidence so a
    /// resumed campaign can report it without retraining. Empty when the
    /// run failed before producing a curve.
    pub lcurve_tail: Vec<LcurveRow>,
}

/// Number of trailing `lcurve.out` rows carried in each [`EvalRecord`].
pub const LCURVE_TAIL_ROWS: usize = 3;

/// Evaluate one genome. `seed` individualises weight init and runtime noise.
pub fn evaluate_individual(ctx: &EvalContext, genome: &[f64], seed: u64) -> EvalRecord {
    evaluate_inner(ctx, genome, seed, &Supervision::none()).0
}

/// Deterministic simulated-minutes estimate for a genome's training (the
/// cost-model *mean* for its cutoff radius — no rng draw), used by the
/// scheduler for straggler detection and dead-attempt accounting.
pub fn estimated_minutes(ctx: &EvalContext, genome: &[f64]) -> f64 {
    ctx.cost_model.gpu_minutes_mean(&paper_job(decode(genome).rcut))
}

/// As [`evaluate_individual`], under scheduler supervision: the training
/// polls the task's [`CancelToken`](dphpo_hpc::CancelToken) and simulated
/// deadline at step boundaries, emits progress heartbeats, and runs the
/// strict [`Sentinel::supervised`] divergence sentinel — so a sick run
/// aborts within one check interval instead of burning its full budget.
///
/// Returns the record plus the structured [`AbortReason`] when the run was
/// terminated early. The supervision probes consume no randomness, so a run
/// that completes produces bit-identical weights to the unsupervised path.
pub fn evaluate_individual_supervised(
    ctx: &EvalContext,
    genome: &[f64],
    seed: u64,
    task: &TaskCtx<'_>,
) -> (EvalRecord, Option<AbortReason>) {
    evaluate_individual_observed(ctx, genome, seed, task, &NOOP, SpanCtx::default())
}

/// As [`evaluate_individual_supervised`], with a telemetry recorder and the
/// span identity `(seed, run, gen, task, attempt)` the trainer should emit
/// events under. The no-op recorder reproduces the unobserved path exactly
/// (recording consumes no randomness and branches once per step).
pub fn evaluate_individual_observed(
    ctx: &EvalContext,
    genome: &[f64],
    seed: u64,
    task: &TaskCtx<'_>,
    obs: &dyn Recorder,
    span: SpanCtx,
) -> (EvalRecord, Option<AbortReason>) {
    let mean_minutes = estimated_minutes(ctx, genome);
    let num_steps = ctx.base_config.num_steps.max(1);
    let cancelled = || task.is_cancelled();
    let beat = |done: f64, projected: f64| task.heartbeat(done, projected);
    let sup = Supervision {
        cancelled: Some(&cancelled),
        deadline_minutes: task.deadline_minutes,
        minutes_per_step: mean_minutes / num_steps as f64,
        heartbeat: Some(&beat),
        heartbeat_every: (num_steps / 8).max(1),
        check_every: 1,
        sentinel: Sentinel::supervised(),
        recorder: Some(obs),
        span,
    };
    evaluate_inner(ctx, genome, seed, &sup)
}

fn evaluate_inner(
    ctx: &EvalContext,
    genome: &[f64],
    seed: u64,
    sup: &Supervision<'_>,
) -> (EvalRecord, Option<AbortReason>) {
    let decoded = decode(genome);
    let mut rng = StdRng::seed_from_u64(seed);

    // Steps 2–3: run directory + input.json via template substitution. The
    // substituted document is *parsed back* — the trainer consumes exactly
    // what the artifact says, as DeePMD would.
    let vars = template_vars(
        &decoded,
        &ctx.base_config.embedding_neurons,
        &ctx.base_config.fitting_neurons,
        ctx.base_config.num_steps,
        ctx.base_config.batch_per_worker,
        ctx.base_config.n_workers,
        ctx.base_config.disp_freq,
        ctx.base_config.val_max_frames,
        seed,
    );
    let id = Id::fresh();
    let run_dir = ctx.workdir.as_ref().map(|root| root.join(id.to_string()));

    let failure = |minutes: f64| EvalRecord {
        fitness: Fitness::penalty(2),
        minutes,
        failed: true,
        lcurve_tail: Vec::new(),
    };

    let input_text = match substitute(INPUT_TEMPLATE, &vars) {
        Ok(t) => t,
        Err(_) => return (failure(0.1), None),
    };
    if let Some(dir) = &run_dir {
        // Artifact writing is best-effort: losing the artifact must not
        // change the optimisation.
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join("input.json"), &input_text);
    }
    let config = match Json::parse(&input_text).map_err(|e| e.to_string()).and_then(|doc| {
        let c = TrainConfig::from_input_json(&doc)?;
        c.validate()?;
        Ok(c)
    }) {
        Ok(c) => c,
        Err(_) => return (failure(0.1), None),
    };

    // Step 4: train (under whatever supervision the caller attached).
    let report = match train_supervised(&config, &ctx.train, &ctx.val, &mut rng, sup) {
        Ok(r) => r,
        Err(_) => return (failure(0.1), None),
    };

    // Simulated runtime at paper scale, pro-rated for early divergence
    // ("very short runtimes ... corresponding to failed training tasks").
    let full_minutes = ctx.cost_model.gpu_minutes(&paper_job(config.rcut), &mut rng);
    let progress = report.steps_completed as f64 / config.num_steps.max(1) as f64;
    let minutes = (full_minutes * progress).max(0.1);

    let lcurve_text = report.lcurve.to_text();
    if let Some(dir) = &run_dir {
        let _ = std::fs::write(dir.join("lcurve.out"), &lcurve_text);
    }
    match report.abort {
        // The deadline killed the job at the wall: charge the full limit,
        // as the real allocation would have.
        Some(abort @ AbortReason::Deadline { .. }) => {
            let charged = sup.deadline_minutes.unwrap_or(minutes);
            return (failure(charged), Some(abort));
        }
        // A cancelled attempt's record is discarded by the scheduler (its
        // twin already won); the pro-rated minutes only label the waste.
        Some(abort @ AbortReason::Cancelled { .. }) => {
            return (failure(minutes), Some(abort));
        }
        Some(abort @ AbortReason::Diverged { .. }) => {
            return (failure(minutes), Some(abort));
        }
        None => {}
    }
    if report.diverged {
        return (failure(minutes), None);
    }

    // Read the losses back through the artifact, as the paper's workflow
    // reads lcurve.out from disk.
    let parsed = match Lcurve::parse(&lcurve_text) {
        Ok(l) => l,
        Err(_) => return (failure(minutes), None),
    };
    let record = match parsed.final_losses() {
        Some((rmse_e, rmse_f)) if rmse_e.is_finite() && rmse_f.is_finite() => EvalRecord {
            fitness: Fitness::new(vec![rmse_e, rmse_f]),
            minutes,
            failed: false,
            lcurve_tail: parsed.tail(LCURVE_TAIL_ROWS).to_vec(),
        },
        _ => failure(minutes),
    };
    (record, None)
}

/// Salt separating the stable-id derivation domain from training seeds.
const ID_SALT: u64 = 0x1d5a_17ab_1e1d_0d0d;

/// Deterministic individual identity for journaled campaigns: a pure
/// function of the run seed and the individual's ordinal position in the
/// campaign (`generation × pop_size + slot` generationally, the submission
/// index in steady state). The top bit is always set, so stable ids can
/// never collide with the low process-local [`Id::fresh`] counter range —
/// which is what lets interrupted-and-resumed journals match uninterrupted
/// ones byte for byte, ids included.
pub(crate) fn stable_id(run_seed: u64, ordinal: u64) -> Id {
    Id::from_raw(derive_seed(run_seed ^ ID_SALT, ordinal) | (1 << 63))
}

/// Deterministic per-individual seed derivation (splitmix64 over a counter).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Convenience: sample a genome's runtime without training (used by cost
/// benches and the speedup harness).
pub fn simulated_minutes(ctx: &EvalContext, rcut: f64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    // Burn one value so this matches no particular training draw.
    let _: f64 = rng.random_range(0.0..1.0);
    ctx.cost_model.gpu_minutes(&paper_job(rcut), &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_md::generate::{generate_dataset, GenConfig};

    fn tiny_ctx(workdir: Option<PathBuf>) -> EvalContext {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gen = GenConfig::tiny();
        gen.n_atoms = 10;
        gen.box_len = 9.0;
        gen.n_frames = 8;
        let mut ds = generate_dataset(&gen, &mut rng);
        ds.add_label_noise(0.0005, 0.03, &mut rng);
        let (train_ds, val_ds) = ds.split(0.25, &mut rng);
        EvalContext {
            base_config: TrainConfig {
                embedding_neurons: vec![4, 4],
                fitting_neurons: vec![6],
                num_steps: 20,
                batch_per_worker: 1,
                n_workers: 1,
                disp_freq: 10,
                val_max_frames: 2,
                ..TrainConfig::default()
            },
            train: Arc::new(train_ds),
            val: Arc::new(val_ds),
            cost_model: CostModel::default(),
            workdir,
        }
    }

    fn good_genome() -> Vec<f64> {
        vec![0.005, 1e-4, 7.0, 2.5, 2.5, 4.5, 4.5] // none/tanh/tanh
    }

    #[test]
    fn successful_evaluation_returns_finite_two_objective_fitness() {
        let ctx = tiny_ctx(None);
        let record = evaluate_individual(&ctx, &good_genome(), 3);
        assert!(!record.failed);
        assert_eq!(record.fitness.len(), 2);
        assert!(!record.fitness.is_penalty());
        assert!(record.fitness.get(0) > 0.0, "energy loss");
        assert!(record.fitness.get(1) > 0.0, "force loss");
        assert!(record.minutes > 1.0 && record.minutes < 120.0);
    }

    #[test]
    fn absurd_learning_rate_gets_maxint_penalty() {
        let ctx = tiny_ctx(None);
        // start_lr at the top of range is fine, but we can force failure by
        // bypassing bounds (the workflow must be robust to any numbers).
        let mut genome = good_genome();
        genome[0] = 1e100;
        genome[1] = 1e99;
        let record = evaluate_individual(&ctx, &genome, 4);
        assert!(record.failed);
        assert!(record.fitness.is_penalty());
        // Failed training shows the paper's "very short runtime" signature.
        assert!(record.minutes < 20.0, "failed run should be short: {}", record.minutes);
    }

    #[test]
    fn zero_learning_rate_is_invalid_configuration() {
        let ctx = tiny_ctx(None);
        let mut genome = good_genome();
        genome[0] = 0.0;
        let record = evaluate_individual(&ctx, &genome, 5);
        assert!(record.failed && record.fitness.is_penalty());
    }

    #[test]
    fn artifacts_are_written_when_workdir_set() {
        let root = std::env::temp_dir().join(format!("dphpo-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let ctx = tiny_ctx(Some(root.clone()));
        let record = evaluate_individual(&ctx, &good_genome(), 6);
        assert!(!record.failed);
        let run_dirs: Vec<_> = std::fs::read_dir(&root).unwrap().collect();
        assert_eq!(run_dirs.len(), 1);
        let dir = run_dirs[0].as_ref().unwrap().path();
        // UUID-shaped directory name.
        assert_eq!(dir.file_name().unwrap().to_str().unwrap().split('-').count(), 5);
        let input = std::fs::read_to_string(dir.join("input.json")).unwrap();
        assert!(Json::parse(&input).is_ok());
        let lcurve = std::fs::read_to_string(dir.join("lcurve.out")).unwrap();
        let parsed = Lcurve::parse(&lcurve).unwrap();
        assert_eq!(
            parsed.final_losses().unwrap(),
            (record.fitness.get(0), record.fitness.get(1))
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn evaluation_is_deterministic_in_seed() {
        let ctx = tiny_ctx(None);
        let a = evaluate_individual(&ctx, &good_genome(), 42);
        let b = evaluate_individual(&ctx, &good_genome(), 42);
        assert_eq!(a.fitness, b.fitness);
        assert_eq!(a.minutes, b.minutes);
        let c = evaluate_individual(&ctx, &good_genome(), 43);
        assert_ne!(a.fitness, c.fitness);
    }

    #[test]
    fn supervised_divergence_aborts_within_one_sentinel_interval() {
        let ctx = tiny_ctx(None);
        let mut genome = good_genome();
        genome[0] = 1e100;
        genome[1] = 1e99;
        let (record, abort) =
            evaluate_individual_supervised(&ctx, &genome, 4, &TaskCtx::detached(0));
        assert!(record.failed && record.fitness.is_penalty());
        let Some(AbortReason::Diverged { step, .. }) = abort else {
            panic!("expected a structured divergence abort, got {abort:?}");
        };
        assert!(step <= 2, "sentinel took {step} steps to fire");
        // Pro-rated runtime shows the early abort: a couple of steps of a
        // 20-step run, nowhere near the full training cost.
        assert!(record.minutes < 10.0, "aborted run charged {} min", record.minutes);
    }

    #[test]
    fn supervised_path_matches_unsupervised_on_healthy_genomes() {
        let ctx = tiny_ctx(None);
        let plain = evaluate_individual(&ctx, &good_genome(), 42);
        let (supervised, abort) =
            evaluate_individual_supervised(&ctx, &good_genome(), 42, &TaskCtx::detached(0));
        assert!(abort.is_none());
        assert_eq!(plain.fitness, supervised.fitness);
        assert_eq!(plain.minutes, supervised.minutes);
    }

    #[test]
    fn estimated_minutes_is_deterministic_and_grows_with_cutoff() {
        let ctx = tiny_ctx(None);
        let mut near = good_genome();
        near[2] = 6.0;
        let mut far = good_genome();
        far[2] = 11.0;
        assert_eq!(estimated_minutes(&ctx, &near), estimated_minutes(&ctx, &near));
        assert!(
            estimated_minutes(&ctx, &far) > estimated_minutes(&ctx, &near),
            "larger cutoff means denser neighborhoods and longer training"
        );
    }

    #[test]
    fn derive_seed_spreads_indices() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| derive_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }
}
