//! The asynchronous steady-state campaign driver: NSGA-II without the
//! generation barrier (DESIGN.md §12).
//!
//! A generational campaign evaluates a whole offspring batch, then waits
//! for the slowest task before selection runs — every faster worker idles
//! through that tail. The steady-state driver keeps the pool saturated
//! instead: each completed evaluation is folded into the population the
//! moment it *arrives* and a replacement child is bred and submitted
//! immediately, so the only idle a worker ever accrues is the final drain
//! when the evaluation budget runs out.
//!
//! # The journaled arrival order
//!
//! Determinism cannot come from physical completion order — that is a
//! thread race. It comes from the **arrival order**: completions are
//! processed in ascending order of their *simulated* completion time (slot
//! cursor + charged minutes, ties broken by slot index), which is a pure
//! function of the campaign configuration. Each evaluation's journal record
//! carries its `arrival` index, and every RNG draw after initialisation is
//! keyed off `(run seed ^ SALT, arrival)` — never off wall-clock order — so
//! `--resume` replays the journaled order byte-identically regardless of
//! how live threads interleave.
//!
//! # Physical execution: windows over a simulated event queue
//!
//! The driver executes work in *windows*: it fills every free slot from the
//! FIFO submission queue (in ascending-cursor order), runs the window's
//! tasks genuinely in parallel via [`dphpo_hpc::run_stream_window`], then
//! processes the arrivals in simulated-completion order. This is not a
//! barrier in the simulated schedule: each slot's next task starts at that
//! slot's own cursor, exactly where an event-driven scheduler would start
//! it, and a child bred at arrival *k* lands on the *k*-th freed slot —
//! the windowed refill provably reproduces the event-driven steady-state
//! schedule while keeping the physical executor simple.
//!
//! # Epochs
//!
//! Every `pop_size` arrivals close an **epoch** — the steady-state analogue
//! of a generation. Epoch boundaries anneal mutation σ (matching the
//! generational schedule at equal evaluation budget), snapshot the
//! population into a [`GenerationRecord`], slice the continuous slot
//! accounting into a per-epoch [`PoolReport`], and publish an observatory
//! row — so the status surface and telemetry rollups are keyed by arrival
//! window and comparable, column for column, with a generational campaign.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dphpo_evo::nsga2::{GenerationRecord, Nsga2Config, RunResult};
use dphpo_evo::ops::random_population;
use dphpo_evo::steady::SteadyState;
use dphpo_evo::{ArchiveChurn, Fitness, Individual, ParetoArchive};
use dphpo_hpc::{
    run_stream_window, CostModel, FaultInjector, PoolReport, StreamSlots, TaskCtx,
};
use dphpo_md::Dataset;
use dphpo_obs::{cats, names, Event, Recorder, SpanCtx, When, NOOP};

use crate::campaign_report;
use crate::ea::{summit_eval_outcome, utilization_pct};
use crate::experiment::{archive_from_members, ExperimentConfig, ExperimentError, StatusSink};
use crate::journal::{EvalEntry, JournalSink, SnapshotEntry};
use crate::workflow::{derive_seed, estimated_minutes, stable_id, EvalContext};

/// Salt separating the steady-state breeding RNG domain from the training
/// seeds (which use the unsalted run seed, like generational campaigns).
const STEADY_SALT: u64 = 0x57ea_d75a_17e5_eed5;

/// Drive one steady-state run to completion. The counterpart of the
/// generational `drive_run`: same dataset, same pool shape, same fault
/// injector, same journal/replay and status surfaces — only the scheduling
/// differs. Returns the run result, one [`PoolReport`] per epoch, the
/// Pareto archive, and the completed-task count (for the chaos kill
/// budget).
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_steady_run(
    config: &ExperimentConfig,
    nsga2: &Nsga2Config,
    train: &Arc<Dataset>,
    val: &Arc<Dataset>,
    run_idx: usize,
    faults: FaultInjector,
    journal: Option<JournalSink>,
    restored: Option<SnapshotEntry>,
    progress: &mut Option<&mut dyn FnMut(usize, usize)>,
    recorder: Option<&Arc<dyn Recorder>>,
    status: &mut StatusSink,
) -> Result<(RunResult, Vec<PoolReport>, ParetoArchive, u64), ExperimentError> {
    let seed = config.master_seed + run_idx as u64;
    let budget = config.pop_size * (config.generations + 1);
    let ctx = Arc::new(EvalContext {
        base_config: config.base_train_config.clone(),
        train: Arc::clone(train),
        val: Arc::clone(val),
        cost_model: CostModel::default(),
        workdir: None,
    });
    // One fault-decision domain for the whole run: deaths hash
    // (seed, 0, submission, attempt), a pure function of the submission
    // index — reproducible on resume regardless of where the driver died.
    faults.set_batch_key(0);
    let (obs, base_span): (&dyn Recorder, SpanCtx) = match recorder {
        Some(rec) => (rec.as_ref(), SpanCtx::root(seed, run_idx as u32)),
        None => (&NOOP, SpanCtx::default()),
    };
    let obs_on = obs.enabled();

    // Snapshot cadence, in arrivals. `snapshot_every_epochs == 0` clamps to
    // one — a snapshot at every window boundary.
    let snap_every = (config.snapshot_every_epochs * config.pop_size).max(1);

    // Restore from a journal snapshot when one is available; otherwise the
    // initial population draws from the same RNG stream generational
    // campaigns use (`StdRng::seed_from_u64(run seed)`), so generation 0's
    // genomes — and therefore its training outcomes — coincide exactly.
    // Either way, every individual carries its stable journaled id: the
    // initial population by submission index, each bred child by its own
    // submission index at breed time.
    let (
        mut pending,
        mut submitted,
        mut slots,
        mut steady,
        mut archive,
        mut history,
        mut epoch_reports,
        mut epoch_failures,
        mut epoch_churn,
        mut epoch_sim_offset,
        mut snapped_through,
    ): (VecDeque<(usize, Individual)>, _, _, _, _, Vec<GenerationRecord>, Vec<PoolReport>, _, _, _, _) =
        match restored {
            Some(snap) => {
                status.status.set_run(run_idx, snap.status_rows.clone());
                status.set_profile_run(run_idx, &snap.history, &snap.epoch_reports);
                status.flush();
                (
                    snap.pending.into_iter().collect(),
                    snap.submitted,
                    StreamSlots::from_state(snap.slots),
                    SteadyState::restore(nsga2, snap.std, snap.population, snap.arrivals),
                    archive_from_members(&snap.archive),
                    snap.history,
                    snap.epoch_reports,
                    snap.epoch_failures,
                    ArchiveChurn {
                        offered: snap.epoch_churn.0,
                        added: snap.epoch_churn.1,
                        evicted: snap.epoch_churn.2,
                    },
                    snap.epoch_sim_offset,
                    (snap.arrivals / snap_every) * snap_every,
                )
            }
            None => {
                let mut init_rng = StdRng::seed_from_u64(seed);
                let initial =
                    random_population(config.pop_size, &nsga2.init_ranges, &mut init_rng);
                let pending: VecDeque<(usize, Individual)> = initial
                    .into_iter()
                    .enumerate()
                    .map(|(i, mut ind)| {
                        ind.id = stable_id(seed, i as u64);
                        (i, ind)
                    })
                    .collect();
                (
                    pending,
                    config.pop_size,
                    StreamSlots::new(config.pool.n_workers),
                    SteadyState::new(nsga2),
                    ParetoArchive::new(),
                    Vec::with_capacity(config.generations + 1),
                    Vec::with_capacity(config.generations + 1),
                    0usize,
                    ArchiveChurn::default(),
                    0.0f64,
                    0usize,
                )
            }
        };

    if let Some(cb) = progress.as_deref_mut() {
        cb(run_idx, steady.epoch());
    }

    while !pending.is_empty() {
        // Refill every free slot in ascending-cursor order (ties by slot
        // index): the order an event-driven scheduler would free them in.
        let order = slots.free_order();
        let n = pending.len().min(order.len());
        let mut window: Vec<(usize, usize, Vec<f64>)> = Vec::with_capacity(n);
        let mut window_inds: Vec<Individual> = Vec::with_capacity(n);
        for &slot in order.iter().take(n) {
            let (submission, ind) = pending.pop_front().expect("n <= pending.len()");
            window.push((submission, slot, ind.genome.clone()));
            window_inds.push(ind);
        }

        // Training spans are labelled with the submission "wave"
        // (`submission / pop_size`) — a deterministic pseudo-epoch; the
        // real epoch an arrival lands in is only known at arrival time.
        let replay = journal.as_ref().map(|sink| &*sink.replay);
        let reports = run_stream_window(
            &window,
            |tc: &TaskCtx<'_>, genome: &Vec<f64>| {
                let submission = tc.task;
                // Replay: a journaled outcome for this submission with a
                // bit-exact genome match short-circuits training.
                if let Some(entry) = replay.and_then(|map| map.get(&(0, submission))) {
                    if entry.genome == *genome {
                        return entry.to_outcome();
                    }
                }
                summit_eval_outcome(
                    &ctx,
                    genome,
                    derive_seed(seed, submission as u64),
                    tc,
                    obs,
                    base_span
                        .with_gen((submission / config.pop_size) as u32)
                        .with_task(submission as u32, tc.attempt),
                )
            },
            |_, genome: &Vec<f64>| estimated_minutes(&ctx, genome),
            &config.pool,
            &faults,
        );

        // Charge the window against the simulated slot clocks, then process
        // arrivals in ascending simulated-completion order (ties broken by
        // slot index) — the deterministic arrival order everything else is
        // keyed off.
        let mut arrivals: Vec<(f64, usize, usize, f64)> = Vec::with_capacity(n);
        for (i, report) in reports.iter().enumerate() {
            let slot = window[i].1;
            let start = slots.cursor(slot);
            let completion = slots.charge(slot, report);
            arrivals.push((completion, slot, i, start));
        }
        arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        for &(_completion, slot, i, start) in &arrivals {
            let submission = window[i].0;
            let ind = &window_inds[i];
            let report = &reports[i];
            let arrival_idx = steady.arrivals();
            // Count the completion against the (chaos-mode) driver
            // lifetime; a dead driver loses every later arrival — exactly
            // the crash the journal protects against.
            let driver_alive = faults.note_task_completion();
            if let Some(sink) = &journal {
                let replayed =
                    sink.replay.get(&(0, submission)).is_some_and(|e| e.genome == ind.genome);
                if driver_alive && !replayed {
                    let mut entry = EvalEntry::from_task(
                        sink.run,
                        0,
                        submission,
                        derive_seed(seed, submission as u64),
                        &ind.genome,
                        &report.record,
                    );
                    entry.arrival = Some(arrival_idx);
                    match sink.writer.borrow_mut().append_eval(&entry) {
                        Ok(offset) => {
                            if obs_on {
                                obs.counter_add(names::C_JOURNAL_APPENDS, 1);
                                let mut ev = Event::instant(
                                    names::JOURNAL_APPEND,
                                    cats::JOURNAL,
                                    base_span
                                        .with_task(submission as u32, report.record.attempts),
                                );
                                ev.args = vec![
                                    ("offset", offset as f64),
                                    (
                                        "ok",
                                        if report.record.value.is_ok() { 1.0 } else { 0.0 },
                                    ),
                                ];
                                obs.record(ev);
                            }
                        }
                        // A record that failed to reach disk is a crash at
                        // this arrival: the driver dies, the arrival (and
                        // everything after it) is lost, and resume replays
                        // up to the durable prefix.
                        Err(_) => faults.declare_dead(),
                    }
                }
            }
            // `driver_alive` (the note's return) gated the append above —
            // "the k-th completion reached disk"; `faults.driver_alive()`
            // decides whether the driver survives to *process* it. The gap
            // between the two is exactly the crash-at-arrival-k semantics
            // the chaos tests kill at every index of.
            if !faults.driver_alive() {
                return Err(ExperimentError::Interrupted {
                    completed_tasks: faults.completed_tasks(),
                });
            }

            let mut evaluated = window_inds[i].clone();
            let failed = report.record.value.is_err();
            let fitness = match &report.record.value {
                Ok(rec) => rec.fitness.clone(),
                Err(_) => Fitness::penalty(2),
            };
            if failed {
                epoch_failures += 1;
            }
            evaluated.fitness = Some(fitness);
            evaluated.eval_minutes = Some(report.record.minutes);

            // The archive silently rejects penalty candidates, so every
            // arrival is offered unconditionally.
            let (added, evicted) = archive.offer_counted(&evaluated);
            epoch_churn.offered += 1;
            epoch_churn.added += usize::from(added);
            epoch_churn.evicted += evicted;

            if obs_on {
                obs.observe(names::H_EVAL_MINUTES, report.record.minutes);
                obs.record(Event {
                    name: names::EVAL,
                    cat: cats::SCHED,
                    ctx: base_span
                        .with_gen((steady.arrivals() / config.pop_size) as u32)
                        .with_task(submission as u32, report.record.attempts),
                    step: None,
                    when: When::Sim(start),
                    dur_min: report.charged_minutes(),
                    worker: Some(slot as u32),
                    args: vec![
                        ("ok", if report.record.value.is_ok() { 1.0 } else { 0.0 }),
                        ("minutes", report.record.minutes),
                        ("attempts", report.record.attempts as f64),
                        ("arrival", arrival_idx as f64),
                    ],
                });
            }

            let consumed = steady.tell(evaluated);
            debug_assert_eq!(consumed, arrival_idx);

            // Breed the replacement immediately, keyed off the journaled
            // arrival index alone — the "ask" half of the ask/tell loop.
            if submitted < budget {
                let mut rng =
                    StdRng::seed_from_u64(derive_seed(seed ^ STEADY_SALT, consumed as u64));
                let mut child = steady.breed(&mut rng);
                child.id = stable_id(seed, submitted as u64);
                pending.push_back((submitted, child));
                submitted += 1;
            }

            // Epoch boundary: snapshot, slice the accounting, publish.
            if steady.arrivals().is_multiple_of(config.pop_size) {
                let epoch = steady.arrivals() / config.pop_size - 1;
                let record = GenerationRecord {
                    generation: epoch,
                    failures: epoch_failures,
                    population: steady.population().to_vec(),
                };
                let epoch_report = slots.epoch_report();
                let row = campaign_report::generation_row(
                    &record,
                    &archive,
                    epoch_churn,
                    &epoch_report,
                );
                if obs_on {
                    obs.counter_add(names::C_GENERATIONS, 1);
                    let span = base_span.with_gen(epoch as u32);
                    obs.record(Event {
                        name: names::GENERATION,
                        cat: cats::EA,
                        ctx: span,
                        step: None,
                        when: When::Sim(epoch_sim_offset),
                        dur_min: epoch_report.makespan_minutes,
                        worker: None,
                        args: vec![
                            ("n_tasks", config.pop_size as f64),
                            ("deaths", epoch_report.worker_deaths as f64),
                            ("retried", epoch_report.retried_tasks as f64),
                            ("speculated", epoch_report.speculated_tasks as f64),
                            ("lost_min", epoch_report.lost_minutes),
                            ("wall_min", epoch_report.wall_minutes),
                            ("backoff_min", epoch_report.backoff_minutes),
                            (
                                "util_busy_pct",
                                utilization_pct(&epoch_report, config.pool.n_workers),
                            ),
                        ],
                    });
                    epoch_sim_offset += epoch_report.makespan_minutes;
                    let mut ev = Event::instant(names::FRONT, cats::EA, span);
                    ev.when = When::Sim(epoch_sim_offset);
                    ev.args = vec![
                        ("hypervolume", row.hypervolume),
                        ("cardinality", row.cardinality as f64),
                        ("spread", row.spread),
                        ("offered", epoch_churn.offered as f64),
                        ("added", epoch_churn.added as f64),
                        ("evicted", epoch_churn.evicted as f64),
                    ];
                    obs.record(ev);
                    obs.gauge_set(names::G_HYPERVOLUME, row.hypervolume);
                    obs.gauge_set(names::G_ARCHIVE_SIZE, row.cardinality as f64);
                    obs.gauge_set(names::G_FRONT_SPREAD, row.spread);
                    obs.counter_add(names::C_ARCHIVE_ADDED, epoch_churn.added as u64);
                    obs.counter_add(names::C_ARCHIVE_EVICTED, epoch_churn.evicted as u64);
                } else {
                    epoch_sim_offset += epoch_report.makespan_minutes;
                }
                status.push_profile_row(run_idx, &record, &epoch_report);
                status.status.push_row(run_idx, row);
                status.flush();
                history.push(record);
                epoch_reports.push(epoch_report);
                epoch_failures = 0;
                epoch_churn = ArchiveChurn::default();
                if let Some(cb) = progress.as_deref_mut() {
                    cb(run_idx, epoch + 1);
                }
            }
        }

        // Window boundary: when the snapshot cadence has been crossed since
        // the last snapshot, append a self-contained snapshot record so a
        // later resume replays only the arrival suffix after it. Snapshots
        // are written at window ends only — a chaos kill always lands
        // mid-window, so a killed journal carries exactly the snapshots an
        // uninterrupted run writes at those same boundaries, and kill+resume
        // stays byte-identical. A dead driver writes nothing, like any
        // other record.
        if let Some(sink) = &journal {
            let arrived = steady.arrivals();
            let due = (arrived / snap_every) * snap_every;
            if due > snapped_through && arrived > 0 && faults.driver_alive() {
                let snap = SnapshotEntry {
                    run: sink.run,
                    arrivals: arrived,
                    submitted,
                    std: steady.std().to_vec(),
                    population: steady.population().to_vec(),
                    pending: pending.iter().cloned().collect(),
                    archive: archive.members().to_vec(),
                    slots: slots.state(),
                    history: history.clone(),
                    epoch_reports: epoch_reports.clone(),
                    epoch_failures,
                    epoch_churn: (epoch_churn.offered, epoch_churn.added, epoch_churn.evicted),
                    epoch_sim_offset,
                    status_rows: status
                        .status
                        .runs
                        .iter()
                        .find(|r| r.run == run_idx)
                        .map(|r| r.generations.clone())
                        .unwrap_or_default(),
                };
                if sink.writer.borrow_mut().append_snapshot(&snap).is_err() {
                    faults.declare_dead();
                    return Err(ExperimentError::Interrupted {
                        completed_tasks: faults.completed_tasks(),
                    });
                }
                snapped_through = due;
            }
        }
    }

    assert_eq!(steady.arrivals(), budget, "every submitted task must arrive exactly once");
    let completed = faults.completed_tasks();
    Ok((RunResult { history, evaluations: budget }, epoch_reports, archive, completed))
}
