//! # dphpo-core
//!
//! The paper's contribution: multiobjective hyperparameter optimization of
//! deep-learning interatomic potential training with NSGA-II, deployed on a
//! (simulated) Summit allocation.
//!
//! * [`representation`] — the seven-gene real-valued genome of Table 1.
//! * [`mod@decode`] — the `floor(gene) % n` categorical decoder of §2.2.2.
//! * [`template`] — `string.Template`-style `input.json` substitution.
//! * [`workflow`] — the §2.2.4 per-individual evaluation: decode → run dir
//!   → input.json → train → read `lcurve.out` → two-element fitness, with
//!   MAXINT on every failure path.
//! * [`ea`] — the NSGA-II deployment over the `dphpo-hpc` worker pool.
//! * [`experiment`] — five independent runs over a shared dataset, in
//!   either campaign mode: the paper's generational barrier or the
//!   asynchronous steady-state loop in [`mod@steady`] (DESIGN.md §12).
//! * [`analysis`] — Pareto frontier, chemical-accuracy filtering, and the
//!   exports behind every figure and table of the evaluation section.
//!
//! ```no_run
//! use dphpo_core::analysis::analyze;
//! use dphpo_core::experiment::{run_experiment, ExperimentConfig};
//!
//! let result = run_experiment(&ExperimentConfig::reduced());
//! let analysis = analyze(&result);
//! for (force, energy) in analysis.table2() {
//!     println!("frontier solution: {force:.4} eV/Å, {energy:.4} eV/atom");
//! }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod campaign_report;
pub mod decode;
pub mod ea;
pub mod journal;
pub mod nas;
pub mod experiment;
pub mod profile;
pub mod representation;
pub mod steady;
pub mod template;
pub mod workflow;

pub use analysis::{analyze, analyze_with_thresholds, Analysis, SolutionRecord, CHEM_ACC_ENERGY, CHEM_ACC_FORCE};
pub use campaign_report::{
    counter_trace_json, markdown_report, status_json, CampaignStatus, GenStatus, RunStatus,
    REFERENCE_POINT, STATUS_SCHEMA,
};
pub use decode::{decode, DecodedGenome};
pub use nas::{decode_nas, DecodedNas, NasRepresentation};
pub use ea::SummitEvaluator;
pub use experiment::{
    resume_experiment, resume_experiment_observed, run_experiment, run_experiment_journaled,
    run_experiment_journaled_observed, run_experiment_observed, Campaign, CampaignMode,
    ExperimentConfig, ExperimentError, ExperimentResult,
};
pub use journal::{
    compact, crc32, frame_line, parse_frame, salvage, verify, CompactReport, Journal,
    JournalError, JournalWriter, SalvageReport, SnapshotEntry, VerifyReport, FRAME_PREFIX_LEN,
};
pub use representation::DeepMDRepresentation;
pub use workflow::{
    evaluate_individual, evaluate_individual_observed, EvalContext, EvalRecord,
};
