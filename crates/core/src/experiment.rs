//! Experiment orchestration: N independent EA deployments over one shared
//! dataset — the paper runs five, each on 100 Summit nodes for 7
//! generations (the random generation 0 plus 6 EA steps).
//!
//! Campaigns can be journaled ([`run_experiment_journaled`]) and resumed
//! ([`resume_experiment`]): every evaluation and generation boundary is
//! appended to a write-ahead JSONL journal, and a resumed campaign replays
//! the journaled work to a result bit-identical to an uninterrupted run
//! (see [`crate::journal`] for the determinism contract). The journaled
//! and plain paths share one driver loop, so journaling never changes the
//! optimisation itself.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dphpo_dnnp::{StepBudget, TrainConfig};
use dphpo_evo::nsga2::{GenerationRecord, Nsga2Config, Nsga2State, RunResult};
use dphpo_evo::{FrontStats, Individual, ParetoArchive};
use dphpo_hpc::{
    CostModel, FaultInjector, FaultPlan, IoSite, PoolConfig, PoolReport, SupervisorConfig,
    JOURNAL_APPEND_SITE, STATUS_FSYNC_SITE,
};
use dphpo_obs::profile::ProfileNode;
use dphpo_obs::Recorder;
use dphpo_md::generate::{generate_dataset, GenConfig};
use dphpo_md::Dataset;

use crate::campaign_report::{self, CampaignStatus};
use crate::ea::SummitEvaluator;
use crate::journal::{GenEntry, Journal, JournalError, JournalSink, JournalWriter};
use crate::representation::DeepMDRepresentation;
use crate::workflow::{stable_id, EvalContext};

/// How a campaign schedules its evaluations (see DESIGN.md §12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignMode {
    /// The paper's per-generation barrier: a whole offspring batch is
    /// evaluated, the driver waits for every task, then selection runs.
    /// This is the default, and the mode every checked-in artifact uses.
    Generational,
    /// Asynchronous steady-state NSGA-II: each completed evaluation is
    /// folded into the population the moment it arrives (in deterministic
    /// *arrival order*) and a replacement child is bred and submitted
    /// immediately, so workers never idle at a generation boundary.
    SteadyState,
}

/// Full experiment configuration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Independent EA deployments (paper: 5).
    pub n_runs: usize,
    /// Population size = offspring size = node count (paper: 100).
    pub pop_size: usize,
    /// EA steps after the random initial generation (paper: 6).
    pub generations: usize,
    /// Fixed training settings shared by every evaluation.
    pub base_train_config: TrainConfig,
    /// Synthetic-FPMD dataset generation parameters.
    pub gen_config: GenConfig,
    /// DFT-noise-floor label noise: energy (eV/atom), force (eV/Å).
    pub label_noise: (f64, f64),
    /// Worker-pool shape (timeout, nannies, retries).
    pub pool: PoolConfig,
    /// Per-task worker-death probability (hardware faults).
    pub fault_probability: f64,
    /// Master seed; run `r` uses `master_seed + r`.
    pub master_seed: u64,
    /// Scheduling mode: generational (barrier) or steady-state (async).
    /// Part of the journal fingerprint — the two modes' journals are
    /// mutually non-resumable.
    pub mode: CampaignMode,
    /// Journal snapshot cadence for steady-state campaigns, in epochs:
    /// every this many epochs (`pop_size` arrivals each) the driver appends
    /// a self-contained snapshot record, so resume replays only the suffix
    /// after the last snapshot instead of the whole campaign. `0` snapshots
    /// at every window boundary. Not part of the config fingerprint — the
    /// cadence may change between a run and its resume.
    pub snapshot_every_epochs: usize,
}

impl ExperimentConfig {
    /// The paper's scale, for the record (do not run on a laptop: 3500
    /// trainings of a 160-atom system).
    pub fn paper_scale() -> Self {
        ExperimentConfig {
            n_runs: 5,
            pop_size: 100,
            generations: 6,
            base_train_config: TrainConfig::paper_scale(),
            gen_config: GenConfig::paper_scale(),
            label_noise: (0.0005, 0.03),
            pool: PoolConfig {
                n_workers: 100,
                timeout_minutes: Some(120.0),
                nanny: false,
                max_attempts: 3,
                supervisor: SupervisorConfig::default(),
            },
            fault_probability: 0.002,
            master_seed: 2023,
            mode: CampaignMode::Generational,
            snapshot_every_epochs: 1,
        }
    }

    /// Reduced scale that preserves every qualitative behaviour: 40 atoms
    /// in the paper's 17.84 Å box, a few hundred training steps, population
    /// in the dozens. This is what the figure/table harnesses run.
    pub fn reduced() -> Self {
        ExperimentConfig {
            n_runs: 5,
            pop_size: 12,
            generations: 6,
            base_train_config: TrainConfig {
                num_steps: 2_000,
                disp_freq: 500,
                val_max_frames: 6,
                ..TrainConfig::default()
            },
            gen_config: GenConfig::reduced(),
            label_noise: (0.0005, 0.03),
            pool: PoolConfig {
                n_workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
                timeout_minutes: Some(120.0),
                nanny: false,
                max_attempts: 3,
                supervisor: SupervisorConfig::default(),
            },
            fault_probability: 0.002,
            master_seed: 2023,
            mode: CampaignMode::Generational,
            snapshot_every_epochs: 1,
        }
    }

    /// Minimal smoke scale for unit and integration tests.
    pub fn smoke() -> Self {
        ExperimentConfig {
            n_runs: 2,
            pop_size: 4,
            generations: 1,
            base_train_config: TrainConfig {
                embedding_neurons: vec![4, 4],
                fitting_neurons: vec![6],
                num_steps: 12,
                batch_per_worker: 1,
                n_workers: 1,
                disp_freq: 12,
                val_max_frames: 2,
                ..TrainConfig::default()
            },
            gen_config: GenConfig {
                n_atoms: 10,
                box_len: 9.0,
                n_frames: 8,
                equil_steps: 80,
                sample_every: 4,
                ..GenConfig::tiny()
            },
            label_noise: (0.0005, 0.03),
            pool: PoolConfig {
                n_workers: 2,
                timeout_minutes: Some(120.0),
                nanny: false,
                max_attempts: 3,
                supervisor: SupervisorConfig::default(),
            },
            fault_probability: 0.0,
            master_seed: 7,
            mode: CampaignMode::Generational,
            snapshot_every_epochs: 1,
        }
    }
}

/// Result of the full experiment.
pub struct ExperimentResult {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// One EA history per run.
    pub runs: Vec<RunResult>,
    /// Scheduler reports per run (makespans, deaths, retries).
    pub pool_reports: Vec<Vec<PoolReport>>,
    /// Cross-generation Pareto archive per run (every non-dominated,
    /// non-penalty solution the run ever surfaced).
    pub archives: Vec<ParetoArchive>,
    /// The campaign observatory: per-generation search-quality and
    /// utilization rows (see [`crate::campaign_report`]).
    pub status: CampaignStatus,
}

impl ExperimentResult {
    /// Total DNNP trainings performed (the paper reports 3500 over five
    /// 7-generation runs of population 100).
    pub fn total_evaluations(&self) -> usize {
        self.runs.iter().map(|r| r.evaluations).sum()
    }

    /// Failures (MAXINT evaluations) per generation, summed across runs.
    pub fn failures_per_generation(&self) -> Vec<usize> {
        let gens = self.config.generations + 1;
        let mut out = vec![0usize; gens];
        for run in &self.runs {
            for record in &run.history {
                out[record.generation] += record.failures;
            }
        }
        out
    }
}

/// Why a journaled campaign stopped without a result.
#[derive(Debug)]
pub enum ExperimentError {
    /// The (simulated) driver was killed mid-campaign — the crash the
    /// write-ahead journal exists for. Resume with [`resume_experiment`].
    Interrupted {
        /// Tasks the driver had journaled when it died.
        completed_tasks: u64,
    },
    /// Journal I/O or validation failure (corrupt file, stale config, …).
    Journal(JournalError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Interrupted { completed_tasks } => {
                write!(f, "driver killed after {completed_tasks} journaled tasks")
            }
            ExperimentError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<JournalError> for ExperimentError {
    fn from(e: JournalError) -> Self {
        ExperimentError::Journal(e)
    }
}

/// Generate the shared dataset (the "CP2K trajectory"), with label noise
/// and the paper's 75/25 split.
pub fn build_dataset(config: &ExperimentConfig) -> (Arc<Dataset>, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(config.master_seed ^ 0x0da7_a5e7);
    let mut dataset = generate_dataset(&config.gen_config, &mut rng);
    dataset.add_label_noise(config.label_noise.0, config.label_noise.1, &mut rng);
    let (train, val) = dataset.split(0.25, &mut rng);
    (Arc::new(train), Arc::new(val))
}

fn nsga2_config_for(config: &ExperimentConfig) -> Nsga2Config {
    Nsga2Config {
        pop_size: config.pop_size,
        generations: config.generations,
        init_ranges: DeepMDRepresentation::init_ranges(),
        bounds: DeepMDRepresentation::bounds(),
        std: DeepMDRepresentation::initial_std(),
        anneal_factor: DeepMDRepresentation::ANNEAL_FACTOR,
    }
}

/// Run the complete experiment: dataset generation plus `n_runs`
/// independent NSGA-II deployments.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    run_experiment_with(config, None)
}

/// As [`run_experiment`], with an optional per-generation progress callback
/// `(run, generation)` for long harnesses.
pub fn run_experiment_with(
    config: &ExperimentConfig,
    progress: Option<&mut dyn FnMut(usize, usize)>,
) -> ExperimentResult {
    run_experiment_inner(config, progress, None, None, None, None, None, None, None)
        .expect("an unjournaled campaign cannot be interrupted")
}

/// As [`run_experiment`], with a telemetry recorder attached to every run's
/// evaluator (run `r` becomes Chrome-trace process `r`). Recording is
/// strictly observational: the campaign's populations, archives, and
/// reports are bit-identical with or without it.
pub fn run_experiment_observed(
    config: &ExperimentConfig,
    progress: Option<&mut dyn FnMut(usize, usize)>,
    recorder: Arc<dyn Recorder>,
) -> ExperimentResult {
    run_experiment_inner(config, progress, None, None, None, Some(recorder), None, None, None)
        .expect("an unjournaled campaign cannot be interrupted")
}

/// Run the experiment with a write-ahead journal at `journal_path`: every
/// completed evaluation and generation boundary is appended (and flushed)
/// before the campaign moves on, so a crash loses at most in-flight work.
pub fn run_experiment_journaled(
    config: &ExperimentConfig,
    journal_path: &Path,
    progress: Option<&mut dyn FnMut(usize, usize)>,
) -> Result<ExperimentResult, ExperimentError> {
    let writer = JournalWriter::create(journal_path, config)?;
    run_experiment_inner(
        config,
        progress,
        Some(Rc::new(RefCell::new(writer))),
        None,
        None,
        None,
        None,
        None,
        None,
    )
}

/// As [`run_experiment_journaled`], with a telemetry recorder: journal
/// appends are cross-referenced into the event stream by byte offset.
pub fn run_experiment_journaled_observed(
    config: &ExperimentConfig,
    journal_path: &Path,
    progress: Option<&mut dyn FnMut(usize, usize)>,
    recorder: Arc<dyn Recorder>,
) -> Result<ExperimentResult, ExperimentError> {
    let writer = JournalWriter::create(journal_path, config)?;
    run_experiment_inner(
        config,
        progress,
        Some(Rc::new(RefCell::new(writer))),
        None,
        None,
        Some(recorder),
        None,
        None,
        None,
    )
}

/// Chaos mode: as [`run_experiment_journaled`], but the (simulated) driver
/// is killed after `kill_after_tasks` task completions — records past that
/// point are lost, the campaign returns [`ExperimentError::Interrupted`],
/// and the journal on disk is exactly what a real crash would leave.
pub fn run_experiment_journaled_with_kill(
    config: &ExperimentConfig,
    journal_path: &Path,
    kill_after_tasks: u64,
) -> Result<ExperimentResult, ExperimentError> {
    let writer = JournalWriter::create(journal_path, config)?;
    run_experiment_inner(
        config,
        None,
        Some(Rc::new(RefCell::new(writer))),
        Some(kill_after_tasks),
        None,
        None,
        None,
        None,
        None,
    )
}

/// Resume an interrupted campaign from its journal. Journaled evaluations
/// are replayed instead of retrained, missing tasks are re-submitted, and
/// the continuation (appended to the same journal) reaches a result
/// **bit-identical** to an uninterrupted run. The journal must have been
/// written under the same configuration ([`Journal::check_config`]).
pub fn resume_experiment(
    config: &ExperimentConfig,
    journal_path: &Path,
    progress: Option<&mut dyn FnMut(usize, usize)>,
) -> Result<ExperimentResult, ExperimentError> {
    resume_experiment_inner(config, journal_path, progress, None)
}

/// As [`resume_experiment`], with a telemetry recorder. Replayed
/// evaluations emit no per-step training events (they never retrain); their
/// `eval` spans are still reconstructed from the journaled minutes.
pub fn resume_experiment_observed(
    config: &ExperimentConfig,
    journal_path: &Path,
    progress: Option<&mut dyn FnMut(usize, usize)>,
    recorder: Arc<dyn Recorder>,
) -> Result<ExperimentResult, ExperimentError> {
    resume_experiment_inner(config, journal_path, progress, Some(recorder))
}

fn resume_experiment_inner(
    config: &ExperimentConfig,
    journal_path: &Path,
    progress: Option<&mut dyn FnMut(usize, usize)>,
    recorder: Option<Arc<dyn Recorder>>,
) -> Result<ExperimentResult, ExperimentError> {
    let journal = Journal::load(journal_path)?;
    journal.check_config(config)?;
    let writer = JournalWriter::open_append(journal_path, config, &journal)?;
    run_experiment_inner(
        config,
        progress,
        Some(Rc::new(RefCell::new(writer))),
        None,
        Some(&journal),
        recorder,
        None,
        None,
        None,
    )
}

/// The live status surface: accumulates observatory rows and (when a path
/// is configured) rewrites `campaign_status.json` atomically at every
/// generation (or steady-state epoch) boundary.
pub(crate) struct StatusSink {
    pub(crate) status: CampaignStatus,
    path: Option<PathBuf>,
    /// Fault-injection site covering the whole atomic rewrite (temp-file
    /// write, fsyncs, rename). A fired fault skips the rewrite: the file
    /// keeps its previous content, exactly what a failed atomic replace
    /// leaves behind — and the next boundary's flush rewrites it whole.
    io: IoSite,
    /// Directory for `profile.json` / `profile.folded`; `None` leaves the
    /// profiler off (and skips all profile bookkeeping).
    profile_dir: Option<PathBuf>,
    /// Per-run generation attribution nodes, keyed by run index — the
    /// journal-derived tree the profile artifacts are rendered from.
    profile_runs: BTreeMap<usize, Vec<ProfileNode>>,
    /// The base configuration's per-phase tape-node census, embedded in
    /// `profile.json` (computed once per campaign when profiling is on).
    step_budget: Option<StepBudget>,
}

impl StatusSink {
    fn new(
        config: &ExperimentConfig,
        path: Option<&Path>,
        plan: Option<&Arc<FaultPlan>>,
        profile_dir: Option<&Path>,
        step_budget: Option<StepBudget>,
    ) -> Self {
        let io = match plan {
            Some(plan) => IoSite::new(Arc::clone(plan), STATUS_FSYNC_SITE),
            None => IoSite::disabled(STATUS_FSYNC_SITE),
        };
        StatusSink {
            status: CampaignStatus::new(config),
            path: path.map(Path::to_path_buf),
            io,
            profile_dir: profile_dir.map(Path::to_path_buf),
            profile_runs: BTreeMap::new(),
            step_budget,
        }
    }

    /// Append one boundary's attribution node (no-op with profiling off).
    pub(crate) fn push_profile_row(
        &mut self,
        run: usize,
        record: &GenerationRecord,
        report: &PoolReport,
    ) {
        if self.profile_dir.is_none() {
            return;
        }
        self.profile_runs
            .entry(run)
            .or_default()
            .push(crate::profile::generation_node(record, report));
    }

    /// Replace (or install) one run's attribution nodes from journaled
    /// boundaries — the profile twin of [`CampaignStatus::set_run`], so a
    /// resumed campaign's artifacts match the uninterrupted run's bytes.
    pub(crate) fn set_profile_run(
        &mut self,
        run: usize,
        records: &[GenerationRecord],
        reports: &[PoolReport],
    ) {
        if self.profile_dir.is_none() {
            return;
        }
        let rows = records
            .iter()
            .zip(reports)
            .map(|(record, report)| crate::profile::generation_node(record, report))
            .collect();
        self.profile_runs.insert(run, rows);
    }

    /// Rewrite the status file; returns `false` when an injected fault
    /// swallowed this rewrite (the on-disk file is stale but intact).
    ///
    /// Profile artifacts rewrite first, *outside* the fault-injection site:
    /// profiling on vs off must not shift the status site's occurrence
    /// sequence, and a swallowed status rewrite still leaves fresh profile
    /// artifacts (both are whole-file rewrites at every boundary anyway).
    pub(crate) fn flush(&self) -> bool {
        if let Some(dir) = &self.profile_dir {
            let root = crate::profile::campaign_node(&self.profile_runs);
            crate::profile::write_profile_atomic(dir, &root, self.step_budget.as_ref())
                .expect("rewrite profile artifacts");
        }
        let Some(path) = &self.path else { return true };
        if self.io.next().is_some() {
            return false;
        }
        campaign_report::write_status_atomic(path, &self.status)
            .expect("rewrite campaign status file");
        true
    }
}

/// Builder for campaigns that want the observatory surface: a write-ahead
/// journal, a live `campaign_status.json` (rewritten atomically at every
/// generation boundary), chaos-mode driver kills, resume, and telemetry —
/// in any combination. The existing free functions remain as shorthands;
/// this is the one place every option composes.
///
/// ```no_run
/// use dphpo_core::experiment::{Campaign, ExperimentConfig};
///
/// let config = ExperimentConfig::smoke();
/// let result = Campaign::new(&config)
///     .journal("campaign.jsonl")
///     .status_file("campaign_status.json")
///     .run(None)
///     .unwrap();
/// println!("{}", dphpo_core::campaign_report::markdown_report(&result.status));
/// ```
pub struct Campaign<'a> {
    config: &'a ExperimentConfig,
    journal_path: Option<PathBuf>,
    status_path: Option<PathBuf>,
    kill_after_tasks: Option<u64>,
    resume: bool,
    recorder: Option<Arc<dyn Recorder>>,
    fault_plan: Option<Arc<FaultPlan>>,
    profile_dir: Option<PathBuf>,
}

impl<'a> Campaign<'a> {
    /// A plain, unjournaled campaign for `config`.
    pub fn new(config: &'a ExperimentConfig) -> Self {
        Campaign {
            config,
            journal_path: None,
            status_path: None,
            kill_after_tasks: None,
            resume: false,
            recorder: None,
            fault_plan: None,
            profile_dir: None,
        }
    }

    /// Enable the deterministic profiler: rewrite `profile.json` (schema
    /// [`dphpo_obs::profile::PROFILE_SCHEMA`]) and `profile.folded` in
    /// `dir` atomically at every generation (or steady-state epoch)
    /// boundary. Both artifacts are pure functions of journaled data, so
    /// profiling on vs off leaves every other campaign artifact
    /// byte-identical, and the profile itself is byte-identical under
    /// kill+resume (DESIGN.md §14).
    pub fn profile_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.profile_dir = Some(dir.into());
        self
    }

    /// Attach a write-ahead journal at `path`.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal_path = Some(path.into());
        self
    }

    /// Rewrite a deterministic status file at `path` at every generation
    /// boundary (atomically: temp file + rename).
    pub fn status_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.status_path = Some(path.into());
        self
    }

    /// Chaos mode: kill the (simulated) driver after this many completed
    /// tasks (see [`run_experiment_journaled_with_kill`]).
    pub fn kill_after(mut self, tasks: u64) -> Self {
        self.kill_after_tasks = Some(tasks);
        self
    }

    /// Resume from the attached journal instead of starting fresh.
    pub fn resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Attach a telemetry recorder (strictly observational).
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attach a deterministic fault plan (see [`dphpo_hpc::faultplan`]):
    /// scripted or seeded I/O faults at the journal-append and status-
    /// rewrite sites, plus an optional driver kill. Every decision is a
    /// pure function of `(chaos_seed, site, occurrence)`, so a chaos run is
    /// exactly reproducible from its plan.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Run (or resume) the campaign.
    pub fn run(
        self,
        progress: Option<&mut dyn FnMut(usize, usize)>,
    ) -> Result<ExperimentResult, ExperimentError> {
        let status_path = self.status_path.as_deref();
        let profile_dir = self.profile_dir.as_deref();
        if self.resume {
            let journal_path =
                self.journal_path.as_deref().expect("resume requires a journal path");
            let journal = Journal::load(journal_path)?;
            journal.check_config(self.config)?;
            let writer = JournalWriter::open_append(journal_path, self.config, &journal)?;
            return run_experiment_inner(
                self.config,
                progress,
                Some(Rc::new(RefCell::new(writer))),
                None,
                Some(&journal),
                self.recorder,
                status_path,
                self.fault_plan,
                profile_dir,
            );
        }
        let writer = match self.journal_path.as_deref() {
            Some(path) => Some(Rc::new(RefCell::new(JournalWriter::create(path, self.config)?))),
            None => None,
        };
        run_experiment_inner(
            self.config,
            progress,
            writer,
            self.kill_after_tasks,
            None,
            self.recorder,
            status_path,
            self.fault_plan,
            profile_dir,
        )
    }
}

/// Mid-run state reconstructed from a journal's generation boundaries.
struct RestorePoint {
    state: Nsga2State,
    rng_state: [u64; 4],
    archive: ParetoArchive,
    reports: Vec<PoolReport>,
}

pub(crate) fn archive_from_members(members: &[Individual]) -> ParetoArchive {
    // Journaled members are mutually non-dominating, so offering them in
    // journal order reproduces the original archive exactly.
    let mut archive = ParetoArchive::new();
    archive.offer_all(members);
    archive
}

fn restore_point(
    journal: &Journal,
    run_idx: usize,
) -> Result<Option<RestorePoint>, ExperimentError> {
    let boundaries = journal.boundaries_for(run_idx)?;
    let Some(last) = boundaries.last() else { return Ok(None) };
    let history = boundaries.iter().map(|b| b.record.clone()).collect();
    Ok(Some(RestorePoint {
        state: Nsga2State::restore(history, last.std.clone(), last.evaluations),
        rng_state: last.rng_state,
        archive: archive_from_members(&last.archive),
        reports: boundaries.iter().map(|b| b.report.clone()).collect(),
    }))
}

/// Close out one generation: fold the survivors into the Pareto archive,
/// verify the (chaos-mode) driver survived the batch, journal the
/// boundary, and publish the observatory row. The order matters — a driver
/// that died during the batch must *not* write the boundary (or the status
/// row), exactly like a real crash.
fn finish_generation(
    state: &Nsga2State,
    archive: &mut ParetoArchive,
    journal: &Option<JournalSink>,
    evaluator: &SummitEvaluator,
    rng: &StdRng,
    run_idx: usize,
    status: &mut StatusSink,
) -> Result<(), ExperimentError> {
    let record = state.history.last().expect("a completed generation has a record");
    let churn = archive.offer_all_counted(&record.population);
    let faults = evaluator.faults();
    if !faults.driver_alive() {
        return Err(ExperimentError::Interrupted { completed_tasks: faults.completed_tasks() });
    }
    let report = evaluator.reports().last().cloned().unwrap_or_default();
    if let Some(sink) = journal {
        let entry = GenEntry {
            run: run_idx,
            record: record.clone(),
            std: state.std.clone(),
            evaluations: state.evaluations,
            rng_state: rng.state(),
            archive: archive.members().to_vec(),
            report: report.clone(),
        };
        if sink.writer.borrow_mut().append_generation(&entry).is_err() {
            // A boundary that failed to reach disk is a crash at this
            // boundary: the driver dies, and resume re-derives the
            // generation from its (durable) evaluation records.
            faults.declare_dead();
            return Err(ExperimentError::Interrupted {
                completed_tasks: faults.completed_tasks(),
            });
        }
    }
    let row = campaign_report::generation_row(record, archive, churn, &report);
    evaluator.observe_front(
        record.generation as u64,
        FrontStats {
            cardinality: row.cardinality,
            hypervolume: row.hypervolume,
            spread: row.spread,
        },
        churn,
    );
    status.push_profile_row(run_idx, record, &report);
    status.status.push_row(run_idx, row);
    status.flush();
    Ok(())
}

/// Drive one EA run to completion — fresh or restored. Plain, journaled,
/// and resumed campaigns all pass through here, which is what guarantees
/// they optimise identically.
#[allow(clippy::too_many_arguments)]
fn drive_run(
    config: &ExperimentConfig,
    nsga2: &Nsga2Config,
    train: &Arc<Dataset>,
    val: &Arc<Dataset>,
    run_idx: usize,
    faults: FaultInjector,
    journal: Option<JournalSink>,
    restored: Option<RestorePoint>,
    progress: &mut Option<&mut dyn FnMut(usize, usize)>,
    recorder: Option<&Arc<dyn Recorder>>,
    status: &mut StatusSink,
) -> Result<(RunResult, Vec<PoolReport>, ParetoArchive, u64), ExperimentError> {
    let seed = config.master_seed + run_idx as u64;
    let ctx = Arc::new(EvalContext {
        base_config: config.base_train_config.clone(),
        train: Arc::clone(train),
        val: Arc::clone(val),
        cost_model: CostModel::default(),
        workdir: None,
    });
    let mut evaluator = SummitEvaluator::new(ctx, config.pool, faults, seed);
    if let Some(sink) = &journal {
        evaluator.attach_journal(sink.clone());
    }
    if let Some(rec) = recorder {
        evaluator.attach_recorder(Arc::clone(rec), run_idx as u32);
    }
    let (state, mut rng, mut archive) = match restored {
        Some(point) => {
            // Prefill the observatory rows for the restored generations by
            // replaying the journaled boundaries — bit-identical to the
            // rows the original driver published live.
            status.status.set_run(
                run_idx,
                campaign_report::replay_rows(&point.state.history, &point.reports),
            );
            status.set_profile_run(run_idx, &point.state.history, &point.reports);
            evaluator.set_generation(point.state.generation as u64 + 1);
            evaluator.preload_reports(point.reports);
            (Some(point.state), StdRng::from_state(point.rng_state), point.archive)
        }
        None => (None, StdRng::seed_from_u64(seed), ParetoArchive::new()),
    };
    if let Some(cb) = progress.as_deref_mut() {
        cb(run_idx, state.as_ref().map_or(0, |s| s.generation));
    }
    // Restamp the generation's survivors with their stable journaled ids —
    // a pure function of (run seed, generation × pop_size + slot) — so the
    // ids a journal carries never depend on the process-local allocation
    // counter, and an interrupted-then-resumed journal matches an
    // uninterrupted one byte for byte.
    let restamp = |state: &mut Nsga2State| {
        let generation = state.generation;
        for (slot, ind) in state.parents.iter_mut().enumerate() {
            ind.id = stable_id(seed, (generation * nsga2.pop_size + slot) as u64);
        }
        if let Some(record) = state.history.last_mut() {
            for (slot, ind) in record.population.iter_mut().enumerate() {
                ind.id = stable_id(seed, (generation * nsga2.pop_size + slot) as u64);
            }
        }
    };
    let mut state = match state {
        Some(s) => s,
        None => {
            let mut s = Nsga2State::start(nsga2, &mut evaluator, &mut rng);
            restamp(&mut s);
            finish_generation(&s, &mut archive, &journal, &evaluator, &rng, run_idx, status)?;
            s
        }
    };
    while !state.is_complete(nsga2) {
        state.step(nsga2, &mut evaluator, &mut rng);
        restamp(&mut state);
        finish_generation(&state, &mut archive, &journal, &evaluator, &rng, run_idx, status)?;
    }
    if let Some(cb) = progress.as_deref_mut() {
        cb(run_idx, config.generations);
    }
    let completed = evaluator.faults().completed_tasks();
    let reports = evaluator.reports().to_vec();
    Ok((state.into_result(), reports, archive, completed))
}

#[allow(clippy::too_many_arguments)]
fn run_experiment_inner(
    config: &ExperimentConfig,
    mut progress: Option<&mut dyn FnMut(usize, usize)>,
    journal_writer: Option<Rc<RefCell<JournalWriter>>>,
    mut kill_budget: Option<u64>,
    resume_from: Option<&Journal>,
    recorder: Option<Arc<dyn Recorder>>,
    status_path: Option<&Path>,
    fault_plan: Option<Arc<FaultPlan>>,
    profile_dir: Option<&Path>,
) -> Result<ExperimentResult, ExperimentError> {
    let (train, val) = build_dataset(config);
    let nsga2 = nsga2_config_for(config);

    // The step budget is a deterministic census of the base configuration's
    // tape (node counts depend only on shapes), computed once per campaign
    // and embedded in every profile.json rewrite.
    let step_budget = profile_dir.map(|_| {
        dphpo_dnnp::step_budget(&config.base_train_config, &train, &val)
            .expect("step-budget census for the profile artifacts")
    });

    // The fault plan's driver kill composes with (and loses to) an explicit
    // kill budget; its I/O faults attach to the journal writer and the
    // status sink at their named sites.
    if kill_budget.is_none() {
        kill_budget = fault_plan.as_ref().and_then(|p| p.driver_kill());
    }
    if let (Some(writer), Some(plan)) = (&journal_writer, &fault_plan) {
        writer
            .borrow_mut()
            .set_io_site(IoSite::new(Arc::clone(plan), JOURNAL_APPEND_SITE));
    }

    let mut status = StatusSink::new(config, status_path, fault_plan.as_ref(), profile_dir, step_budget);
    let mut runs = Vec::with_capacity(config.n_runs);
    let mut pool_reports = Vec::with_capacity(config.n_runs);
    let mut archives = Vec::with_capacity(config.n_runs);
    for run_idx in 0..config.n_runs {
        // Steady-state journals carry no generation boundaries: resume is a
        // full deterministic re-derivation through the replay map, so there
        // is no restore point (and no finished-run shortcut) to look for.
        let mut restored = match (config.mode, resume_from) {
            (CampaignMode::Generational, Some(journal)) => restore_point(journal, run_idx)?,
            _ => None,
        };
        // A run the journal shows as finished is reconstructed outright —
        // no evaluator, no training, nothing re-journaled. Its observatory
        // rows come from replaying the journaled boundaries.
        if restored.as_ref().is_some_and(|p| p.state.generation >= config.generations) {
            let point = restored.take().expect("just checked");
            status
                .status
                .set_run(run_idx, campaign_report::replay_rows(&point.state.history, &point.reports));
            status.set_profile_run(run_idx, &point.state.history, &point.reports);
            status.flush();
            runs.push(point.state.into_result());
            pool_reports.push(point.reports);
            archives.push(point.archive);
            continue;
        }
        let seed = config.master_seed + run_idx as u64;
        let mut faults = FaultInjector::new(config.fault_probability, seed ^ 0xfa_17);
        if let Some(k) = kill_budget {
            faults = faults.with_driver_kill(k);
        }
        // A steady-state resume restores from the run's last snapshot (if
        // any) and replays only the arrival suffix after it — O(window)
        // instead of O(campaign).
        let steady_snap = match (config.mode, resume_from) {
            (CampaignMode::SteadyState, Some(journal)) => {
                journal.last_snapshot_for(run_idx).cloned()
            }
            _ => None,
        };
        let sink = journal_writer.as_ref().map(|writer| {
            let mut replay =
                resume_from.map_or_else(HashMap::new, |j| j.replay_for(run_idx));
            if let Some(snap) = &steady_snap {
                replay.retain(|_, e| e.arrival.is_none_or(|a| a >= snap.arrivals));
            }
            JournalSink { run: run_idx, writer: Rc::clone(writer), replay: Rc::new(replay) }
        });
        let (result, reports, archive, completed) = match config.mode {
            CampaignMode::Generational => drive_run(
                config,
                &nsga2,
                &train,
                &val,
                run_idx,
                faults,
                sink,
                restored,
                &mut progress,
                recorder.as_ref(),
                &mut status,
            )?,
            CampaignMode::SteadyState => crate::steady::drive_steady_run(
                config,
                &nsga2,
                &train,
                &val,
                run_idx,
                faults,
                sink,
                steady_snap,
                &mut progress,
                recorder.as_ref(),
                &mut status,
            )?,
        };
        // The kill budget spans the whole campaign: tasks this run consumed
        // bring the next run's driver that much closer to its death.
        if let Some(k) = kill_budget.as_mut() {
            *k -= completed.min(*k);
        }
        runs.push(result);
        pool_reports.push(reports);
        archives.push(archive);
    }
    Ok(ExperimentResult {
        config: config.clone(),
        runs,
        pool_reports,
        archives,
        status: status.status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_published_numbers() {
        let c = ExperimentConfig::paper_scale();
        assert_eq!(c.n_runs, 5);
        assert_eq!(c.pop_size, 100);
        assert_eq!(c.generations, 6);
        assert_eq!(c.pool.n_workers, 100);
        assert_eq!(c.pool.timeout_minutes, Some(120.0));
        assert!(!c.pool.nanny, "the paper disables nannies");
        // 5 runs × 100 × (1 random + 6 EA) generations = 3500 trainings.
        let total = c.n_runs * c.pop_size * (c.generations + 1);
        assert_eq!(total, 3500);
    }

    #[test]
    fn smoke_experiment_runs_end_to_end() {
        let config = ExperimentConfig::smoke();
        let result = run_experiment(&config);
        assert_eq!(result.runs.len(), 2);
        assert_eq!(result.total_evaluations(), 2 * 4 * 2);
        for run in &result.runs {
            assert_eq!(run.history.len(), 2);
            for record in &run.history {
                assert_eq!(record.population.len(), 4);
                assert!(record.population.iter().all(|i| i.fitness.is_some()));
            }
        }
        assert_eq!(result.failures_per_generation().len(), 2);
        assert_eq!(result.archives.len(), 2);
        assert!(result.archives.iter().all(|a| !a.is_empty()));
    }

    #[test]
    fn experiment_is_deterministic() {
        let config = ExperimentConfig::smoke();
        let fitness_of = |r: &ExperimentResult| {
            r.runs[0]
                .final_population()
                .iter()
                .map(|i| i.fitness().values().to_vec())
                .collect::<Vec<_>>()
        };
        let a = run_experiment(&config);
        let b = run_experiment(&config);
        assert_eq!(fitness_of(&a), fitness_of(&b));
        assert_eq!(a.archives[0].objective_pairs(), b.archives[0].objective_pairs());
    }
}
