//! Experiment orchestration: N independent EA deployments over one shared
//! dataset — the paper runs five, each on 100 Summit nodes for 7
//! generations (the random generation 0 plus 6 EA steps).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dphpo_dnnp::TrainConfig;
use dphpo_evo::nsga2::{run_nsga2, Nsga2Config, RunResult};
use dphpo_hpc::{CostModel, FaultInjector, PoolConfig, PoolReport};
use dphpo_md::generate::{generate_dataset, GenConfig};
use dphpo_md::Dataset;

use crate::ea::SummitEvaluator;
use crate::representation::DeepMDRepresentation;
use crate::workflow::EvalContext;

/// Full experiment configuration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Independent EA deployments (paper: 5).
    pub n_runs: usize,
    /// Population size = offspring size = node count (paper: 100).
    pub pop_size: usize,
    /// EA steps after the random initial generation (paper: 6).
    pub generations: usize,
    /// Fixed training settings shared by every evaluation.
    pub base_train_config: TrainConfig,
    /// Synthetic-FPMD dataset generation parameters.
    pub gen_config: GenConfig,
    /// DFT-noise-floor label noise: energy (eV/atom), force (eV/Å).
    pub label_noise: (f64, f64),
    /// Worker-pool shape (timeout, nannies, retries).
    pub pool: PoolConfig,
    /// Per-task worker-death probability (hardware faults).
    pub fault_probability: f64,
    /// Master seed; run `r` uses `master_seed + r`.
    pub master_seed: u64,
}

impl ExperimentConfig {
    /// The paper's scale, for the record (do not run on a laptop: 3500
    /// trainings of a 160-atom system).
    pub fn paper_scale() -> Self {
        ExperimentConfig {
            n_runs: 5,
            pop_size: 100,
            generations: 6,
            base_train_config: TrainConfig::paper_scale(),
            gen_config: GenConfig::paper_scale(),
            label_noise: (0.0005, 0.03),
            pool: PoolConfig {
                n_workers: 100,
                timeout_minutes: Some(120.0),
                nanny: false,
                max_attempts: 3,
            },
            fault_probability: 0.002,
            master_seed: 2023,
        }
    }

    /// Reduced scale that preserves every qualitative behaviour: 40 atoms
    /// in the paper's 17.84 Å box, a few hundred training steps, population
    /// in the dozens. This is what the figure/table harnesses run.
    pub fn reduced() -> Self {
        ExperimentConfig {
            n_runs: 5,
            pop_size: 12,
            generations: 6,
            base_train_config: TrainConfig {
                num_steps: 2_000,
                disp_freq: 500,
                val_max_frames: 6,
                ..TrainConfig::default()
            },
            gen_config: GenConfig::reduced(),
            label_noise: (0.0005, 0.03),
            pool: PoolConfig {
                n_workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
                timeout_minutes: Some(120.0),
                nanny: false,
                max_attempts: 3,
            },
            fault_probability: 0.002,
            master_seed: 2023,
        }
    }

    /// Minimal smoke scale for unit and integration tests.
    pub fn smoke() -> Self {
        ExperimentConfig {
            n_runs: 2,
            pop_size: 4,
            generations: 1,
            base_train_config: TrainConfig {
                embedding_neurons: vec![4, 4],
                fitting_neurons: vec![6],
                num_steps: 12,
                batch_per_worker: 1,
                n_workers: 1,
                disp_freq: 12,
                val_max_frames: 2,
                ..TrainConfig::default()
            },
            gen_config: GenConfig {
                n_atoms: 10,
                box_len: 9.0,
                n_frames: 8,
                equil_steps: 80,
                sample_every: 4,
                ..GenConfig::tiny()
            },
            label_noise: (0.0005, 0.03),
            pool: PoolConfig {
                n_workers: 2,
                timeout_minutes: Some(120.0),
                nanny: false,
                max_attempts: 3,
            },
            fault_probability: 0.0,
            master_seed: 7,
        }
    }
}

/// Result of the full experiment.
pub struct ExperimentResult {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// One EA history per run.
    pub runs: Vec<RunResult>,
    /// Scheduler reports per run (makespans, deaths, retries).
    pub pool_reports: Vec<Vec<PoolReport>>,
}

impl ExperimentResult {
    /// Total DNNP trainings performed (the paper reports 3500 over five
    /// 7-generation runs of population 100).
    pub fn total_evaluations(&self) -> usize {
        self.runs.iter().map(|r| r.evaluations).sum()
    }

    /// Failures (MAXINT evaluations) per generation, summed across runs.
    pub fn failures_per_generation(&self) -> Vec<usize> {
        let gens = self.config.generations + 1;
        let mut out = vec![0usize; gens];
        for run in &self.runs {
            for record in &run.history {
                out[record.generation] += record.failures;
            }
        }
        out
    }
}

/// Generate the shared dataset (the "CP2K trajectory"), with label noise
/// and the paper's 75/25 split.
pub fn build_dataset(config: &ExperimentConfig) -> (Arc<Dataset>, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(config.master_seed ^ 0xda7a_5e7);
    let mut dataset = generate_dataset(&config.gen_config, &mut rng);
    dataset.add_label_noise(config.label_noise.0, config.label_noise.1, &mut rng);
    let (train, val) = dataset.split(0.25, &mut rng);
    (Arc::new(train), Arc::new(val))
}

/// Run the complete experiment: dataset generation plus `n_runs`
/// independent NSGA-II deployments.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    run_experiment_with(config, None)
}

/// As [`run_experiment`], with an optional per-generation progress callback
/// `(run, generation)` for long harnesses.
pub fn run_experiment_with(
    config: &ExperimentConfig,
    mut progress: Option<&mut dyn FnMut(usize, usize)>,
) -> ExperimentResult {
    let (train, val) = build_dataset(config);
    let nsga2_config = Nsga2Config {
        pop_size: config.pop_size,
        generations: config.generations,
        init_ranges: DeepMDRepresentation::init_ranges(),
        bounds: DeepMDRepresentation::bounds(),
        std: DeepMDRepresentation::initial_std(),
        anneal_factor: DeepMDRepresentation::ANNEAL_FACTOR,
    };

    let mut runs = Vec::with_capacity(config.n_runs);
    let mut pool_reports = Vec::with_capacity(config.n_runs);
    for run_idx in 0..config.n_runs {
        let seed = config.master_seed + run_idx as u64;
        let ctx = Arc::new(EvalContext {
            base_config: config.base_train_config.clone(),
            train: Arc::clone(&train),
            val: Arc::clone(&val),
            cost_model: CostModel::default(),
            workdir: None,
        });
        let mut evaluator = SummitEvaluator::new(
            ctx,
            config.pool,
            FaultInjector::new(config.fault_probability, seed ^ 0xfa_17),
            seed,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(cb) = progress.as_deref_mut() {
            cb(run_idx, 0);
        }
        let result = run_nsga2(&nsga2_config, &mut evaluator, &mut rng);
        if let Some(cb) = progress.as_deref_mut() {
            cb(run_idx, config.generations);
        }
        pool_reports.push(evaluator.reports().to_vec());
        runs.push(result);
    }
    ExperimentResult { config: config.clone(), runs, pool_reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_published_numbers() {
        let c = ExperimentConfig::paper_scale();
        assert_eq!(c.n_runs, 5);
        assert_eq!(c.pop_size, 100);
        assert_eq!(c.generations, 6);
        assert_eq!(c.pool.n_workers, 100);
        assert_eq!(c.pool.timeout_minutes, Some(120.0));
        assert!(!c.pool.nanny, "the paper disables nannies");
        // 5 runs × 100 × (1 random + 6 EA) generations = 3500 trainings.
        let total = c.n_runs * c.pop_size * (c.generations + 1);
        assert_eq!(total, 3500);
    }

    #[test]
    fn smoke_experiment_runs_end_to_end() {
        let config = ExperimentConfig::smoke();
        let result = run_experiment(&config);
        assert_eq!(result.runs.len(), 2);
        assert_eq!(result.total_evaluations(), 2 * 4 * 2);
        for run in &result.runs {
            assert_eq!(run.history.len(), 2);
            for record in &run.history {
                assert_eq!(record.population.len(), 4);
                assert!(record.population.iter().all(|i| i.fitness.is_some()));
            }
        }
        assert_eq!(result.failures_per_generation().len(), 2);
    }

    #[test]
    fn experiment_is_deterministic() {
        let config = ExperimentConfig::smoke();
        let fitness_of = |r: &ExperimentResult| {
            r.runs[0]
                .final_population()
                .iter()
                .map(|i| i.fitness().values().to_vec())
                .collect::<Vec<_>>()
        };
        let a = run_experiment(&config);
        let b = run_experiment(&config);
        assert_eq!(fitness_of(&a), fitness_of(&b));
    }
}
