//! Property tests over the supervised scheduler's fault interleavings:
//! for any pool shape, death probability, retry budget, nanny mode, and
//! speculation setting, the batch must terminate with exactly one terminal
//! record per task, fire the completion hook exactly once per task, and
//! never exceed the retry budget — even when the whole pool dies.

use dphpo_hpc::{
    run_batch_supervised, EvalFault, EvalOutcome, FaultInjector, PoolConfig, SupervisorConfig,
    TaskCtx, TaskError,
};
use proptest::prelude::*;

/// A deterministic evaluation: most tasks succeed, every fifth task fails
/// structurally (divergence), and minutes grow with the task index so the
/// makespan exercises the list-scheduling reconstruction.
fn eval(_ctx: &TaskCtx<'_>, &input: &u64) -> EvalOutcome<u64> {
    if input % 5 == 4 {
        EvalOutcome {
            value: Err(EvalFault::Diverged { step: input as usize, loss: 1e9 }),
            minutes: 1.0,
        }
    } else {
        EvalOutcome { value: Ok(input * input), minutes: 10.0 + input as f64 }
    }
}

/// Cost estimates with a deliberate heavy tail, so the straggler rule has
/// something to speculate on in most generated batches.
fn estimate(task: usize, _: &u64) -> f64 {
    if task.is_multiple_of(7) {
        90.0
    } else {
        10.0 + task as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_fault_interleavings_terminate_with_exactly_one_record_per_task(
        n_workers in 1usize..6,
        n_tasks in 0usize..13,
        death_permille in 0usize..1000,
        max_attempts_raw in 1usize..5,
        nanny_bit in 0usize..2,
        speculate_bit in 0usize..2,
        fault_seed in 0i64..64,
    ) {
        let max_attempts = max_attempts_raw as u32;
        let (nanny, speculate) = (nanny_bit == 1, speculate_bit == 1);
        let inputs: Vec<u64> = (0..n_tasks as u64).collect();
        let config = PoolConfig {
            n_workers,
            timeout_minutes: Some(120.0),
            nanny,
            max_attempts,
            supervisor: SupervisorConfig { speculate, ..SupervisorConfig::default() },
        };
        let faults = FaultInjector::new(death_permille as f64 / 1000.0, fault_seed as u64);

        let mut completions = vec![0usize; n_tasks];
        let (records, report) = run_batch_supervised(
            &inputs,
            eval,
            estimate,
            &config,
            &faults,
            |task, _record| completions[task] += 1,
        );

        // Exactly one terminal record per task, in task order.
        prop_assert_eq!(records.len(), n_tasks);
        // The completion hook fired exactly `inputs.len()` times — once per
        // task, never zero (a hang) and never twice (a double-finalise).
        for (task, &count) in completions.iter().enumerate() {
            prop_assert_eq!(count, 1, "task {} finalised {} times", task, count);
        }

        let mut errors = 0usize;
        for (task, record) in records.iter().enumerate() {
            // The retry budget bounds every task's attempt count. Only a
            // task orphaned by whole-pool death (worker == usize::MAX) may
            // record zero attempts — it never started.
            prop_assert!(
                record.attempts <= max_attempts,
                "task {} took {} attempts with budget {}",
                task, record.attempts, max_attempts
            );
            prop_assert!(
                record.attempts >= 1 || record.worker == usize::MAX,
                "task {} has no attempts but was not orphaned", task
            );
            match &record.value {
                Ok(v) => {
                    prop_assert_eq!(*v, inputs[task] * inputs[task]);
                    prop_assert!(record.minutes > 0.0);
                }
                Err(TaskError::Speculated) => {
                    prop_assert!(false, "Speculated is never a terminal record");
                }
                Err(_) => errors += 1,
            }
        }

        // The report's failure taxonomy partitions the error records.
        prop_assert_eq!(
            report.diverged_tasks
                + report.timeout_tasks
                + report.cancelled_tasks
                + report.exhausted_tasks,
            errors
        );
        prop_assert!(report.makespan_minutes >= 0.0);
        prop_assert!(report.lost_minutes >= 0.0);
        prop_assert!(report.backoff_minutes >= 0.0);
        if !speculate {
            prop_assert_eq!(report.speculated_tasks, 0);
            prop_assert_eq!(report.speculative_deaths, 0);
        }
        if death_permille == 0 {
            prop_assert_eq!(report.worker_deaths, 0);
            prop_assert_eq!(report.exhausted_tasks, 0);
            prop_assert_eq!(report.backoff_minutes, 0.0);
        }
    }

    #[test]
    fn fault_interleavings_are_reproducible(
        n_workers in 1usize..5,
        death_permille in 0usize..900,
        max_attempts_raw in 1usize..4,
        fault_seed in 0i64..32,
    ) {
        let max_attempts = max_attempts_raw as u32;
        let inputs: Vec<u64> = (0..9).collect();
        let config = PoolConfig {
            n_workers,
            timeout_minutes: Some(120.0),
            nanny: true,
            max_attempts,
            supervisor: SupervisorConfig { speculate: true, ..SupervisorConfig::default() },
        };
        let run = || {
            let faults = FaultInjector::new(death_permille as f64 / 1000.0, fault_seed as u64);
            run_batch_supervised(&inputs, eval, estimate, &config, &faults, |_, _| {})
        };
        let (a_records, a_report) = run();
        let (b_records, b_report) = run();
        for (a, b) in a_records.iter().zip(&b_records) {
            prop_assert_eq!(&a.value, &b.value);
            prop_assert_eq!(a.minutes, b.minutes);
            prop_assert_eq!(a.attempts, b.attempts);
        }
        prop_assert_eq!(a_report.makespan_minutes, b_report.makespan_minutes);
        prop_assert_eq!(a_report.worker_deaths, b_report.worker_deaths);
        prop_assert_eq!(a_report.retried_tasks, b_report.retried_tasks);
        prop_assert_eq!(a_report.speculated_tasks, b_report.speculated_tasks);
        prop_assert_eq!(a_report.speculative_deaths, b_report.speculative_deaths);
        prop_assert_eq!(a_report.lost_minutes, b_report.lost_minutes);
        prop_assert_eq!(a_report.backoff_minutes, b_report.backoff_minutes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Utilization accounting invariant: for every worker slot, the five
    /// categories (busy, lost-to-death, lost-to-speculation, backoff, idle)
    /// exactly partition the backoff-inclusive wall clock — across any
    /// fault plan, retry budget, nanny mode, and speculation setting.
    #[test]
    fn utilization_categories_partition_the_wall_clock(
        n_workers in 1usize..6,
        n_tasks in 0usize..13,
        death_permille in 0usize..1000,
        max_attempts_raw in 1usize..5,
        nanny_bit in 0usize..2,
        speculate_bit in 0usize..2,
        fault_seed in 0i64..64,
    ) {
        let inputs: Vec<u64> = (0..n_tasks as u64).collect();
        let config = PoolConfig {
            n_workers,
            timeout_minutes: Some(120.0),
            nanny: nanny_bit == 1,
            max_attempts: max_attempts_raw as u32,
            supervisor: SupervisorConfig {
                speculate: speculate_bit == 1,
                ..SupervisorConfig::default()
            },
        };
        let faults = FaultInjector::new(death_permille as f64 / 1000.0, fault_seed as u64);
        let (_, report) = run_batch_supervised(
            &inputs, eval, estimate, &config, &faults, |_, _| {},
        );

        // An empty batch never spins the pool up: every aggregate is zero
        // and the per-worker vectors stay empty.
        let slots = if n_tasks == 0 { 0 } else { n_workers };
        if n_tasks == 0 {
            prop_assert_eq!(report.wall_minutes, 0.0);
            prop_assert_eq!(report.makespan_minutes, 0.0);
        }
        prop_assert_eq!(report.busy_minutes.len(), slots);
        prop_assert_eq!(report.idle_minutes.len(), slots);
        let tol = 1e-9 * (1.0 + report.wall_minutes.abs());
        for w in 0..slots {
            let busy = report.busy_minutes[w];
            let death = report.lost_death_minutes[w];
            let spec = report.lost_speculation_minutes[w];
            let backoff = report.backoff_slot_minutes[w];
            let idle = report.idle_minutes[w];
            for v in [busy, death, spec, backoff, idle] {
                prop_assert!(v >= -tol, "negative category on worker {}: {}", w, v);
            }
            // Charged categories partition the charged per-worker time...
            prop_assert!(
                (busy + death + spec - report.per_worker_minutes[w]).abs() <= tol,
                "worker {} charged partition broken", w
            );
            // ...and all five partition the wall clock exactly.
            prop_assert!(
                (busy + death + spec + backoff + idle - report.wall_minutes).abs() <= tol,
                "worker {}: {} + {} + {} + {} + {} != wall {}",
                w, busy, death, spec, backoff, idle, report.wall_minutes
            );
        }
        // Cross-checks against the batch-level aggregates.
        let lost: f64 = report.lost_death_minutes.iter().sum::<f64>()
            + report.lost_speculation_minutes.iter().sum::<f64>();
        prop_assert!((lost - report.lost_minutes).abs() <= tol);
        let backoff_total: f64 = report.backoff_slot_minutes.iter().sum();
        prop_assert!((backoff_total - report.backoff_minutes).abs() <= tol);
        let charged_max =
            report.per_worker_minutes.iter().copied().fold(0.0, f64::max);
        prop_assert_eq!(charged_max, report.makespan_minutes);
        prop_assert!(report.wall_minutes >= report.makespan_minutes - tol);
        if report.backoff_minutes == 0.0 {
            prop_assert_eq!(report.wall_minutes, report.makespan_minutes);
        }
    }
}
