//! A Summit-shaped cluster description: nodes, GPUs, and batch-job
//! allocation accounting.

/// Hardware of one compute node (Summit: 6 V100 GPUs, 42 usable cores).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeSpec {
    /// GPUs per node.
    pub gpus: usize,
    /// Usable CPU cores per node.
    pub cores: usize,
}

impl NodeSpec {
    /// Summit's AC922 node: 6 GPUs, 42 usable cores.
    pub fn summit() -> Self {
        NodeSpec { gpus: 6, cores: 42 }
    }
}

/// A batch-job allocation: `n_nodes` identical nodes plus a batch node that
/// hosts the scheduler and client (the paper's launch layout, §2.2.5).
#[derive(Clone, Copy, Debug)]
pub struct Allocation {
    /// Compute nodes assigned to evaluation workers (one worker per node).
    pub n_nodes: usize,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Maximum wall-clock budget for the whole job, in minutes
    /// (the paper requests 12 h).
    pub walltime_minutes: f64,
}

impl Allocation {
    /// The paper's allocation: 100 Summit nodes, 12 h walltime.
    pub fn paper() -> Self {
        Allocation { n_nodes: 100, node: NodeSpec::summit(), walltime_minutes: 12.0 * 60.0 }
    }

    /// Total GPUs in the allocation.
    pub fn total_gpus(&self) -> usize {
        self.n_nodes * self.node.gpus
    }

    /// Rough upper bound on how many sequential evaluation rounds of
    /// `task_minutes` each fit in the walltime.
    pub fn rounds_within_walltime(&self, task_minutes: f64) -> usize {
        if task_minutes <= 0.0 {
            return usize::MAX;
        }
        (self.walltime_minutes / task_minutes).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_spec() {
        let n = NodeSpec::summit();
        assert_eq!(n.gpus, 6);
        assert_eq!(n.cores, 42);
    }

    #[test]
    fn paper_allocation_supports_seven_generations() {
        let a = Allocation::paper();
        assert_eq!(a.n_nodes, 100);
        assert_eq!(a.total_gpus(), 600);
        // With ≤80-minute trainings and a 2 h cap, 7 generations
        // (initial + 6) of one-per-node evaluations fit in 12 h.
        assert!(a.rounds_within_walltime(80.0) >= 7);
        // But 2-hour worst-case trainings only fit 6 rounds — which is why
        // the per-training timeout matters.
        assert_eq!(a.rounds_within_walltime(120.0), 6);
    }

    #[test]
    fn degenerate_task_time() {
        assert_eq!(Allocation::paper().rounds_within_walltime(0.0), usize::MAX);
    }
}
