//! Execution tracing for the simulated batch job: reconstructs per-worker
//! simulated timelines from task records and renders a text Gantt chart —
//! the observability a Dask dashboard would give (the paper disabled the
//! Bokeh dashboard on Summit; this is the offline equivalent).

use crate::scheduler::TaskRecord;

/// One scheduled span on a worker's simulated timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Task index.
    pub task: usize,
    /// Simulated start minute.
    pub start: f64,
    /// Simulated end minute.
    pub end: f64,
    /// Whether the task ultimately succeeded.
    pub ok: bool,
}

/// Per-worker simulated timelines produced by list-scheduling the charged
/// minutes (the same rule the scheduler's makespan uses).
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// `timelines[w]` holds worker w's spans in start order.
    pub timelines: Vec<Vec<Span>>,
}

impl Timeline {
    /// Rebuild timelines for `n_workers` from task records (in submission
    /// order, matching the scheduler's accounting).
    pub fn reconstruct<T>(records: &[TaskRecord<T>], n_workers: usize) -> Self {
        assert!(n_workers > 0);
        let mut timelines: Vec<Vec<Span>> = vec![Vec::new(); n_workers];
        let mut clock = vec![0.0f64; n_workers];
        for (task, record) in records.iter().enumerate() {
            let (slot, _) = clock
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .expect("at least one worker");
            let start = clock[slot];
            let end = start + record.minutes;
            timelines[slot].push(Span { task, start, end, ok: record.value.is_ok() });
            clock[slot] = end;
        }
        Timeline { timelines }
    }

    /// Simulated makespan (minutes).
    pub fn makespan(&self) -> f64 {
        self.timelines
            .iter()
            .filter_map(|spans| spans.last().map(|s| s.end))
            .fold(0.0, f64::max)
    }

    /// Mean worker utilisation (busy time / makespan), in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        let makespan = self.makespan();
        if makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .timelines
            .iter()
            .map(|spans| spans.iter().map(|s| s.end - s.start).sum::<f64>())
            .sum();
        busy / (makespan * self.timelines.len() as f64)
    }

    /// Render a text Gantt chart, `width` characters across the makespan.
    /// `#` marks successful task time, `x` failed task time.
    pub fn gantt(&self, width: usize) -> String {
        let makespan = self.makespan().max(1e-9);
        let mut out = String::new();
        for (w, spans) in self.timelines.iter().enumerate() {
            let mut row = vec![' '; width];
            for span in spans {
                let a = ((span.start / makespan) * width as f64) as usize;
                let b = (((span.end / makespan) * width as f64) as usize).min(width);
                let mark = if span.ok { '#' } else { 'x' };
                for cell in row.iter_mut().take(b).skip(a.min(width.saturating_sub(1))) {
                    *cell = mark;
                }
            }
            out.push_str(&format!("worker {w:>3} |{}|\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!(
            "makespan {:.1} min, utilisation {:.0}%\n",
            self.makespan(),
            self.utilisation() * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::TaskError;

    fn record(minutes: f64, ok: bool) -> TaskRecord<u64> {
        TaskRecord {
            value: if ok { Ok(0) } else { Err(TaskError::WorkerFailed) },
            minutes,
            worker: 0,
            attempts: 1,
        }
    }

    #[test]
    fn reconstruction_matches_list_scheduling() {
        // 5 × 10-minute tasks on 2 workers → makespan 30 (3+2 split).
        let records: Vec<TaskRecord<u64>> = (0..5).map(|_| record(10.0, true)).collect();
        let timeline = Timeline::reconstruct(&records, 2);
        assert!((timeline.makespan() - 30.0).abs() < 1e-9);
        let counts: Vec<usize> = timeline.timelines.iter().map(Vec::len).collect();
        assert_eq!(counts.iter().sum::<usize>(), 5);
        assert!(counts.iter().all(|&c| c >= 2));
    }

    #[test]
    fn utilisation_is_perfect_for_balanced_load() {
        let records: Vec<TaskRecord<u64>> = (0..4).map(|_| record(10.0, true)).collect();
        let timeline = Timeline::reconstruct(&records, 2);
        assert!((timeline.utilisation() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilisation_drops_for_imbalanced_load() {
        let records = vec![record(30.0, true), record(5.0, true)];
        let timeline = Timeline::reconstruct(&records, 2);
        assert!(timeline.utilisation() < 0.7);
    }

    #[test]
    fn gantt_renders_failures_distinctly() {
        let records = vec![record(10.0, true), record(10.0, false)];
        let timeline = Timeline::reconstruct(&records, 2);
        let chart = timeline.gantt(20);
        assert!(chart.contains('#'));
        assert!(chart.contains('x'));
        assert!(chart.contains("worker   0"));
        assert!(chart.contains("utilisation"));
    }

    #[test]
    fn empty_records_are_harmless() {
        let records: Vec<TaskRecord<u64>> = Vec::new();
        let timeline = Timeline::reconstruct(&records, 3);
        assert_eq!(timeline.makespan(), 0.0);
        assert_eq!(timeline.utilisation(), 0.0);
    }
}
