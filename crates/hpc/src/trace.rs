//! Execution tracing for the simulated batch job: reconstructs per-worker
//! simulated timelines from task records and renders a text Gantt chart —
//! the observability a Dask dashboard would give (the paper disabled the
//! Bokeh dashboard on Summit; this is the offline equivalent).

use crate::scheduler::TaskRecord;
use dphpo_obs::chrome::{render, Arg, TraceEvent, US_PER_MIN};

/// One scheduled span on a worker's simulated timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Task index.
    pub task: usize,
    /// Simulated start minute.
    pub start: f64,
    /// Simulated end minute.
    pub end: f64,
    /// Whether the task ultimately succeeded.
    pub ok: bool,
}

/// Per-worker simulated timelines produced by list-scheduling the charged
/// minutes (the same rule the scheduler's makespan uses).
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// `timelines[w]` holds worker w's spans in start order.
    pub timelines: Vec<Vec<Span>>,
}

impl Timeline {
    /// Rebuild timelines for `n_workers` from task records (in submission
    /// order, matching the scheduler's accounting).
    pub fn reconstruct<T>(records: &[TaskRecord<T>], n_workers: usize) -> Self {
        assert!(n_workers > 0);
        let mut timelines: Vec<Vec<Span>> = vec![Vec::new(); n_workers];
        let mut clock = vec![0.0f64; n_workers];
        for (task, record) in records.iter().enumerate() {
            let (slot, _) = clock
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .expect("at least one worker");
            let start = clock[slot];
            let end = start + record.minutes;
            timelines[slot].push(Span { task, start, end, ok: record.value.is_ok() });
            clock[slot] = end;
        }
        Timeline { timelines }
    }

    /// Simulated makespan (minutes).
    pub fn makespan(&self) -> f64 {
        self.timelines
            .iter()
            .filter_map(|spans| spans.last().map(|s| s.end))
            .fold(0.0, f64::max)
    }

    /// Mean worker utilisation (busy time / makespan), in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        let makespan = self.makespan();
        if makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .timelines
            .iter()
            .map(|spans| spans.iter().map(|s| s.end - s.start).sum::<f64>())
            .sum();
        busy / (makespan * self.timelines.len() as f64)
    }

    /// Export the Gantt as Chrome `trace_event` spans: one lane (`tid w+1`)
    /// per worker under process `pid`, each task span a complete (`'X'`)
    /// event on the simulated clock offset by `t0_min` minutes. Feed the
    /// result to [`dphpo_obs::chrome::render`] (or use
    /// [`Timeline::chrome_trace_json`]) for a Perfetto-loadable document.
    pub fn chrome_trace(&self, pid: u64, t0_min: f64) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for (w, spans) in self.timelines.iter().enumerate() {
            let tid = w as u64 + 1;
            out.push(TraceEvent::thread_name(pid, tid, &format!("worker {w} (run {pid})")));
            for s in spans {
                let mut ev = TraceEvent::span(
                    &format!("task {}", s.task),
                    "sched",
                    pid,
                    tid,
                    (t0_min + s.start) * US_PER_MIN,
                    (s.end - s.start) * US_PER_MIN,
                );
                ev.args.push(("task".to_string(), Arg::Num(s.task as f64)));
                ev.args.push(("ok".to_string(), Arg::Num(if s.ok { 1.0 } else { 0.0 })));
                out.push(ev);
            }
        }
        out
    }

    /// [`Timeline::chrome_trace`] rendered as a complete JSON document.
    pub fn chrome_trace_json(&self, pid: u64, t0_min: f64) -> String {
        render(&self.chrome_trace(pid, t0_min))
    }

    /// Render a text Gantt chart, `width` characters across the makespan.
    /// `#` marks successful task time, `x` failed task time.
    pub fn gantt(&self, width: usize) -> String {
        let makespan = self.makespan().max(1e-9);
        let mut out = String::new();
        for (w, spans) in self.timelines.iter().enumerate() {
            let mut row = vec![' '; width];
            for span in spans {
                let a = ((span.start / makespan) * width as f64) as usize;
                let b = (((span.end / makespan) * width as f64) as usize).min(width);
                let mark = if span.ok { '#' } else { 'x' };
                for cell in row.iter_mut().take(b).skip(a.min(width.saturating_sub(1))) {
                    *cell = mark;
                }
            }
            out.push_str(&format!("worker {w:>3} |{}|\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!(
            "makespan {:.1} min, utilisation {:.0}%\n",
            self.makespan(),
            self.utilisation() * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::TaskError;

    fn record(minutes: f64, ok: bool) -> TaskRecord<u64> {
        TaskRecord {
            value: if ok { Ok(0) } else { Err(TaskError::WorkerFailed) },
            minutes,
            worker: 0,
            attempts: 1,
        }
    }

    #[test]
    fn reconstruction_matches_list_scheduling() {
        // 5 × 10-minute tasks on 2 workers → makespan 30 (3+2 split).
        let records: Vec<TaskRecord<u64>> = (0..5).map(|_| record(10.0, true)).collect();
        let timeline = Timeline::reconstruct(&records, 2);
        assert!((timeline.makespan() - 30.0).abs() < 1e-9);
        let counts: Vec<usize> = timeline.timelines.iter().map(Vec::len).collect();
        assert_eq!(counts.iter().sum::<usize>(), 5);
        assert!(counts.iter().all(|&c| c >= 2));
    }

    #[test]
    fn utilisation_is_perfect_for_balanced_load() {
        let records: Vec<TaskRecord<u64>> = (0..4).map(|_| record(10.0, true)).collect();
        let timeline = Timeline::reconstruct(&records, 2);
        assert!((timeline.utilisation() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilisation_drops_for_imbalanced_load() {
        let records = vec![record(30.0, true), record(5.0, true)];
        let timeline = Timeline::reconstruct(&records, 2);
        assert!(timeline.utilisation() < 0.7);
    }

    #[test]
    fn gantt_renders_failures_distinctly() {
        let records = vec![record(10.0, true), record(10.0, false)];
        let timeline = Timeline::reconstruct(&records, 2);
        let chart = timeline.gantt(20);
        assert!(chart.contains('#'));
        assert!(chart.contains('x'));
        assert!(chart.contains("worker   0"));
        assert!(chart.contains("utilisation"));
    }

    #[test]
    fn empty_records_are_harmless() {
        let records: Vec<TaskRecord<u64>> = Vec::new();
        let timeline = Timeline::reconstruct(&records, 3);
        assert_eq!(timeline.makespan(), 0.0);
        assert_eq!(timeline.utilisation(), 0.0);
    }

    #[test]
    fn chrome_trace_makespan_matches_pool_report_charged_makespan() {
        use crate::scheduler::{run_batch, EvalOutcome, FaultInjector, PoolConfig};
        // Fault-free, the Timeline reconstruction charges exactly what the
        // scheduler charged, so the trace's last span must end at the
        // PoolReport makespan on both clocks (minutes and trace µs).
        let inputs: Vec<u64> = (0..7).collect();
        let config = PoolConfig { n_workers: 3, ..PoolConfig::default() };
        let minutes = [40.0, 10.0, 25.0, 5.0, 30.0, 10.0, 20.0];
        let (records, report) = run_batch(
            &inputs,
            |task, &x| EvalOutcome { value: Ok(x), minutes: minutes[task] },
            &config,
            &FaultInjector::none(),
        );
        let timeline = Timeline::reconstruct(&records, config.n_workers);
        assert!((timeline.makespan() - report.makespan_minutes).abs() < 1e-9);
        let events = timeline.chrome_trace(0, 0.0);
        let trace_end_us = events
            .iter()
            .filter(|e| e.ph == 'X')
            .map(|e| e.ts_us + e.dur_us)
            .fold(0.0, f64::max);
        assert!((trace_end_us - report.makespan_minutes * US_PER_MIN).abs() < 1e-3);
        // One thread-name lane per worker, spans only on worker lanes.
        let lanes: Vec<u64> =
            events.iter().filter(|e| e.ph == 'M').map(|e| e.tid).collect();
        assert_eq!(lanes, vec![1, 2, 3]);
        assert!(events.iter().filter(|e| e.ph == 'X').all(|e| e.tid >= 1 && e.tid <= 3));
        assert_eq!(events.iter().filter(|e| e.ph == 'X').count(), inputs.len());
    }

    #[test]
    fn chrome_trace_makespan_is_lower_bound_under_faults() {
        use crate::scheduler::{run_batch, EvalOutcome, FaultInjector, PoolConfig};
        // Under faults the report additionally charges dead attempts'
        // partial minutes, which the record-only reconstruction omits — the
        // trace end can only undershoot the charged makespan.
        let inputs: Vec<u64> = (0..20).collect();
        let config = PoolConfig { n_workers: 4, nanny: true, ..PoolConfig::default() };
        let faults = FaultInjector::new(0.15, 99);
        let (records, report) = run_batch(
            &inputs,
            |_, &x| EvalOutcome { value: Ok(x), minutes: 10.0 },
            &config,
            &faults,
        );
        assert!(report.worker_deaths > 0, "seed produced no deaths");
        let timeline = Timeline::reconstruct(&records, config.n_workers);
        assert!(timeline.makespan() <= report.makespan_minutes + 1e-9);
    }

    #[test]
    fn chrome_trace_json_offsets_by_t0() {
        let records = vec![record(10.0, true), record(5.0, false)];
        let timeline = Timeline::reconstruct(&records, 2);
        let doc = timeline.chrome_trace_json(3, 100.0);
        assert!(doc.contains("\"pid\":3"));
        // 100 minutes offset → first span starts at 6e9 µs.
        assert!(doc.contains("\"ts\":6000000000"));
        assert!(doc.contains("\"name\":\"task 0\""));
        assert!(doc.contains("\"ok\":0"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
