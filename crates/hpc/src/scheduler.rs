//! A Dask-like client/scheduler/worker evaluation pool.
//!
//! Mirrors the paper's §2.2.5 deployment: a scheduler fans evaluation tasks
//! out to one worker per compute node, workers may die mid-task (hardware
//! faults), "nannies" may restart dead workers or — as the paper found
//! preferable — be disabled so the scheduler simply reassigns the task to a
//! surviving worker. Tasks also carry a *simulated* runtime (minutes) from
//! the cost model, and the scheduler enforces the paper's 2-hour per-task
//! timeout against that simulated clock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam::channel;

/// Why a task produced no value.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskError {
    /// The simulated runtime exceeded the per-task limit (the paper's
    /// 2-hour `subprocess` timeout → `TimeoutError`).
    Timeout {
        /// The enforced limit in minutes.
        limit_minutes: f64,
    },
    /// The worker hosting the task died (hardware fault); attempts were
    /// exhausted or no workers survived.
    WorkerFailed,
    /// The evaluation itself failed (e.g. diverged training).
    Failed(String),
}

/// Outcome produced by the user's evaluation function.
pub struct EvalOutcome<T> {
    /// The evaluation result, or a failure description.
    pub value: Result<T, String>,
    /// Simulated runtime in minutes.
    pub minutes: f64,
}

/// Final per-task record returned by [`run_batch`].
#[derive(Clone, Debug)]
pub struct TaskRecord<T> {
    /// Value or the error that ended the task.
    pub value: Result<T, TaskError>,
    /// Simulated minutes charged for the final attempt (timeouts charge the
    /// full limit, as the real job would have been killed there).
    pub minutes: f64,
    /// Worker that produced the final outcome.
    pub worker: usize,
    /// Number of attempts (1 = no retries).
    pub attempts: u32,
}

/// Pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of workers (the paper: one per allocated node, 100).
    pub n_workers: usize,
    /// Per-task simulated-runtime limit in minutes (the paper: 120).
    pub timeout_minutes: Option<f64>,
    /// Restart dead workers (Dask nannies). The paper disables them.
    pub nanny: bool,
    /// Maximum attempts per task before giving up.
    pub max_attempts: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { n_workers: 4, timeout_minutes: Some(120.0), nanny: false, max_attempts: 3 }
    }
}

/// Worker-death injection, plus the chaos hooks used by crash-safety tests.
///
/// Each task execution kills its worker with probability
/// `death_probability` (before completing the task). Decisions are **pure
/// functions of `(seed, batch key, task index, attempt)`** — not draws from
/// a shared stream — so fault placement is independent of the real-time
/// order in which worker threads grab tasks. That determinism is what lets
/// a resumed experiment replay a journal and land bit-identically on the
/// uninterrupted run's result (see `dphpo-core`'s journal module).
///
/// The *driver-kill* chaos mode ([`FaultInjector::with_driver_kill`])
/// simulates the failure the paper's Dask deployment cannot survive: the
/// EA driver itself dying mid-campaign. After `k` completed-task
/// notifications, [`FaultInjector::note_task_completion`] starts returning
/// `false` ("this record was lost") and [`FaultInjector::driver_alive`]
/// reports the driver as dead, which the journaling experiment loop turns
/// into an orderly simulated crash.
pub struct FaultInjector {
    death_probability: f64,
    seed: u64,
    batch_key: AtomicU64,
    kill_after: Option<u64>,
    completed: AtomicU64,
}

impl FaultInjector {
    /// A fault plan; `death_probability` of 0 disables faults.
    pub fn new(death_probability: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&death_probability));
        FaultInjector {
            death_probability,
            seed,
            batch_key: AtomicU64::new(0),
            kill_after: None,
            completed: AtomicU64::new(0),
        }
    }

    /// No faults.
    pub fn none() -> Self {
        FaultInjector::new(0.0, 0)
    }

    /// Chaos mode: the *driver* (not a worker) dies after `after_tasks`
    /// completed-task notifications. Deterministic by construction.
    pub fn with_driver_kill(mut self, after_tasks: u64) -> Self {
        self.kill_after = Some(after_tasks);
        self
    }

    /// Set the key that namespaces this batch's fault decisions. Callers
    /// running several batches through one injector (one per EA generation)
    /// pass a batch identity that is stable across resume — the generation
    /// number — so an interrupted and an uninterrupted campaign see the
    /// same fault pattern.
    pub fn set_batch_key(&self, key: u64) {
        self.batch_key.store(key, Ordering::Relaxed);
    }

    /// Record one completed task. Returns `true` while the driver is still
    /// alive (the completion "reached disk"), `false` once the configured
    /// kill point has been passed.
    pub fn note_task_completion(&self) -> bool {
        let n = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        match self.kill_after {
            Some(k) => n <= k,
            None => true,
        }
    }

    /// Completed-task notifications seen so far (all batches).
    pub fn completed_tasks(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// False once the driver-kill threshold has been crossed.
    pub fn driver_alive(&self) -> bool {
        match self.kill_after {
            Some(k) => self.completed.load(Ordering::Relaxed) < k,
            None => true,
        }
    }

    fn task_kills_worker(&self, task: usize, attempt: u32) -> bool {
        if self.death_probability == 0.0 {
            return false;
        }
        let mut z = splitmix64(
            self.seed ^ 0x5eed_0f_da7a_u64.wrapping_mul(self.batch_key.load(Ordering::Relaxed)),
        );
        z = splitmix64(z ^ (task as u64));
        z = splitmix64(z ^ ((attempt as u64) << 32));
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < self.death_probability
    }
}

/// SplitMix64 finalizer: the hash behind deterministic fault decisions.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-run statistics.
#[derive(Clone, Debug, Default)]
pub struct PoolReport {
    /// Simulated makespan: the longest per-worker busy time in minutes
    /// (what the batch job's wall clock would have shown).
    pub makespan_minutes: f64,
    /// Simulated busy minutes per worker slot.
    pub per_worker_minutes: Vec<f64>,
    /// Worker deaths observed.
    pub worker_deaths: usize,
    /// Tasks that were retried at least once.
    pub retried_tasks: usize,
}

enum Message<T> {
    Done { task: usize, outcome: EvalOutcome<T>, worker: usize, minutes_charged: f64 },
    Died { task: usize, worker: usize },
}

/// Evaluate every input in parallel on a simulated worker pool.
///
/// `eval` receives `(task_index, &input)` and returns a value plus its
/// simulated runtime. Panics inside `eval` are treated as worker deaths.
pub fn run_batch<I, T, F>(
    inputs: &[I],
    eval: F,
    config: &PoolConfig,
    faults: &FaultInjector,
) -> (Vec<TaskRecord<T>>, PoolReport)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> EvalOutcome<T> + Sync,
{
    run_batch_with_hooks(inputs, eval, config, faults, |_, _: &TaskRecord<T>| {})
}

/// As [`run_batch`], with a task-completion hook.
///
/// `on_complete(task, record)` fires on the scheduler (calling) thread the
/// moment a task reaches its final record — success, evaluation failure,
/// timeout, or exhausted retries — in completion order, before the batch
/// returns. This is the write-ahead point for crash-safe journaling: a
/// journal appended here has every finished evaluation on disk even if the
/// driver dies before the batch (or the campaign) completes.
pub fn run_batch_with_hooks<I, T, F, H>(
    inputs: &[I],
    eval: F,
    config: &PoolConfig,
    faults: &FaultInjector,
    mut on_complete: H,
) -> (Vec<TaskRecord<T>>, PoolReport)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> EvalOutcome<T> + Sync,
    H: FnMut(usize, &TaskRecord<T>),
{
    assert!(config.n_workers > 0, "pool needs at least one worker");
    assert!(config.max_attempts > 0, "max_attempts must be positive");
    let n = inputs.len();
    let mut records: Vec<Option<TaskRecord<T>>> = (0..n).map(|_| None).collect();
    if n == 0 {
        return (Vec::new(), PoolReport::default());
    }

    let (task_tx, task_rx) = channel::unbounded::<(usize, u32)>();
    let (msg_tx, msg_rx) = channel::unbounded::<Message<T>>();
    for i in 0..n {
        task_tx.send((i, 1)).expect("queue open");
    }

    let mut attempts = vec![0u32; n];
    let alive = AtomicUsize::new(config.n_workers);
    let mut report = PoolReport::default();

    std::thread::scope(|scope| {
        for worker in 0..config.n_workers {
            let task_rx = task_rx.clone();
            let msg_tx = msg_tx.clone();
            let eval = &eval;
            let faults = &faults;
            let alive = &alive;
            let timeout = config.timeout_minutes;
            let nanny = config.nanny;
            scope.spawn(move || {
                while let Ok((task, attempt)) = task_rx.recv() {
                    if faults.task_kills_worker(task, attempt) {
                        // The worker dies mid-task. With a nanny it is
                        // restarted (continue); without, the thread exits.
                        let _ = msg_tx.send(Message::Died { task, worker });
                        if nanny {
                            continue;
                        }
                        alive.fetch_sub(1, Ordering::SeqCst);
                        return;
                    }
                    let outcome = eval(task, &inputs[task]);
                    // Timeouts charge the limit: the real job would have
                    // been killed at the wall.
                    let minutes_charged = match timeout {
                        Some(limit) if outcome.minutes > limit => limit,
                        _ => outcome.minutes,
                    };
                    let _ = msg_tx.send(Message::Done { task, outcome, worker, minutes_charged });
                }
            });
        }
        drop(msg_tx);

        let mut completed = 0usize;
        // Set once no worker can make further progress (every worker died,
        // no nannies). Observed either through the alive counter or through
        // the message channel disconnecting as the last worker exits; both
        // paths drain already-sent messages before failing the remainder, so
        // the records are identical whichever signal the driver sees first —
        // a worker reports its final result/death *before* its exit is
        // visible, and once `alive` reads zero no further send can happen.
        let mut pool_dead = false;
        while completed < n {
            let msg = if pool_dead {
                match msg_rx.try_recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            } else if alive.load(Ordering::SeqCst) == 0 {
                pool_dead = true;
                continue;
            } else {
                match msg_rx.recv_timeout(std::time::Duration::from_millis(50)) {
                    Ok(m) => m,
                    Err(channel::RecvTimeoutError::Timeout) => continue,
                    // All senders dropped ⇒ all workers exited and the
                    // buffer is already drained; fail the remainder below.
                    Err(channel::RecvTimeoutError::Disconnected) => break,
                }
            };
            match msg {
                Message::Done { task, outcome, worker, minutes_charged } => {
                    attempts[task] += 1;
                    let timed_out = matches!(config.timeout_minutes, Some(limit) if outcome.minutes > limit);
                    let value = if timed_out {
                        Err(TaskError::Timeout {
                            limit_minutes: config.timeout_minutes.unwrap(),
                        })
                    } else {
                        outcome.value.map_err(TaskError::Failed)
                    };
                    records[task] = Some(TaskRecord {
                        value,
                        minutes: minutes_charged,
                        worker,
                        attempts: attempts[task],
                    });
                    on_complete(task, records[task].as_ref().expect("just stored"));
                    completed += 1;
                }
                Message::Died { task, worker } => {
                    report.worker_deaths += 1;
                    attempts[task] += 1;
                    if attempts[task] < config.max_attempts {
                        report.retried_tasks += 1;
                        let _ = task_tx.send((task, attempts[task] + 1));
                    } else {
                        records[task] = Some(TaskRecord {
                            value: Err(TaskError::WorkerFailed),
                            minutes: 0.0,
                            worker,
                            attempts: attempts[task],
                        });
                        on_complete(task, records[task].as_ref().expect("just stored"));
                        completed += 1;
                    }
                }
            }
        }
        // If every worker died with work outstanding, fail the rest (a
        // retry re-queued onto a dead pool ends here too).
        if completed < n {
            for (task, slot) in records.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = Some(TaskRecord {
                        value: Err(TaskError::WorkerFailed),
                        minutes: 0.0,
                        worker: usize::MAX,
                        attempts: attempts[task],
                    });
                    on_complete(task, slot.as_ref().expect("just stored"));
                }
            }
        }
        drop(task_tx); // release workers blocked on recv
    });

    let results: Vec<TaskRecord<T>> = records
        .into_iter()
        .map(|r| r.expect("scheduler completed every task"))
        .collect();

    // Physical threads race for tasks in real time (they finish almost
    // instantly), so the *simulated* wall clock is reconstructed by list-
    // scheduling the charged minutes onto the worker slots: each task goes
    // to the simulated-least-loaded worker, exactly how a Dask worker pool
    // with one task per node drains a queue.
    let mut per_worker = vec![0.0f64; config.n_workers];
    for record in &results {
        let (slot, _) = per_worker
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("at least one worker");
        per_worker[slot] += record.minutes;
    }
    report.makespan_minutes = per_worker.iter().copied().fold(0.0, f64::max);
    report.per_worker_minutes = per_worker;
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_eval(minutes: f64) -> impl Fn(usize, &u64) -> EvalOutcome<u64> + Sync {
        move |_, &x| EvalOutcome { value: Ok(x * 2), minutes }
    }

    #[test]
    fn all_tasks_complete_without_faults() {
        let inputs: Vec<u64> = (0..20).collect();
        let config = PoolConfig { n_workers: 4, ..PoolConfig::default() };
        let (records, report) = run_batch(&inputs, quick_eval(10.0), &config, &FaultInjector::none());
        assert_eq!(records.len(), 20);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(*r.value.as_ref().unwrap(), (i as u64) * 2);
            assert_eq!(r.attempts, 1);
            assert_eq!(r.minutes, 10.0);
        }
        assert_eq!(report.worker_deaths, 0);
        // 20 ten-minute tasks over 4 workers → 50 simulated minutes.
        assert!((report.makespan_minutes - 50.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_is_enforced_on_simulated_minutes() {
        let inputs = vec![1u64, 2, 3];
        let eval = |task: usize, &x: &u64| EvalOutcome {
            value: Ok(x),
            minutes: if task == 1 { 150.0 } else { 60.0 },
        };
        let config = PoolConfig { n_workers: 2, timeout_minutes: Some(120.0), ..PoolConfig::default() };
        let (records, _) = run_batch(&inputs, eval, &config, &FaultInjector::none());
        assert!(records[0].value.is_ok());
        assert_eq!(
            records[1].value,
            Err(TaskError::Timeout { limit_minutes: 120.0 })
        );
        // The killed job is charged the full limit, not its would-be time.
        assert_eq!(records[1].minutes, 120.0);
        assert!(records[2].value.is_ok());
    }

    #[test]
    fn evaluation_failures_are_reported() {
        let inputs = vec![0u64, 1];
        let eval = |task: usize, _: &u64| EvalOutcome {
            value: if task == 0 { Err("diverged".to_string()) } else { Ok(7u64) },
            minutes: 5.0,
        };
        let (records, _) =
            run_batch(&inputs, eval, &PoolConfig::default(), &FaultInjector::none());
        assert_eq!(records[0].value, Err(TaskError::Failed("diverged".into())));
        assert_eq!(*records[1].value.as_ref().unwrap(), 7);
    }

    #[test]
    fn worker_deaths_trigger_reassignment_without_nannies() {
        let inputs: Vec<u64> = (0..30).collect();
        let config = PoolConfig { n_workers: 8, nanny: false, max_attempts: 30, ..PoolConfig::default() };
        let faults = FaultInjector::new(0.10, 42);
        let (records, report) = run_batch(&inputs, quick_eval(5.0), &config, &faults);
        // With 10 % per-task deaths over 30 tasks, some deaths are certain
        // under this seed.
        assert!(report.worker_deaths > 0, "seed produced no deaths");
        // Every task still completes as long as a worker survives.
        let survivors = 8 - report.worker_deaths.min(7);
        if survivors > 0 {
            assert!(records.iter().all(|r| r.value.is_ok()));
            assert!(records.iter().any(|r| r.attempts > 1), "no task was retried");
        }
    }

    #[test]
    fn nannies_restart_workers() {
        let inputs: Vec<u64> = (0..40).collect();
        let config = PoolConfig { n_workers: 2, nanny: true, max_attempts: 50, ..PoolConfig::default() };
        let faults = FaultInjector::new(0.2, 7);
        let (records, report) = run_batch(&inputs, quick_eval(1.0), &config, &faults);
        assert!(report.worker_deaths > 0);
        // With nannies, workers always come back, so everything finishes.
        assert!(records.iter().all(|r| r.value.is_ok()));
    }

    #[test]
    fn exhausted_attempts_fail_the_task() {
        let inputs = vec![0u64];
        let config = PoolConfig { n_workers: 1, nanny: true, max_attempts: 2, ..PoolConfig::default() };
        // Certain-death injector: the task can never complete.
        let faults = FaultInjector::new(0.999, 3);
        let (records, report) = run_batch(&inputs, quick_eval(1.0), &config, &faults);
        assert_eq!(records[0].value, Err(TaskError::WorkerFailed));
        assert_eq!(records[0].attempts, 2);
        assert_eq!(report.worker_deaths, 2);
    }

    #[test]
    fn makespan_reflects_load_balance() {
        // 5 tasks of 10 min on 5 workers → 10 min; on 1 worker → 50 min.
        let inputs: Vec<u64> = (0..5).collect();
        let wide = PoolConfig { n_workers: 5, ..PoolConfig::default() };
        let narrow = PoolConfig { n_workers: 1, ..PoolConfig::default() };
        let (_, r_wide) = run_batch(&inputs, quick_eval(10.0), &wide, &FaultInjector::none());
        let (_, r_narrow) = run_batch(&inputs, quick_eval(10.0), &narrow, &FaultInjector::none());
        assert!((r_wide.makespan_minutes - 10.0).abs() < 1e-9);
        assert!((r_narrow.makespan_minutes - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_fine() {
        let inputs: Vec<u64> = vec![];
        let (records, report) =
            run_batch(&inputs, quick_eval(1.0), &PoolConfig::default(), &FaultInjector::none());
        assert!(records.is_empty());
        assert_eq!(report.makespan_minutes, 0.0);
    }
}
