//! A Dask-like client/scheduler/worker evaluation pool with a supervision
//! runtime.
//!
//! Mirrors the paper's §2.2.5 deployment: a scheduler fans evaluation tasks
//! out to one worker per compute node, workers may die mid-task (hardware
//! faults), "nannies" may restart dead workers or — as the paper found
//! preferable — be disabled so the scheduler simply reassigns the task to a
//! surviving worker. Tasks also carry a *simulated* runtime (minutes) from
//! the cost model, and the scheduler enforces the paper's 2-hour per-task
//! timeout against that simulated clock.
//!
//! On top of the plain pool, [`run_batch_supervised`] adds the supervision
//! loop the ROADMAP's production-scale north star asks for:
//!
//! * every attempt gets a [`TaskCtx`] carrying a cooperative [`CancelToken`]
//!   and the deadline budget, so a supervised evaluation can stop *at* the
//!   wall (and a superseded attempt stops within one check interval)
//!   instead of being discovered dead afterwards;
//! * **straggler detection**: tasks whose cost-model estimate exceeds a
//!   quantile rule over the batch get a **speculative twin** enqueued on the
//!   spare capacity — first result wins, the loser's token is cancelled;
//! * **retry with deterministic exponential backoff** and per-slot worker
//!   health scoring that **quarantines** a slot after repeated deaths
//!   (never the last surviving slot);
//! * dead attempts charge their **partial simulated minutes** (a
//!   deterministic fraction of the task's estimate), so
//!   [`PoolReport::makespan_minutes`] reflects lost node time the way the
//!   real Summit allocation would.
//!
//! Every supervision decision — fault placement, death fractions, straggler
//! sets, backoff amounts — is a pure function of
//! `(seed, batch key, task, attempt)` and the deterministic estimates, never
//! of real-time thread interleavings, so the crash/resume journal contract
//! (see `dphpo-core`) keeps holding with supervision enabled. The only
//! report fields that may vary with physical scheduling are
//! [`PoolReport::quarantined_workers`] and [`PoolReport::heartbeats`] under
//! speculation, which is why the journal does not serialize them.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel;
use dphpo_obs::{cats, names, Event, Recorder, SpanCtx, NOOP};

/// The synthetic attempt number used for a task's speculative twin in fault
/// decisions, chosen far outside the primary range `1..=max_attempts` so a
/// twin's death roll never collides with a primary attempt's.
pub const SPECULATIVE_ATTEMPT: u32 = 1 << 16;

/// Why a task produced no value.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskError {
    /// The simulated runtime exceeded the per-task limit (the paper's
    /// 2-hour `subprocess` timeout → `TimeoutError`).
    Timeout {
        /// The enforced limit in minutes.
        limit_minutes: f64,
    },
    /// The worker hosting the task died (hardware fault); attempts were
    /// exhausted or no workers survived.
    WorkerFailed,
    /// The evaluation itself failed for an unstructured reason.
    Failed(String),
    /// The divergence sentinel aborted the training early.
    Diverged {
        /// Training step at which divergence was detected.
        step: usize,
        /// The offending loss value (may be non-finite).
        loss: f64,
    },
    /// The evaluation observed its [`CancelToken`] and stopped. Only a
    /// task whose *sole* attempt was externally cancelled ends this way.
    Cancelled,
    /// The attempt's result was superseded by its speculative twin (or the
    /// twin by its primary). Never a task's *terminal* error — the winning
    /// result is the record; this variant classifies the discarded loser.
    /// Its batch-level footprint is [`PoolReport::speculated_tasks`].
    Speculated,
}

/// Structured failure reported by a supervised evaluation function.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalFault {
    /// Unstructured failure (legacy string reason).
    Failed(String),
    /// The divergence sentinel fired inside the training loop.
    Diverged {
        /// Step at which divergence was detected.
        step: usize,
        /// The offending loss value.
        loss: f64,
    },
    /// The simulated-clock deadline budget ran out mid-evaluation; the
    /// scheduler charges the timeout limit, as the wall would have.
    Deadline,
    /// The evaluation observed its [`CancelToken`] and aborted.
    Cancelled,
}

/// Outcome produced by the user's evaluation function.
pub struct EvalOutcome<T> {
    /// The evaluation result, or a structured failure.
    pub value: Result<T, EvalFault>,
    /// Simulated runtime in minutes.
    pub minutes: f64,
}

/// Cooperative cancellation flag shared between the scheduler and one
/// attempt's evaluation. Cancelling is a one-way latch; the evaluation
/// polls [`CancelToken::is_cancelled`] at step boundaries and aborts with
/// [`EvalFault::Cancelled`] when it flips.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Latch the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Per-attempt context handed to a supervised evaluation function.
///
/// Carries the attempt's identity (for replay short-circuits and logging),
/// the cooperative cancellation token, the deadline budget, and a progress
/// heartbeat the scheduler's supervision loop consumes.
pub struct TaskCtx<'a> {
    /// Task index within the batch.
    pub task: usize,
    /// Attempt number (1 = first try; [`SPECULATIVE_ATTEMPT`] for a twin).
    pub attempt: u32,
    /// True for a speculative twin of a straggler task.
    pub speculative: bool,
    /// Simulated-minutes budget for this attempt (the pool's per-task
    /// timeout), for the evaluation to enforce cooperatively.
    pub deadline_minutes: Option<f64>,
    cancel: Option<&'a CancelToken>,
    beat: Option<&'a (dyn Fn(f64, f64) + 'a)>,
}

impl TaskCtx<'static> {
    /// A context with no scheduler attached — for calling a supervised
    /// evaluation function directly (tests, single-shot tools).
    pub fn detached(task: usize) -> Self {
        TaskCtx {
            task,
            attempt: 1,
            speculative: false,
            deadline_minutes: None,
            cancel: None,
            beat: None,
        }
    }
}

impl<'a> TaskCtx<'a> {
    /// True once the scheduler has cancelled this attempt (e.g. its twin
    /// already produced the task's result).
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Report simulated progress: `done` minutes consumed of a `projected`
    /// total. A no-op without a scheduler attached.
    pub fn heartbeat(&self, done: f64, projected: f64) {
        if let Some(beat) = self.beat {
            beat(done, projected);
        }
    }
}

/// Final per-task record returned by [`run_batch`].
#[derive(Clone, Debug)]
pub struct TaskRecord<T> {
    /// Value or the error that ended the task.
    pub value: Result<T, TaskError>,
    /// Simulated minutes charged for the final attempt (timeouts charge the
    /// full limit, as the real job would have been killed there; exhausted
    /// retries charge the partial minutes their dead attempts burned).
    pub minutes: f64,
    /// Worker that produced the final outcome.
    pub worker: usize,
    /// Number of attempts (1 = no retries).
    pub attempts: u32,
}

/// Supervision-loop knobs: straggler rule, speculation, backoff, and worker
/// health scoring. All decisions derived from these are deterministic.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Launch speculative twins for straggler tasks (needs ≥ 2 workers).
    pub speculate: bool,
    /// Quantile of the batch's estimated minutes used as the straggler
    /// baseline (nearest-rank over the sorted estimates).
    pub straggler_quantile: f64,
    /// A task is a straggler when its estimate exceeds
    /// `straggler_factor ×` the quantile baseline.
    pub straggler_factor: f64,
    /// Simulated minutes of backoff before the first retry of a task.
    pub backoff_base_minutes: f64,
    /// Multiplier applied to the backoff for each further retry
    /// (`base × factor^(retry-1)`).
    pub backoff_factor: f64,
    /// With nannies, quarantine (permanently retire) a worker slot after
    /// this many deaths — unless it is the last surviving slot. 0 disables
    /// quarantining.
    pub quarantine_deaths: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            speculate: false,
            straggler_quantile: 0.75,
            straggler_factor: 1.5,
            backoff_base_minutes: 1.0,
            backoff_factor: 2.0,
            quarantine_deaths: 3,
        }
    }
}

/// Pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of workers (the paper: one per allocated node, 100).
    pub n_workers: usize,
    /// Per-task simulated-runtime limit in minutes (the paper: 120).
    pub timeout_minutes: Option<f64>,
    /// Restart dead workers (Dask nannies). The paper disables them.
    pub nanny: bool,
    /// Maximum attempts per task before giving up.
    pub max_attempts: u32,
    /// Supervision-loop knobs (speculation off by default).
    pub supervisor: SupervisorConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            n_workers: 4,
            timeout_minutes: Some(120.0),
            nanny: false,
            max_attempts: 3,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Worker-death injection, plus the chaos hooks used by crash-safety tests.
///
/// Each task execution kills its worker with probability
/// `death_probability` (before completing the task). Decisions are **pure
/// functions of `(seed, batch key, task index, attempt)`** — not draws from
/// a shared stream — so fault placement is independent of the real-time
/// order in which worker threads grab tasks. That determinism is what lets
/// a resumed experiment replay a journal and land bit-identically on the
/// uninterrupted run's result (see `dphpo-core`'s journal module).
///
/// The *driver-kill* chaos mode ([`FaultInjector::with_driver_kill`])
/// simulates the failure the paper's Dask deployment cannot survive: the
/// EA driver itself dying mid-campaign. After `k` completed-task
/// notifications, [`FaultInjector::note_task_completion`] starts returning
/// `false` ("this record was lost") and [`FaultInjector::driver_alive`]
/// reports the driver as dead, which the journaling experiment loop turns
/// into an orderly simulated crash.
pub struct FaultInjector {
    death_probability: f64,
    seed: u64,
    batch_key: AtomicU64,
    kill_after: Option<u64>,
    completed: AtomicU64,
    force_dead: AtomicBool,
}

impl FaultInjector {
    /// A fault plan; `death_probability` of 0 disables faults.
    pub fn new(death_probability: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&death_probability));
        FaultInjector {
            death_probability,
            seed,
            batch_key: AtomicU64::new(0),
            kill_after: None,
            completed: AtomicU64::new(0),
            force_dead: AtomicBool::new(false),
        }
    }

    /// No faults.
    pub fn none() -> Self {
        FaultInjector::new(0.0, 0)
    }

    /// Chaos mode: the *driver* (not a worker) dies after `after_tasks`
    /// completed-task notifications. Deterministic by construction.
    pub fn with_driver_kill(mut self, after_tasks: u64) -> Self {
        self.kill_after = Some(after_tasks);
        self
    }

    /// Set the key that namespaces this batch's fault decisions. Callers
    /// running several batches through one injector (one per EA generation)
    /// pass a batch identity that is stable across resume — the generation
    /// number — so an interrupted and an uninterrupted campaign see the
    /// same fault pattern.
    pub fn set_batch_key(&self, key: u64) {
        self.batch_key.store(key, Ordering::Relaxed);
    }

    /// Record one completed task. Returns `true` while the driver is still
    /// alive (the completion "reached disk"), `false` once the configured
    /// kill point has been passed.
    pub fn note_task_completion(&self) -> bool {
        let n = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if self.force_dead.load(Ordering::Relaxed) {
            return false;
        }
        match self.kill_after {
            Some(k) => n <= k,
            None => true,
        }
    }

    /// Completed-task notifications seen so far (all batches).
    pub fn completed_tasks(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// False once the driver-kill threshold has been crossed or the driver
    /// has been declared dead outright.
    pub fn driver_alive(&self) -> bool {
        if self.force_dead.load(Ordering::Relaxed) {
            return false;
        }
        match self.kill_after {
            Some(k) => self.completed.load(Ordering::Relaxed) < k,
            None => true,
        }
    }

    /// Declare the driver dead immediately — the reaction to an injected
    /// (or real) I/O failure on the durability path: a driver that cannot
    /// journal must stop, not keep computing unrecoverable state.
    pub fn declare_dead(&self) {
        self.force_dead.store(true, Ordering::Relaxed);
    }

    pub(crate) fn task_kills_worker(&self, task: usize, attempt: u32) -> bool {
        if self.death_probability == 0.0 {
            return false;
        }
        let batch_key = self.batch_key.load(Ordering::Relaxed);
        crate::faultplan::worker_death_unit(self.seed, batch_key, task, attempt)
            < self.death_probability
    }

    /// How far through its estimated runtime an attempt got before its
    /// worker died, as a deterministic fraction in `[0, 1)` — a pure hash of
    /// `(seed, batch key, task, attempt)` under a different salt than the
    /// death decision itself, so the two are independent.
    pub(crate) fn death_fraction(&self, task: usize, attempt: u32) -> f64 {
        let batch_key = self.batch_key.load(Ordering::Relaxed);
        crate::faultplan::death_fraction_unit(self.seed, batch_key, task, attempt)
    }
}

/// Nearest-rank quantile over an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = (((sorted.len() - 1) as f64) * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Per-run statistics.
///
/// Every field except [`PoolReport::quarantined_workers`] and (under
/// speculation) [`PoolReport::heartbeats`] is a deterministic function of
/// the batch inputs, the fault plan, and the pool configuration — those two
/// depend on which physical thread won a race and are therefore excluded
/// from the crash/resume journal.
#[derive(Clone, Debug, Default)]
pub struct PoolReport {
    /// Simulated makespan: the longest per-worker busy time in minutes
    /// (what the batch job's wall clock would have shown), including the
    /// partial minutes dead and speculative attempts burned.
    pub makespan_minutes: f64,
    /// Simulated busy minutes per worker slot.
    pub per_worker_minutes: Vec<f64>,
    /// Worker deaths observed on primary attempts (speculative twins are
    /// accounted analytically in [`PoolReport::speculative_deaths`]).
    pub worker_deaths: usize,
    /// Tasks that were retried at least once.
    pub retried_tasks: usize,
    /// Tasks whose terminal record is [`TaskError::Failed`] or
    /// [`TaskError::Diverged`] (a sick training, not a sick node).
    pub diverged_tasks: usize,
    /// Tasks whose terminal record is [`TaskError::Timeout`].
    pub timeout_tasks: usize,
    /// Tasks whose terminal record is [`TaskError::Cancelled`].
    pub cancelled_tasks: usize,
    /// Tasks whose terminal record is [`TaskError::WorkerFailed`]
    /// (exhausted retries or pool death).
    pub exhausted_tasks: usize,
    /// Straggler tasks that were granted a speculative twin.
    pub speculated_tasks: usize,
    /// Speculative twins whose fault roll killed their worker (accounted at
    /// launch from the fault plan, so the count is deterministic even when
    /// a twin is skipped because its primary finished first).
    pub speculative_deaths: usize,
    /// Simulated minutes burned by attempts that produced no result: dead
    /// primaries' partial minutes plus dying twins' partial minutes.
    pub lost_minutes: f64,
    /// Total simulated backoff delay inserted before retries
    /// (`base × factor^(retry-1)` per retry). Idle waiting, not busy time —
    /// reported separately from the makespan.
    pub backoff_minutes: f64,
    /// Simulated busy minutes per worker slot that produced a result
    /// (successful evaluations plus structural failures, which still ran).
    pub busy_minutes: Vec<f64>,
    /// Simulated minutes per worker slot burned by dead primary attempts.
    pub lost_death_minutes: Vec<f64>,
    /// Simulated minutes per worker slot burned by dying speculative twins.
    pub lost_speculation_minutes: Vec<f64>,
    /// Simulated retry-backoff minutes list-scheduled onto each worker slot
    /// (idle waiting before a requeue, not busy time).
    pub backoff_slot_minutes: Vec<f64>,
    /// Simulated idle minutes per worker slot: the gap between that slot's
    /// charged time and the batch wall clock.
    pub idle_minutes: Vec<f64>,
    /// Backoff-inclusive simulated wall clock of the batch: the longest
    /// per-worker `charged + backoff` time. Equals
    /// [`PoolReport::makespan_minutes`] whenever no retry backoff was
    /// charged, and is never smaller. Per worker slot,
    /// `busy + lost_death + lost_speculation + backoff + idle` partitions
    /// this value exactly.
    pub wall_minutes: f64,
    /// Worker slots permanently retired by health scoring. Depends on which
    /// physical thread absorbed the deaths — excluded from the journal.
    pub quarantined_workers: usize,
    /// Progress heartbeats received. Deterministic without speculation;
    /// under speculation a skipped twin emits none — excluded from the
    /// journal.
    pub heartbeats: usize,
}

#[derive(Debug)]
struct Job {
    task: usize,
    attempt: u32,
    speculative: bool,
    cancel: CancelToken,
}

enum Message<T> {
    Done {
        task: usize,
        speculative: bool,
        outcome: EvalOutcome<T>,
        worker: usize,
        minutes_charged: f64,
    },
    Died {
        task: usize,
        attempt: u32,
        worker: usize,
        panicked: bool,
    },
    Beat,
}

/// Evaluate every input in parallel on a simulated worker pool.
///
/// `eval` receives `(task_index, &input)` and returns a value plus its
/// simulated runtime. Panics inside `eval` are treated as worker deaths.
pub fn run_batch<I, T, F>(
    inputs: &[I],
    eval: F,
    config: &PoolConfig,
    faults: &FaultInjector,
) -> (Vec<TaskRecord<T>>, PoolReport)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> EvalOutcome<T> + Sync,
{
    run_batch_with_hooks(inputs, eval, config, faults, |_, _: &TaskRecord<T>| {})
}

/// As [`run_batch`], with a task-completion hook.
///
/// `on_complete(task, record)` fires on the scheduler (calling) thread the
/// moment a task reaches its final record — success, evaluation failure,
/// timeout, or exhausted retries — in completion order, before the batch
/// returns. This is the write-ahead point for crash-safe journaling: a
/// journal appended here has every finished evaluation on disk even if the
/// driver dies before the batch (or the campaign) completes.
pub fn run_batch_with_hooks<I, T, F, H>(
    inputs: &[I],
    eval: F,
    config: &PoolConfig,
    faults: &FaultInjector,
    on_complete: H,
) -> (Vec<TaskRecord<T>>, PoolReport)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> EvalOutcome<T> + Sync,
    H: FnMut(usize, &TaskRecord<T>),
{
    // Without a supervised evaluation there is no per-task cost estimate;
    // use the timeout limit (the most a live attempt could burn) so dead
    // attempts still charge nonzero partial minutes.
    let flat = config.timeout_minutes.unwrap_or(0.0);
    run_batch_supervised(
        inputs,
        |ctx: &TaskCtx<'_>, input: &I| eval(ctx.task, input),
        |_, _| flat,
        config,
        faults,
        on_complete,
    )
}

/// As [`run_batch_with_hooks`], with supervised evaluations and a per-task
/// cost estimate.
///
/// `eval` receives a [`TaskCtx`] (cancel token, deadline budget, heartbeat)
/// and should poll [`TaskCtx::is_cancelled`] at step boundaries.
/// `estimate(task, &input)` returns the task's deterministic simulated-
/// minutes estimate, which drives straggler detection and the partial
/// minutes charged for dead attempts. Panics inside `eval` are caught and
/// treated as worker deaths.
pub fn run_batch_supervised<I, T, F, E, H>(
    inputs: &[I],
    eval: F,
    estimate: E,
    config: &PoolConfig,
    faults: &FaultInjector,
    on_complete: H,
) -> (Vec<TaskRecord<T>>, PoolReport)
where
    I: Sync,
    T: Send,
    F: Fn(&TaskCtx<'_>, &I) -> EvalOutcome<T> + Sync,
    E: Fn(usize, &I) -> f64,
    H: FnMut(usize, &TaskRecord<T>),
{
    run_batch_observed(inputs, eval, estimate, config, faults, on_complete, &NOOP, SpanCtx::default())
}

/// As [`run_batch_supervised`], with a telemetry [`Recorder`].
///
/// The driver emits supervision events (batch submission, twin launches,
/// worker deaths, backoff) and counters under `span` — the caller's
/// `(seed, run, gen)` context; per-task subspans derive from it. With the
/// default [`NoopRecorder`](dphpo_obs::NoopRecorder) every instrumentation
/// site is a single `enabled()` branch, and nothing about scheduling changes:
/// telemetry is observed from the driver thread, which already serializes
/// every decision, so the records, the report, and the fault replay contract
/// are bit-identical with telemetry on or off.
#[allow(clippy::too_many_arguments)]
pub fn run_batch_observed<I, T, F, E, H>(
    inputs: &[I],
    eval: F,
    estimate: E,
    config: &PoolConfig,
    faults: &FaultInjector,
    mut on_complete: H,
    obs: &dyn Recorder,
    span: SpanCtx,
) -> (Vec<TaskRecord<T>>, PoolReport)
where
    I: Sync,
    T: Send,
    F: Fn(&TaskCtx<'_>, &I) -> EvalOutcome<T> + Sync,
    E: Fn(usize, &I) -> f64,
    H: FnMut(usize, &TaskRecord<T>),
{
    assert!(config.n_workers > 0, "pool needs at least one worker");
    assert!(config.max_attempts > 0, "max_attempts must be positive");
    let sup = config.supervisor;
    let n = inputs.len();
    let mut records: Vec<Option<TaskRecord<T>>> = (0..n).map(|_| None).collect();
    if n == 0 {
        return (Vec::new(), PoolReport::default());
    }

    let estimates: Vec<f64> = (0..n).map(|i| estimate(i, &inputs[i]).max(0.0)).collect();

    // Telemetry is driver-side only: the driver thread already serializes
    // every supervision decision, so recording from it cannot perturb the
    // worker race, and the disabled path is this one branch per site.
    let obs_on = obs.enabled();
    if obs_on {
        obs.gauge_set(names::G_QUEUE_DEPTH, n as f64);
        let mut ev = Event::instant(names::SCHED_SUBMIT, cats::SCHED, span);
        ev.args = vec![("n_tasks", n as f64), ("n_workers", config.n_workers as f64)];
        obs.record(ev);
    }

    let (task_tx, task_rx) = channel::unbounded::<Job>();
    let (msg_tx, msg_rx) = channel::unbounded::<Message<T>>();

    let primary_tokens: Vec<CancelToken> = (0..n).map(|_| CancelToken::new()).collect();
    let mut twin_tokens: HashMap<usize, CancelToken> = HashMap::new();
    let mut report = PoolReport::default();

    for (task, token) in primary_tokens.iter().enumerate() {
        let job = Job { task, attempt: 1, speculative: false, cancel: token.clone() };
        task_tx.send(job).expect("queue open");
    }

    // Straggler detection is structural: the set is computed once from the
    // deterministic estimates (quantile baseline × factor), never from racy
    // heartbeat timing. Twins go to the back of the queue — primaries are
    // never starved — and are capped at the spare slot count. A twin's
    // death is accounted *here*, from the fault plan, because whether the
    // twin physically runs depends on whether its primary finished first.
    if sup.speculate && n > 1 && config.n_workers > 1 {
        let mut sorted = estimates.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
        let threshold = quantile(&sorted, sup.straggler_quantile) * sup.straggler_factor;
        let mut budget = config.n_workers - 1;
        for (task, &est) in estimates.iter().enumerate() {
            if budget == 0 {
                break;
            }
            if est > threshold {
                budget -= 1;
                report.speculated_tasks += 1;
                if obs_on {
                    obs.counter_add(names::C_SPECULATED, 1);
                    let mut ev = Event::instant(
                        names::SCHED_TWIN,
                        cats::SCHED,
                        span.with_task(task as u32, SPECULATIVE_ATTEMPT),
                    );
                    ev.args = vec![("estimate_min", est)];
                    obs.record(ev);
                }
                if faults.task_kills_worker(task, SPECULATIVE_ATTEMPT) {
                    report.speculative_deaths += 1;
                    report.lost_minutes +=
                        faults.death_fraction(task, SPECULATIVE_ATTEMPT) * estimates[task];
                }
                let cancel = CancelToken::new();
                twin_tokens.insert(task, cancel.clone());
                let job =
                    Job { task, attempt: SPECULATIVE_ATTEMPT, speculative: true, cancel };
                task_tx.send(job).expect("queue open");
            }
        }
    }

    let mut attempts = vec![0u32; n];
    let mut finalized = vec![false; n];
    let mut retried = vec![false; n];
    let mut lost_per_task = vec![0.0f64; n];
    let mut backoff_per_task = vec![0.0f64; n];
    // A task's primary retry chain stays open until a primary attempt
    // completes (superseded or not) or its retries are exhausted. Draining
    // every chain — not just every record — is what keeps death counts and
    // lost-minute charges independent of which twin won a race.
    let mut open_chains = n;
    let alive = AtomicUsize::new(config.n_workers);
    let quarantined = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for worker in 0..config.n_workers {
            let task_rx = task_rx.clone();
            let msg_tx = msg_tx.clone();
            let eval = &eval;
            let faults = &faults;
            let alive = &alive;
            let quarantined = &quarantined;
            let timeout = config.timeout_minutes;
            let nanny = config.nanny;
            let quarantine_deaths = sup.quarantine_deaths;
            scope.spawn(move || {
                let mut deaths_here = 0u32;
                while let Ok(job) = task_rx.recv() {
                    let Job { task, attempt, speculative, cancel } = job;
                    if speculative {
                        // Twins are sandboxed: already-superseded twins are
                        // skipped, a dying twin never takes the slot down
                        // (its loss is accounted at launch), and its result
                        // only matters if it beats the primary.
                        if cancel.is_cancelled() {
                            continue;
                        }
                        if faults.task_kills_worker(task, attempt) {
                            continue;
                        }
                    } else if faults.task_kills_worker(task, attempt) {
                        // The worker dies mid-task. With a nanny it is
                        // restarted (continue) until health scoring
                        // quarantines the slot; without, the thread exits.
                        let _ = msg_tx.send(Message::Died {
                            task,
                            attempt,
                            worker,
                            panicked: false,
                        });
                        deaths_here += 1;
                        if nanny {
                            if quarantine_deaths > 0
                                && deaths_here >= quarantine_deaths
                                && try_retire(alive)
                            {
                                quarantined.fetch_add(1, Ordering::SeqCst);
                                return;
                            }
                            continue;
                        }
                        alive.fetch_sub(1, Ordering::SeqCst);
                        return;
                    }
                    let beat = |_done: f64, _projected: f64| {
                        let _ = msg_tx.send(Message::Beat);
                    };
                    let ctx = TaskCtx {
                        task,
                        attempt,
                        speculative,
                        deadline_minutes: timeout,
                        cancel: Some(&cancel),
                        beat: Some(&beat),
                    };
                    match catch_unwind(AssertUnwindSafe(|| eval(&ctx, &inputs[task]))) {
                        Ok(outcome) => {
                            // Timeouts charge the limit: the real job would
                            // have been killed at the wall.
                            let minutes_charged = match timeout {
                                Some(limit) if outcome.minutes > limit => limit,
                                _ => outcome.minutes,
                            };
                            let _ = msg_tx.send(Message::Done {
                                task,
                                speculative,
                                outcome,
                                worker,
                                minutes_charged,
                            });
                        }
                        Err(_) => {
                            // A panicking evaluation is a worker death (the
                            // documented contract) — not a silent hang.
                            if speculative {
                                continue;
                            }
                            let _ = msg_tx.send(Message::Died {
                                task,
                                attempt,
                                worker,
                                panicked: true,
                            });
                            deaths_here += 1;
                            if nanny {
                                if quarantine_deaths > 0
                                    && deaths_here >= quarantine_deaths
                                    && try_retire(alive)
                                {
                                    quarantined.fetch_add(1, Ordering::SeqCst);
                                    return;
                                }
                                continue;
                            }
                            alive.fetch_sub(1, Ordering::SeqCst);
                            return;
                        }
                    }
                }
            });
        }
        drop(msg_tx);

        let mut finalize = |task: usize,
                            value: Result<T, TaskError>,
                            minutes: f64,
                            worker: usize,
                            attempt_count: u32,
                            records: &mut [Option<TaskRecord<T>>],
                            report: &mut PoolReport,
                            finalized: &mut [bool]| {
            match &value {
                Err(TaskError::Failed(_)) | Err(TaskError::Diverged { .. }) => {
                    report.diverged_tasks += 1;
                }
                Err(TaskError::Timeout { .. }) => report.timeout_tasks += 1,
                Err(TaskError::Cancelled) => report.cancelled_tasks += 1,
                Err(TaskError::WorkerFailed) => report.exhausted_tasks += 1,
                Err(TaskError::Speculated) | Ok(_) => {}
            }
            records[task] =
                Some(TaskRecord { value, minutes, worker, attempts: attempt_count });
            finalized[task] = true;
            primary_tokens[task].cancel();
            if let Some(tok) = twin_tokens.get(&task) {
                tok.cancel();
            }
            on_complete(task, records[task].as_ref().expect("just stored"));
        };

        // Set once no worker can make further progress (every worker died,
        // no nannies). Observed either through the alive counter or through
        // the message channel disconnecting as the last worker exits; both
        // paths drain already-sent messages before failing the remainder, so
        // the records are identical whichever signal the driver sees first —
        // a worker reports its final result/death *before* its exit is
        // visible, and once `alive` reads zero no further send can happen.
        let mut pool_dead = false;
        while open_chains > 0 {
            let msg = if pool_dead {
                match msg_rx.try_recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            } else if alive.load(Ordering::SeqCst) == 0 {
                pool_dead = true;
                continue;
            } else {
                match msg_rx.recv_timeout(std::time::Duration::from_millis(50)) {
                    Ok(m) => m,
                    Err(channel::RecvTimeoutError::Timeout) => continue,
                    // All senders dropped ⇒ all workers exited and the
                    // buffer is already drained; fail the remainder below.
                    Err(channel::RecvTimeoutError::Disconnected) => break,
                }
            };
            match msg {
                Message::Done { task, speculative, outcome, worker, minutes_charged } => {
                    if !speculative {
                        open_chains -= 1;
                        attempts[task] += 1;
                    }
                    if finalized[task] {
                        // The counterpart already produced this task's
                        // record; the classification for this discarded
                        // result is `TaskError::Speculated`.
                        continue;
                    }
                    let eval_minutes = outcome.minutes;
                    let timed_out = matches!(
                        config.timeout_minutes, Some(limit) if eval_minutes > limit
                    );
                    let value = if timed_out {
                        Err(TaskError::Timeout {
                            limit_minutes: config.timeout_minutes.unwrap(),
                        })
                    } else {
                        outcome.value.map_err(|fault| match fault {
                            EvalFault::Failed(reason) => TaskError::Failed(reason),
                            EvalFault::Diverged { step, loss } => {
                                TaskError::Diverged { step, loss }
                            }
                            EvalFault::Deadline => TaskError::Timeout {
                                limit_minutes: config.timeout_minutes.unwrap_or(eval_minutes),
                            },
                            EvalFault::Cancelled => TaskError::Cancelled,
                        })
                    };
                    finalize(
                        task,
                        value,
                        minutes_charged,
                        worker,
                        attempts[task].max(1),
                        &mut records,
                        &mut report,
                        &mut finalized,
                    );
                }
                Message::Died { task, attempt, worker, panicked } => {
                    report.worker_deaths += 1;
                    attempts[task] += 1;
                    // A fault-injected death burned a deterministic fraction
                    // of the task's estimate; a panic gives no progress
                    // information, so the full estimate is written off.
                    let lost = if panicked {
                        estimates[task]
                    } else {
                        faults.death_fraction(task, attempt) * estimates[task]
                    };
                    report.lost_minutes += lost;
                    lost_per_task[task] += lost;
                    if obs_on {
                        obs.counter_add(names::C_DEATHS, 1);
                        let mut ev = Event::instant(
                            names::SCHED_DEATH,
                            cats::SCHED,
                            span.with_task(task as u32, attempt),
                        );
                        ev.args =
                            vec![("lost_min", lost), ("panicked", if panicked { 1.0 } else { 0.0 })];
                        obs.record(ev);
                    }
                    if attempts[task] < config.max_attempts {
                        if !retried[task] {
                            retried[task] = true;
                            report.retried_tasks += 1;
                        }
                        let backoff = sup.backoff_base_minutes
                            * sup.backoff_factor.powi(attempts[task] as i32 - 1);
                        report.backoff_minutes += backoff;
                        backoff_per_task[task] += backoff;
                        if obs_on {
                            obs.counter_add(names::C_RETRIES, 1);
                            obs.observe(names::H_BACKOFF_MIN, backoff);
                            let mut ev = Event::instant(
                                names::SCHED_BACKOFF,
                                cats::SCHED,
                                span.with_task(task as u32, attempts[task] + 1),
                            );
                            ev.args = vec![("backoff_min", backoff)];
                            obs.record(ev);
                        }
                        // Requeue even when a twin already finalized the
                        // task: the retry chain must replay identically in
                        // every interleaving (the cancelled token makes the
                        // superseded attempt abort within one check
                        // interval, so the extra work is negligible).
                        let job = Job {
                            task,
                            attempt: attempts[task] + 1,
                            speculative: false,
                            cancel: primary_tokens[task].clone(),
                        };
                        let _ = task_tx.send(job);
                    } else {
                        open_chains -= 1;
                        if !finalized[task] {
                            finalize(
                                task,
                                Err(TaskError::WorkerFailed),
                                lost_per_task[task],
                                worker,
                                attempts[task],
                                &mut records,
                                &mut report,
                                &mut finalized,
                            );
                        }
                    }
                }
                Message::Beat => {
                    report.heartbeats += 1;
                    if obs_on {
                        obs.counter_add(names::C_HEARTBEATS, 1);
                    }
                }
            }
        }
        // If every worker died with work outstanding, fail the rest (a
        // retry re-queued onto a dead pool ends here too).
        for (task, slot) in records.iter_mut().enumerate() {
            if slot.is_none() {
                report.exhausted_tasks += 1;
                *slot = Some(TaskRecord {
                    value: Err(TaskError::WorkerFailed),
                    minutes: lost_per_task[task],
                    worker: usize::MAX,
                    attempts: attempts[task],
                });
                on_complete(task, slot.as_ref().expect("just stored"));
            }
        }
        drop(task_tx); // release workers blocked on recv
    });
    report.quarantined_workers = quarantined.load(Ordering::SeqCst);
    if obs_on {
        // Racy by design (depends on which physical thread absorbed the
        // deaths) — the `side.` prefix keeps it out of deterministic exports.
        obs.gauge_set(names::G_QUARANTINED, report.quarantined_workers as f64);
    }

    let results: Vec<TaskRecord<T>> = records
        .into_iter()
        .map(|r| r.expect("scheduler completed every task"))
        .collect();

    // Physical threads race for tasks in real time (they finish almost
    // instantly), so the *simulated* wall clock is reconstructed by list-
    // scheduling the charged minutes onto the worker slots: each charge goes
    // to the simulated-least-loaded worker, exactly how a Dask worker pool
    // with one task per node drains a queue. Charges are applied in a fixed
    // order (final records, then per-task retry losses, then dying twins)
    // so the makespan is deterministic. Each charge is also tagged with its
    // utilization category (busy / lost-to-death / lost-to-speculation) so
    // the per-worker partition invariant holds by construction.
    let mut per_worker = vec![0.0f64; config.n_workers];
    let mut busy = vec![0.0f64; config.n_workers];
    let mut lost_death = vec![0.0f64; config.n_workers];
    let mut lost_spec = vec![0.0f64; config.n_workers];
    let mut assign = |minutes: f64, category: &mut [f64]| {
        let (slot, _) = per_worker
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("busy minutes are finite"))
            .expect("at least one worker");
        per_worker[slot] += minutes;
        category[slot] += minutes;
    };
    for record in &results {
        // An exhausted task's record carries its dead attempts' lost
        // minutes; every other terminal record represents real compute.
        if matches!(record.value, Err(TaskError::WorkerFailed)) {
            assign(record.minutes, &mut lost_death);
        } else {
            assign(record.minutes, &mut busy);
        }
    }
    for (task, record) in results.iter().enumerate() {
        // Exhausted tasks already carry their lost minutes as the record.
        let already_charged = matches!(record.value, Err(TaskError::WorkerFailed));
        if !already_charged && lost_per_task[task] > 0.0 {
            assign(lost_per_task[task], &mut lost_death);
        }
    }
    if sup.speculate {
        for (task, &est) in estimates.iter().enumerate() {
            if twin_tokens.contains_key(&task) && faults.task_kills_worker(task, SPECULATIVE_ATTEMPT)
            {
                assign(faults.death_fraction(task, SPECULATIVE_ATTEMPT) * est, &mut lost_spec);
            }
        }
    }
    report.makespan_minutes = per_worker.iter().copied().fold(0.0, f64::max);
    // Backoff is idle waiting, not busy time: it extends a slot's wall
    // clock without entering the makespan. Each task's accumulated backoff
    // is list-scheduled (in task order) onto the slot with the smallest
    // charged-plus-backoff total, yielding a deterministic backoff-
    // inclusive wall clock.
    let mut backoff_slot = vec![0.0f64; config.n_workers];
    for &minutes in backoff_per_task.iter().filter(|&&m| m > 0.0) {
        let (slot, _) = per_worker
            .iter()
            .zip(&backoff_slot)
            .map(|(charged, waiting)| charged + waiting)
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("minutes are finite"))
            .expect("at least one worker");
        backoff_slot[slot] += minutes;
    }
    let wall = per_worker
        .iter()
        .zip(&backoff_slot)
        .map(|(charged, waiting)| charged + waiting)
        .fold(0.0, f64::max);
    report.idle_minutes = per_worker
        .iter()
        .zip(&backoff_slot)
        .map(|(charged, waiting)| wall - charged - waiting)
        .collect();
    report.wall_minutes = wall;
    report.per_worker_minutes = per_worker;
    report.busy_minutes = busy;
    report.lost_death_minutes = lost_death;
    report.lost_speculation_minutes = lost_spec;
    report.backoff_slot_minutes = backoff_slot;
    if obs_on {
        let busy_total: f64 = report.busy_minutes.iter().sum();
        let capacity = wall * config.n_workers as f64;
        let pct = if capacity > 0.0 { busy_total / capacity * 100.0 } else { 0.0 };
        obs.gauge_set(names::G_UTIL_BUSY_PCT, pct);
    }
    (results, report)
}

/// Retire one worker slot, unless it is the last alive — the pool must
/// never quarantine itself to death.
fn try_retire(alive: &AtomicUsize) -> bool {
    let mut current = alive.load(Ordering::SeqCst);
    while current > 1 {
        match alive.compare_exchange(current, current - 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_eval(minutes: f64) -> impl Fn(usize, &u64) -> EvalOutcome<u64> + Sync {
        move |_, &x| EvalOutcome { value: Ok(x * 2), minutes }
    }

    #[test]
    fn all_tasks_complete_without_faults() {
        let inputs: Vec<u64> = (0..20).collect();
        let config = PoolConfig { n_workers: 4, ..PoolConfig::default() };
        let (records, report) = run_batch(&inputs, quick_eval(10.0), &config, &FaultInjector::none());
        assert_eq!(records.len(), 20);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(*r.value.as_ref().unwrap(), (i as u64) * 2);
            assert_eq!(r.attempts, 1);
            assert_eq!(r.minutes, 10.0);
        }
        assert_eq!(report.worker_deaths, 0);
        assert_eq!(report.lost_minutes, 0.0);
        assert_eq!(report.speculated_tasks, 0);
        // 20 ten-minute tasks over 4 workers → 50 simulated minutes.
        assert!((report.makespan_minutes - 50.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_is_enforced_on_simulated_minutes() {
        let inputs = vec![1u64, 2, 3];
        let eval = |task: usize, &x: &u64| EvalOutcome {
            value: Ok(x),
            minutes: if task == 1 { 150.0 } else { 60.0 },
        };
        let config = PoolConfig { n_workers: 2, timeout_minutes: Some(120.0), ..PoolConfig::default() };
        let (records, report) = run_batch(&inputs, eval, &config, &FaultInjector::none());
        assert!(records[0].value.is_ok());
        assert_eq!(
            records[1].value,
            Err(TaskError::Timeout { limit_minutes: 120.0 })
        );
        // The killed job is charged the full limit, not its would-be time.
        assert_eq!(records[1].minutes, 120.0);
        assert!(records[2].value.is_ok());
        assert_eq!(report.timeout_tasks, 1);
    }

    #[test]
    fn evaluation_failures_are_reported() {
        let inputs = vec![0u64, 1];
        let eval = |task: usize, _: &u64| EvalOutcome {
            value: if task == 0 {
                Err(EvalFault::Failed("diverged".to_string()))
            } else {
                Ok(7u64)
            },
            minutes: 5.0,
        };
        let (records, report) =
            run_batch(&inputs, eval, &PoolConfig::default(), &FaultInjector::none());
        assert_eq!(records[0].value, Err(TaskError::Failed("diverged".into())));
        assert_eq!(*records[1].value.as_ref().unwrap(), 7);
        assert_eq!(report.diverged_tasks, 1);
    }

    #[test]
    fn structured_divergence_and_cancellation_flow_through() {
        let inputs = vec![0u64, 1, 2];
        let eval = |ctx: &TaskCtx<'_>, _: &u64| EvalOutcome {
            value: match ctx.task {
                0 => Err(EvalFault::Diverged { step: 7, loss: f64::INFINITY }),
                1 => Err(EvalFault::Cancelled),
                _ => Ok(1u64),
            },
            minutes: 3.0,
        };
        let (records, report) = run_batch_supervised(
            &inputs,
            eval,
            |_, _| 3.0,
            &PoolConfig::default(),
            &FaultInjector::none(),
            |_, _| {},
        );
        assert_eq!(
            records[0].value,
            Err(TaskError::Diverged { step: 7, loss: f64::INFINITY })
        );
        assert_eq!(records[1].value, Err(TaskError::Cancelled));
        assert!(records[2].value.is_ok());
        assert_eq!(report.diverged_tasks, 1);
        assert_eq!(report.cancelled_tasks, 1);
    }

    #[test]
    fn deadline_fault_maps_to_timeout() {
        let inputs = vec![0u64];
        let eval = |_: &TaskCtx<'_>, _: &u64| EvalOutcome::<u64> {
            value: Err(EvalFault::Deadline),
            minutes: 120.0,
        };
        let config = PoolConfig { timeout_minutes: Some(120.0), ..PoolConfig::default() };
        let (records, report) = run_batch_supervised(
            &inputs,
            eval,
            |_, _| 120.0,
            &config,
            &FaultInjector::none(),
            |_, _| {},
        );
        assert_eq!(records[0].value, Err(TaskError::Timeout { limit_minutes: 120.0 }));
        assert_eq!(records[0].minutes, 120.0);
        assert_eq!(report.timeout_tasks, 1);
    }

    #[test]
    fn worker_deaths_trigger_reassignment_without_nannies() {
        let inputs: Vec<u64> = (0..30).collect();
        let config = PoolConfig { n_workers: 8, nanny: false, max_attempts: 30, ..PoolConfig::default() };
        let faults = FaultInjector::new(0.10, 42);
        let (records, report) = run_batch(&inputs, quick_eval(5.0), &config, &faults);
        // With 10 % per-task deaths over 30 tasks, some deaths are certain
        // under this seed.
        assert!(report.worker_deaths > 0, "seed produced no deaths");
        // Lost node time from those deaths is now charged, not dropped.
        assert!(report.lost_minutes > 0.0, "deaths must charge partial minutes");
        // Every task still completes as long as a worker survives.
        let survivors = 8 - report.worker_deaths.min(7);
        if survivors > 0 {
            assert!(records.iter().all(|r| r.value.is_ok()));
            assert!(records.iter().any(|r| r.attempts > 1), "no task was retried");
        }
    }

    #[test]
    fn nannies_restart_workers() {
        let inputs: Vec<u64> = (0..40).collect();
        let config = PoolConfig { n_workers: 2, nanny: true, max_attempts: 50, ..PoolConfig::default() };
        let faults = FaultInjector::new(0.2, 7);
        let (records, report) = run_batch(&inputs, quick_eval(1.0), &config, &faults);
        assert!(report.worker_deaths > 0);
        // With nannies, workers always come back, so everything finishes.
        assert!(records.iter().all(|r| r.value.is_ok()));
    }

    #[test]
    fn exhausted_attempts_fail_the_task_and_charge_lost_minutes() {
        let inputs = vec![0u64];
        let config = PoolConfig {
            n_workers: 1,
            nanny: true,
            max_attempts: 2,
            supervisor: SupervisorConfig { quarantine_deaths: 0, ..SupervisorConfig::default() },
            ..PoolConfig::default()
        };
        // Certain-death injector: the task can never complete.
        let faults = FaultInjector::new(0.999, 3);
        let (records, report) = run_batch(&inputs, quick_eval(1.0), &config, &faults);
        assert_eq!(records[0].value, Err(TaskError::WorkerFailed));
        assert_eq!(records[0].attempts, 2);
        assert_eq!(report.worker_deaths, 2);
        assert_eq!(report.exhausted_tasks, 1);
        // The two dead attempts burned partial minutes of the 120-minute
        // estimate — the record and the makespan must reflect that loss.
        assert!(records[0].minutes > 0.0, "dead attempts must charge partial minutes");
        assert!((records[0].minutes - report.lost_minutes).abs() < 1e-12);
        assert!((report.makespan_minutes - report.lost_minutes).abs() < 1e-12);
        // Two death rolls → one retried task, one retry at base backoff.
        assert_eq!(report.retried_tasks, 1);
        assert!((report.backoff_minutes - 1.0).abs() < 1e-12, "one retry at base backoff");
    }

    #[test]
    fn panicking_eval_is_a_worker_death_not_a_hang() {
        // Regression: without catch_unwind the panicked task never reported
        // back and the driver spun on recv_timeout forever.
        let inputs = vec![0u64, 1, 2];
        let eval = |task: usize, &x: &u64| {
            if task == 1 {
                panic!("evaluation blew up");
            }
            EvalOutcome { value: Ok::<u64, EvalFault>(x * 2), minutes: 5.0 }
        };
        let config = PoolConfig { n_workers: 2, nanny: true, max_attempts: 2, ..PoolConfig::default() };
        let (records, report) = run_batch(&inputs, eval, &config, &FaultInjector::none());
        assert!(records[0].value.is_ok());
        assert!(records[2].value.is_ok());
        // The panicking task dies on every attempt and exhausts retries.
        assert_eq!(records[1].value, Err(TaskError::WorkerFailed));
        assert_eq!(report.worker_deaths, 2);
        // A panic gives no progress information: full estimate written off.
        assert_eq!(records[1].minutes, 240.0);
    }

    #[test]
    fn panicking_eval_without_nanny_still_terminates() {
        let inputs = vec![0u64];
        let eval = |_: usize, _: &u64| -> EvalOutcome<u64> { panic!("boom") };
        let config = PoolConfig { n_workers: 1, nanny: false, max_attempts: 3, ..PoolConfig::default() };
        let (records, report) = run_batch(&inputs, eval, &config, &FaultInjector::none());
        assert_eq!(records[0].value, Err(TaskError::WorkerFailed));
        assert_eq!(report.worker_deaths, 1);
    }

    #[test]
    fn repeated_deaths_quarantine_a_worker_slot() {
        let inputs = vec![0u64];
        let config = PoolConfig {
            n_workers: 2,
            nanny: true,
            max_attempts: 3,
            supervisor: SupervisorConfig { quarantine_deaths: 1, ..SupervisorConfig::default() },
            ..PoolConfig::default()
        };
        let faults = FaultInjector::new(0.999, 3);
        let (records, report) = run_batch(&inputs, quick_eval(1.0), &config, &faults);
        assert_eq!(records[0].value, Err(TaskError::WorkerFailed));
        assert_eq!(report.worker_deaths, 3);
        // Exactly one slot retires: whichever worker absorbed the first
        // death quarantines, and the survivor is never retired (it is the
        // last slot alive).
        assert_eq!(report.quarantined_workers, 1);
    }

    #[test]
    fn stragglers_get_speculative_twins() {
        // One 100-minute straggler among 10-minute tasks: the 0.75-quantile
        // baseline is 10, threshold 15, so only task 0 is speculated.
        let estimates = [100.0, 10.0, 10.0, 10.0, 10.0];
        let inputs: Vec<u64> = (0..5).collect();
        let eval = move |ctx: &TaskCtx<'_>, &x: &u64| EvalOutcome {
            value: Ok::<u64, EvalFault>(x * 2),
            minutes: estimates[ctx.task],
        };
        let config = PoolConfig {
            n_workers: 4,
            supervisor: SupervisorConfig { speculate: true, ..SupervisorConfig::default() },
            ..PoolConfig::default()
        };
        let (records, report) = run_batch_supervised(
            &inputs,
            eval,
            |task, _| estimates[task],
            &config,
            &FaultInjector::none(),
            |_, _| {},
        );
        assert_eq!(report.speculated_tasks, 1);
        assert_eq!(report.speculative_deaths, 0);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(*r.value.as_ref().unwrap(), (i as u64) * 2, "twin and primary agree");
        }
        // Whichever copy won, exactly one result per task is charged.
        let charged: f64 = records.iter().map(|r| r.minutes).sum();
        assert!((charged - 140.0).abs() < 1e-9);
    }

    #[test]
    fn speculation_decisions_are_deterministic_under_faults() {
        // Same batch twice: the deterministic report fields must agree
        // bit-for-bit even with faults, twins, retries, and backoff live.
        // Sorted estimates put the 0.75-quantile baseline at 12 (threshold
        // 18), so the 80- and 95-minute tasks are the stragglers.
        let estimates = [80.0, 10.0, 12.0, 9.0, 11.0, 95.0, 10.0, 9.0];
        let inputs: Vec<u64> = (0..8).collect();
        let run = || {
            let eval = move |ctx: &TaskCtx<'_>, &x: &u64| EvalOutcome {
                value: Ok::<u64, EvalFault>(x + 1),
                minutes: estimates[ctx.task],
            };
            let config = PoolConfig {
                n_workers: 3,
                nanny: true,
                max_attempts: 3,
                supervisor: SupervisorConfig {
                    speculate: true,
                    quarantine_deaths: 0,
                    ..SupervisorConfig::default()
                },
                ..PoolConfig::default()
            };
            let faults = FaultInjector::new(0.3, 1234);
            faults.set_batch_key(5);
            run_batch_supervised(
                &inputs,
                eval,
                |task, _| estimates[task],
                &config,
                &faults,
                |_, _| {},
            )
        };
        let (rec_a, rep_a) = run();
        let (rec_b, rep_b) = run();
        for (a, b) in rec_a.iter().zip(&rec_b) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.minutes, b.minutes);
        }
        assert_eq!(rep_a.worker_deaths, rep_b.worker_deaths);
        assert_eq!(rep_a.retried_tasks, rep_b.retried_tasks);
        assert_eq!(rep_a.speculated_tasks, rep_b.speculated_tasks);
        assert_eq!(rep_a.speculative_deaths, rep_b.speculative_deaths);
        assert_eq!(rep_a.lost_minutes, rep_b.lost_minutes);
        assert_eq!(rep_a.backoff_minutes, rep_b.backoff_minutes);
        assert_eq!(rep_a.makespan_minutes, rep_b.makespan_minutes);
        assert_eq!(rep_a.wall_minutes, rep_b.wall_minutes);
        assert_eq!(rep_a.busy_minutes, rep_b.busy_minutes);
        assert_eq!(rep_a.lost_death_minutes, rep_b.lost_death_minutes);
        assert_eq!(rep_a.lost_speculation_minutes, rep_b.lost_speculation_minutes);
        assert_eq!(rep_a.backoff_slot_minutes, rep_b.backoff_slot_minutes);
        assert_eq!(rep_a.idle_minutes, rep_b.idle_minutes);
    }

    #[test]
    fn heartbeats_reach_the_supervision_loop() {
        let inputs: Vec<u64> = (0..4).collect();
        let eval = |ctx: &TaskCtx<'_>, &x: &u64| {
            ctx.heartbeat(1.0, 10.0);
            ctx.heartbeat(5.0, 10.0);
            EvalOutcome { value: Ok::<u64, EvalFault>(x), minutes: 10.0 }
        };
        let (_, report) = run_batch_supervised(
            &inputs,
            eval,
            |_, _| 10.0,
            &PoolConfig::default(),
            &FaultInjector::none(),
            |_, _| {},
        );
        // No speculation: every task beats exactly twice, and per-producer
        // channel FIFO guarantees each beat precedes its task's Done.
        assert_eq!(report.heartbeats, 8);
    }

    #[test]
    fn cancel_token_latches_for_every_clone() {
        let token = CancelToken::new();
        let twin = token.clone();
        assert!(!twin.is_cancelled());
        token.cancel();
        assert!(twin.is_cancelled());
        // A detached context has no token and is never cancelled.
        let ctx = TaskCtx::detached(3);
        assert!(!ctx.is_cancelled());
        assert_eq!(ctx.task, 3);
        ctx.heartbeat(1.0, 2.0); // no-op without a scheduler
    }

    #[test]
    fn makespan_reflects_load_balance() {
        // 5 tasks of 10 min on 5 workers → 10 min; on 1 worker → 50 min.
        let inputs: Vec<u64> = (0..5).collect();
        let wide = PoolConfig { n_workers: 5, ..PoolConfig::default() };
        let narrow = PoolConfig { n_workers: 1, ..PoolConfig::default() };
        let (_, r_wide) = run_batch(&inputs, quick_eval(10.0), &wide, &FaultInjector::none());
        let (_, r_narrow) = run_batch(&inputs, quick_eval(10.0), &narrow, &FaultInjector::none());
        assert!((r_wide.makespan_minutes - 10.0).abs() < 1e-9);
        assert!((r_narrow.makespan_minutes - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_fine() {
        let inputs: Vec<u64> = vec![];
        let (records, report) =
            run_batch(&inputs, quick_eval(1.0), &PoolConfig::default(), &FaultInjector::none());
        assert!(records.is_empty());
        assert_eq!(report.makespan_minutes, 0.0);
    }
}
