//! A Dask-like client/scheduler/worker evaluation pool.
//!
//! Mirrors the paper's §2.2.5 deployment: a scheduler fans evaluation tasks
//! out to one worker per compute node, workers may die mid-task (hardware
//! faults), "nannies" may restart dead workers or — as the paper found
//! preferable — be disabled so the scheduler simply reassigns the task to a
//! surviving worker. Tasks also carry a *simulated* runtime (minutes) from
//! the cost model, and the scheduler enforces the paper's 2-hour per-task
//! timeout against that simulated clock.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a task produced no value.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskError {
    /// The simulated runtime exceeded the per-task limit (the paper's
    /// 2-hour `subprocess` timeout → `TimeoutError`).
    Timeout {
        /// The enforced limit in minutes.
        limit_minutes: f64,
    },
    /// The worker hosting the task died (hardware fault); attempts were
    /// exhausted or no workers survived.
    WorkerFailed,
    /// The evaluation itself failed (e.g. diverged training).
    Failed(String),
}

/// Outcome produced by the user's evaluation function.
pub struct EvalOutcome<T> {
    /// The evaluation result, or a failure description.
    pub value: Result<T, String>,
    /// Simulated runtime in minutes.
    pub minutes: f64,
}

/// Final per-task record returned by [`run_batch`].
#[derive(Clone, Debug)]
pub struct TaskRecord<T> {
    /// Value or the error that ended the task.
    pub value: Result<T, TaskError>,
    /// Simulated minutes charged for the final attempt (timeouts charge the
    /// full limit, as the real job would have been killed there).
    pub minutes: f64,
    /// Worker that produced the final outcome.
    pub worker: usize,
    /// Number of attempts (1 = no retries).
    pub attempts: u32,
}

/// Pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of workers (the paper: one per allocated node, 100).
    pub n_workers: usize,
    /// Per-task simulated-runtime limit in minutes (the paper: 120).
    pub timeout_minutes: Option<f64>,
    /// Restart dead workers (Dask nannies). The paper disables them.
    pub nanny: bool,
    /// Maximum attempts per task before giving up.
    pub max_attempts: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { n_workers: 4, timeout_minutes: Some(120.0), nanny: false, max_attempts: 3 }
    }
}

/// Stochastic worker-death injection. Each task execution kills its worker
/// with probability `death_probability` (before completing the task).
pub struct FaultInjector {
    death_probability: f64,
    rng: Mutex<StdRng>,
}

impl FaultInjector {
    /// A fault plan; `death_probability` of 0 disables faults.
    pub fn new(death_probability: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&death_probability));
        FaultInjector { death_probability, rng: Mutex::new(StdRng::seed_from_u64(seed)) }
    }

    /// No faults.
    pub fn none() -> Self {
        FaultInjector::new(0.0, 0)
    }

    fn task_kills_worker(&self) -> bool {
        if self.death_probability == 0.0 {
            return false;
        }
        self.rng.lock().random_range(0.0..1.0) < self.death_probability
    }
}

/// Per-run statistics.
#[derive(Clone, Debug, Default)]
pub struct PoolReport {
    /// Simulated makespan: the longest per-worker busy time in minutes
    /// (what the batch job's wall clock would have shown).
    pub makespan_minutes: f64,
    /// Simulated busy minutes per worker slot.
    pub per_worker_minutes: Vec<f64>,
    /// Worker deaths observed.
    pub worker_deaths: usize,
    /// Tasks that were retried at least once.
    pub retried_tasks: usize,
}

enum Message<T> {
    Done { task: usize, outcome: EvalOutcome<T>, worker: usize, minutes_charged: f64 },
    Died { task: usize, worker: usize },
}

/// Evaluate every input in parallel on a simulated worker pool.
///
/// `eval` receives `(task_index, &input)` and returns a value plus its
/// simulated runtime. Panics inside `eval` are treated as worker deaths.
pub fn run_batch<I, T, F>(
    inputs: &[I],
    eval: F,
    config: &PoolConfig,
    faults: &FaultInjector,
) -> (Vec<TaskRecord<T>>, PoolReport)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> EvalOutcome<T> + Sync,
{
    assert!(config.n_workers > 0, "pool needs at least one worker");
    assert!(config.max_attempts > 0, "max_attempts must be positive");
    let n = inputs.len();
    let mut records: Vec<Option<TaskRecord<T>>> = (0..n).map(|_| None).collect();
    if n == 0 {
        return (Vec::new(), PoolReport::default());
    }

    let (task_tx, task_rx) = channel::unbounded::<usize>();
    let (msg_tx, msg_rx) = channel::unbounded::<Message<T>>();
    for i in 0..n {
        task_tx.send(i).expect("queue open");
    }

    let mut attempts = vec![0u32; n];
    let alive = AtomicUsize::new(config.n_workers);
    let mut report = PoolReport::default();

    std::thread::scope(|scope| {
        for worker in 0..config.n_workers {
            let task_rx = task_rx.clone();
            let msg_tx = msg_tx.clone();
            let eval = &eval;
            let faults = &faults;
            let alive = &alive;
            let timeout = config.timeout_minutes;
            let nanny = config.nanny;
            scope.spawn(move || {
                while let Ok(task) = task_rx.recv() {
                    if faults.task_kills_worker() {
                        // The worker dies mid-task. With a nanny it is
                        // restarted (continue); without, the thread exits.
                        let _ = msg_tx.send(Message::Died { task, worker });
                        if nanny {
                            continue;
                        }
                        alive.fetch_sub(1, Ordering::SeqCst);
                        return;
                    }
                    let outcome = eval(task, &inputs[task]);
                    // Timeouts charge the limit: the real job would have
                    // been killed at the wall.
                    let minutes_charged = match timeout {
                        Some(limit) if outcome.minutes > limit => limit,
                        _ => outcome.minutes,
                    };
                    let _ = msg_tx.send(Message::Done { task, outcome, worker, minutes_charged });
                }
            });
        }
        drop(msg_tx);

        let mut completed = 0usize;
        while completed < n {
            // If every worker died with work outstanding, fail the rest.
            if alive.load(Ordering::SeqCst) == 0 {
                for (task, slot) in records.iter_mut().enumerate() {
                    if slot.is_none() {
                        *slot = Some(TaskRecord {
                            value: Err(TaskError::WorkerFailed),
                            minutes: 0.0,
                            worker: usize::MAX,
                            attempts: attempts[task],
                        });
                    }
                }
                break;
            }
            let msg = match msg_rx.recv_timeout(std::time::Duration::from_millis(50)) {
                Ok(m) => m,
                Err(channel::RecvTimeoutError::Timeout) => continue,
                Err(channel::RecvTimeoutError::Disconnected) => break,
            };
            match msg {
                Message::Done { task, outcome, worker, minutes_charged } => {
                    attempts[task] += 1;
                    let timed_out = matches!(config.timeout_minutes, Some(limit) if outcome.minutes > limit);
                    let value = if timed_out {
                        Err(TaskError::Timeout {
                            limit_minutes: config.timeout_minutes.unwrap(),
                        })
                    } else {
                        outcome.value.map_err(TaskError::Failed)
                    };
                    records[task] = Some(TaskRecord {
                        value,
                        minutes: minutes_charged,
                        worker,
                        attempts: attempts[task],
                    });
                    completed += 1;
                }
                Message::Died { task, worker } => {
                    report.worker_deaths += 1;
                    attempts[task] += 1;
                    let _ = worker;
                    if attempts[task] < config.max_attempts {
                        report.retried_tasks += 1;
                        let _ = task_tx.send(task);
                    } else {
                        records[task] = Some(TaskRecord {
                            value: Err(TaskError::WorkerFailed),
                            minutes: 0.0,
                            worker,
                            attempts: attempts[task],
                        });
                        completed += 1;
                    }
                }
            }
        }
        drop(task_tx); // release workers blocked on recv
    });

    let results: Vec<TaskRecord<T>> = records
        .into_iter()
        .map(|r| r.expect("scheduler completed every task"))
        .collect();

    // Physical threads race for tasks in real time (they finish almost
    // instantly), so the *simulated* wall clock is reconstructed by list-
    // scheduling the charged minutes onto the worker slots: each task goes
    // to the simulated-least-loaded worker, exactly how a Dask worker pool
    // with one task per node drains a queue.
    let mut per_worker = vec![0.0f64; config.n_workers];
    for record in &results {
        let (slot, _) = per_worker
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("at least one worker");
        per_worker[slot] += record.minutes;
    }
    report.makespan_minutes = per_worker.iter().copied().fold(0.0, f64::max);
    report.per_worker_minutes = per_worker;
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_eval(minutes: f64) -> impl Fn(usize, &u64) -> EvalOutcome<u64> + Sync {
        move |_, &x| EvalOutcome { value: Ok(x * 2), minutes }
    }

    #[test]
    fn all_tasks_complete_without_faults() {
        let inputs: Vec<u64> = (0..20).collect();
        let config = PoolConfig { n_workers: 4, ..PoolConfig::default() };
        let (records, report) = run_batch(&inputs, quick_eval(10.0), &config, &FaultInjector::none());
        assert_eq!(records.len(), 20);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(*r.value.as_ref().unwrap(), (i as u64) * 2);
            assert_eq!(r.attempts, 1);
            assert_eq!(r.minutes, 10.0);
        }
        assert_eq!(report.worker_deaths, 0);
        // 20 ten-minute tasks over 4 workers → 50 simulated minutes.
        assert!((report.makespan_minutes - 50.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_is_enforced_on_simulated_minutes() {
        let inputs = vec![1u64, 2, 3];
        let eval = |task: usize, &x: &u64| EvalOutcome {
            value: Ok(x),
            minutes: if task == 1 { 150.0 } else { 60.0 },
        };
        let config = PoolConfig { n_workers: 2, timeout_minutes: Some(120.0), ..PoolConfig::default() };
        let (records, _) = run_batch(&inputs, eval, &config, &FaultInjector::none());
        assert!(records[0].value.is_ok());
        assert_eq!(
            records[1].value,
            Err(TaskError::Timeout { limit_minutes: 120.0 })
        );
        // The killed job is charged the full limit, not its would-be time.
        assert_eq!(records[1].minutes, 120.0);
        assert!(records[2].value.is_ok());
    }

    #[test]
    fn evaluation_failures_are_reported() {
        let inputs = vec![0u64, 1];
        let eval = |task: usize, _: &u64| EvalOutcome {
            value: if task == 0 { Err("diverged".to_string()) } else { Ok(7u64) },
            minutes: 5.0,
        };
        let (records, _) =
            run_batch(&inputs, eval, &PoolConfig::default(), &FaultInjector::none());
        assert_eq!(records[0].value, Err(TaskError::Failed("diverged".into())));
        assert_eq!(*records[1].value.as_ref().unwrap(), 7);
    }

    #[test]
    fn worker_deaths_trigger_reassignment_without_nannies() {
        let inputs: Vec<u64> = (0..30).collect();
        let config = PoolConfig { n_workers: 8, nanny: false, max_attempts: 30, ..PoolConfig::default() };
        let faults = FaultInjector::new(0.10, 42);
        let (records, report) = run_batch(&inputs, quick_eval(5.0), &config, &faults);
        // With 10 % per-task deaths over 30 tasks, some deaths are certain
        // under this seed.
        assert!(report.worker_deaths > 0, "seed produced no deaths");
        // Every task still completes as long as a worker survives.
        let survivors = 8 - report.worker_deaths.min(7);
        if survivors > 0 {
            assert!(records.iter().all(|r| r.value.is_ok()));
            assert!(records.iter().any(|r| r.attempts > 1), "no task was retried");
        }
    }

    #[test]
    fn nannies_restart_workers() {
        let inputs: Vec<u64> = (0..40).collect();
        let config = PoolConfig { n_workers: 2, nanny: true, max_attempts: 50, ..PoolConfig::default() };
        let faults = FaultInjector::new(0.2, 7);
        let (records, report) = run_batch(&inputs, quick_eval(1.0), &config, &faults);
        assert!(report.worker_deaths > 0);
        // With nannies, workers always come back, so everything finishes.
        assert!(records.iter().all(|r| r.value.is_ok()));
    }

    #[test]
    fn exhausted_attempts_fail_the_task() {
        let inputs = vec![0u64];
        let config = PoolConfig { n_workers: 1, nanny: true, max_attempts: 2, ..PoolConfig::default() };
        // Certain-death injector: the task can never complete.
        let faults = FaultInjector::new(0.999, 3);
        let (records, report) = run_batch(&inputs, quick_eval(1.0), &config, &faults);
        assert_eq!(records[0].value, Err(TaskError::WorkerFailed));
        assert_eq!(records[0].attempts, 2);
        assert_eq!(report.worker_deaths, 2);
    }

    #[test]
    fn makespan_reflects_load_balance() {
        // 5 tasks of 10 min on 5 workers → 10 min; on 1 worker → 50 min.
        let inputs: Vec<u64> = (0..5).collect();
        let wide = PoolConfig { n_workers: 5, ..PoolConfig::default() };
        let narrow = PoolConfig { n_workers: 1, ..PoolConfig::default() };
        let (_, r_wide) = run_batch(&inputs, quick_eval(10.0), &wide, &FaultInjector::none());
        let (_, r_narrow) = run_batch(&inputs, quick_eval(10.0), &narrow, &FaultInjector::none());
        assert!((r_wide.makespan_minutes - 10.0).abs() < 1e-9);
        assert!((r_narrow.makespan_minutes - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_fine() {
        let inputs: Vec<u64> = vec![];
        let (records, report) =
            run_batch(&inputs, quick_eval(1.0), &PoolConfig::default(), &FaultInjector::none());
        assert!(records.is_empty());
        assert_eq!(report.makespan_minutes, 0.0);
    }
}
