//! # dphpo-hpc
//!
//! A distributed-evaluation simulator standing in for the paper's Summit +
//! Dask deployment (§2.2.5): a scheduler fans evaluation tasks out to one
//! worker per simulated compute node, enforces the 2-hour per-task timeout
//! against a calibrated *simulated* clock, injects worker deaths (hardware
//! faults), and — with Dask nannies disabled, as the paper recommends —
//! reassigns orphaned tasks to surviving workers.
//!
//! Workers are real threads, so evaluations genuinely run in parallel; only
//! the *runtime accounting* is simulated (via [`cost::CostModel`],
//! calibrated to the paper's "under 2 hours per 40k-step training, ≈65×
//! GPU-vs-CPU speedup" figures).
//!
//! ```
//! use dphpo_hpc::scheduler::{run_batch, EvalOutcome, FaultInjector, PoolConfig};
//!
//! let inputs = vec![1u64, 2, 3];
//! let (records, report) = run_batch(
//!     &inputs,
//!     |_, &x| EvalOutcome { value: Ok(x * x), minutes: 70.0 },
//!     &PoolConfig { n_workers: 3, ..PoolConfig::default() },
//!     &FaultInjector::none(),
//! );
//! assert_eq!(*records[2].value.as_ref().unwrap(), 9);
//! assert_eq!(report.makespan_minutes, 70.0);
//! ```
//!
//! Steady-state campaigns use [`stream`] instead of the batch entry points:
//! same supervision and accounting, no generation barrier.

#![warn(missing_docs)]

pub mod cluster;
pub mod cost;
pub mod faultplan;
pub mod scheduler;
pub mod stream;
pub mod trace;

pub use cluster::{Allocation, NodeSpec};
pub use cost::{paper_job, CostModel, TrainingJob};
pub use faultplan::{
    FaultPlan, IoFault, IoSite, JOURNAL_APPEND_SITE, STATUS_FSYNC_SITE,
};
pub use scheduler::{
    run_batch, run_batch_observed, run_batch_supervised, run_batch_with_hooks, CancelToken,
    EvalFault, EvalOutcome, FaultInjector, PoolConfig, PoolReport, SupervisorConfig, TaskCtx,
    TaskError, TaskRecord, SPECULATIVE_ATTEMPT,
};
pub use stream::{run_stream_window, StreamSlots, StreamSlotsState, StreamTaskReport};
pub use trace::{Span, Timeline};
