//! Deterministic fault-injection harness: a seeded, schedulable plan of
//! I/O faults and driver kills, in the spirit of deterministic simulation
//! testing.
//!
//! A [`FaultPlan`] decides, for every *named site* (e.g. `journal.append`,
//! `status.fsync`) and every *occurrence index* at that site, whether a
//! fault fires and which kind — as a **pure function of
//! `(chaos_seed, site, occurrence)`**. Two processes holding plans with the
//! same seed make identical decisions in any order, at any time, on any
//! thread; replaying a campaign under the same plan reproduces the same
//! faults at the same places. Specific faults can additionally be scripted
//! at exact `(site, occurrence)` coordinates, which is how the corruption
//! matrix pins a single fsync failure to a single status rewrite.
//!
//! Worker deaths keep their historical hash domain
//! (`(seed, batch key, task, attempt)`, see [`FaultInjector`]) so every
//! journal written before this module existed replays bit-identically; the
//! pure hash functions behind those decisions live here
//! ([`worker_death_unit`], [`death_fraction_unit`]) and the injector
//! delegates to them.
//!
//! [`FaultInjector`]: crate::scheduler::FaultInjector

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// SplitMix64 finalizer: the hash behind every deterministic fault
/// decision (worker deaths, death fractions, and I/O faults alike).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Salt for the worker-death decision domain (historical value — changing
/// it would invalidate every journal ever written).
const DEATH_SALT: u64 = 0x005e_ed0f_da7a;

/// Salt for the death-fraction domain, independent of the decision itself.
const FRACTION_SALT: u64 = 0xdead_c057;

fn unit_from(z: u64) -> f64 {
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The uniform `[0, 1)` draw behind "does this attempt kill its worker?":
/// a pure hash of `(seed, batch_key, task, attempt)`. The caller compares
/// it against the configured death probability.
pub fn worker_death_unit(seed: u64, batch_key: u64, task: usize, attempt: u32) -> f64 {
    let mut z = splitmix64(seed ^ DEATH_SALT.wrapping_mul(batch_key));
    z = splitmix64(z ^ (task as u64));
    z = splitmix64(z ^ ((attempt as u64) << 32));
    unit_from(z)
}

/// How far through its estimated runtime a dying attempt got, as a pure
/// hash of `(seed, batch_key, task, attempt)` under a different salt than
/// the death decision, so the two are independent.
pub fn death_fraction_unit(seed: u64, batch_key: u64, task: usize, attempt: u32) -> f64 {
    let mut z = splitmix64(seed ^ FRACTION_SALT.wrapping_mul(batch_key));
    z = splitmix64(z ^ (task as u64));
    z = splitmix64(z ^ ((attempt as u64) << 32));
    unit_from(z)
}

/// An injectable I/O failure mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// The write was cut short: a partial record reached the file (a torn
    /// frame), then the operation failed.
    ShortWrite,
    /// The operation failed outright; nothing reached the file.
    IoError,
    /// The filesystem is full; nothing reached the file.
    DiskFull,
    /// The data was written but the durability barrier (fsync) failed —
    /// the bytes may or may not survive a power loss.
    FsyncFail,
}

impl fmt::Display for IoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            IoFault::ShortWrite => "short-write",
            IoFault::IoError => "io-error",
            IoFault::DiskFull => "disk-full",
            IoFault::FsyncFail => "fsync-fail",
        };
        write!(f, "{name}")
    }
}

/// Site name for write-ahead journal appends.
pub const JOURNAL_APPEND_SITE: &str = "journal.append";

/// Site name for the atomic `campaign_status.json` rewrite (its fsync +
/// rename barrier).
pub const STATUS_FSYNC_SITE: &str = "status.fsync";

/// A seeded, deterministic schedule of faults across named sites.
///
/// Every decision is a pure function of `(chaos_seed, site, occurrence)`;
/// the plan holds no mutable state, so it can be shared freely across
/// threads and consulted in any order.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    chaos_seed: u64,
    io_rate: f64,
    scripted: BTreeMap<(String, u64), IoFault>,
    kill_driver_at: Option<u64>,
}

impl FaultPlan {
    /// A plan seeded with `chaos_seed`: no faults until a rate or script is
    /// added.
    pub fn new(chaos_seed: u64) -> Self {
        FaultPlan { chaos_seed, ..FaultPlan::default() }
    }

    /// The seed every hashed decision is keyed off.
    pub fn chaos_seed(&self) -> u64 {
        self.chaos_seed
    }

    /// Inject a hashed I/O fault at each site occurrence with probability
    /// `rate` (`[0, 1)`).
    pub fn io_rate(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "io fault rate must be in [0, 1)");
        self.io_rate = rate;
        self
    }

    /// Script one exact fault: `fault` fires at the `occurrence`-th visit
    /// of `site` (overriding the hashed decision there).
    pub fn script(mut self, site: &str, occurrence: u64, fault: IoFault) -> Self {
        self.scripted.insert((site.to_string(), occurrence), fault);
        self
    }

    /// Kill the campaign driver after `after_tasks` completed-task
    /// notifications (the crash the write-ahead journal protects against).
    pub fn kill_driver_at(mut self, after_tasks: u64) -> Self {
        self.kill_driver_at = Some(after_tasks);
        self
    }

    /// The scheduled driver-kill point, if any.
    pub fn driver_kill(&self) -> Option<u64> {
        self.kill_driver_at
    }

    /// The plan's decision for the `occurrence`-th visit of `site` — a pure
    /// function of `(chaos_seed, site, occurrence)`. Scripted faults win;
    /// otherwise a hashed draw fires with probability `io_rate`, and the
    /// fault kind comes from independent bits of the same hash.
    pub fn decide(&self, site: &str, occurrence: u64) -> Option<IoFault> {
        if let Some(&fault) = self.scripted.get(&(site.to_string(), occurrence)) {
            return Some(fault);
        }
        if self.io_rate <= 0.0 {
            return None;
        }
        let mut z = splitmix64(self.chaos_seed ^ site_hash(site));
        z = splitmix64(z ^ occurrence);
        if unit_from(z) >= self.io_rate {
            return None;
        }
        Some(match z & 3 {
            0 => IoFault::ShortWrite,
            1 => IoFault::IoError,
            2 => IoFault::DiskFull,
            _ => IoFault::FsyncFail,
        })
    }
}

/// Stable hash of a site name (fold of SplitMix64 over its bytes).
fn site_hash(site: &str) -> u64 {
    site.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| splitmix64(h ^ b as u64))
}

/// One site's handle on a [`FaultPlan`]: counts occurrences locally and
/// asks the plan for a decision at each one. The counter is the *only*
/// state — the decisions themselves stay pure, so a site that replays the
/// same number of operations replays the same faults.
pub struct IoSite {
    plan: Option<Arc<FaultPlan>>,
    site: &'static str,
    counter: AtomicU64,
}

impl IoSite {
    /// A site with no plan attached: never faults.
    pub fn disabled(site: &'static str) -> Self {
        IoSite { plan: None, site, counter: AtomicU64::new(0) }
    }

    /// A site consulting `plan` at each occurrence.
    pub fn new(plan: Arc<FaultPlan>, site: &'static str) -> Self {
        IoSite { plan: Some(plan), site, counter: AtomicU64::new(0) }
    }

    /// The site's name.
    pub fn site(&self) -> &'static str {
        self.site
    }

    /// Occurrences consumed so far.
    pub fn occurrences(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Consume the next occurrence index and return the plan's decision
    /// for it (always `None` when disabled).
    pub fn next(&self) -> Option<IoFault> {
        let occurrence = self.counter.fetch_add(1, Ordering::Relaxed);
        self.plan.as_ref().and_then(|p| p.decide(self.site, occurrence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FaultInjector;

    #[test]
    fn decisions_are_pure_functions_of_seed_site_and_occurrence() {
        let a = FaultPlan::new(99).io_rate(0.3);
        let b = FaultPlan::new(99).io_rate(0.3);
        for occurrence in 0..500 {
            for site in [JOURNAL_APPEND_SITE, STATUS_FSYNC_SITE] {
                assert_eq!(a.decide(site, occurrence), b.decide(site, occurrence));
                // Consulting in a different order changes nothing.
                assert_eq!(a.decide(site, occurrence), a.decide(site, occurrence));
            }
        }
        // Sites are independent domains: the same occurrence index draws
        // differently somewhere across 500 tries.
        assert!((0..500).any(|i| {
            a.decide(JOURNAL_APPEND_SITE, i) != a.decide(STATUS_FSYNC_SITE, i)
        }));
        // And a different seed reshuffles the schedule.
        let c = FaultPlan::new(100).io_rate(0.3);
        assert!((0..500)
            .any(|i| a.decide(JOURNAL_APPEND_SITE, i) != c.decide(JOURNAL_APPEND_SITE, i)));
    }

    #[test]
    fn hashed_rate_produces_every_fault_kind_at_roughly_the_rate() {
        let plan = FaultPlan::new(7).io_rate(0.25);
        let mut kinds = std::collections::BTreeSet::new();
        let mut fired = 0usize;
        for occurrence in 0..4000 {
            if let Some(fault) = plan.decide(JOURNAL_APPEND_SITE, occurrence) {
                fired += 1;
                kinds.insert(format!("{fault}"));
            }
        }
        assert_eq!(kinds.len(), 4, "all four fault kinds should appear: {kinds:?}");
        let rate = fired as f64 / 4000.0;
        assert!((0.15..0.35).contains(&rate), "observed rate {rate} far from 0.25");
    }

    #[test]
    fn scripted_faults_override_the_hash_exactly_once() {
        let plan = FaultPlan::new(1).script(STATUS_FSYNC_SITE, 3, IoFault::FsyncFail);
        assert_eq!(plan.decide(STATUS_FSYNC_SITE, 3), Some(IoFault::FsyncFail));
        for occurrence in (0..10).filter(|&o| o != 3) {
            assert_eq!(plan.decide(STATUS_FSYNC_SITE, occurrence), None);
        }
        assert_eq!(plan.decide(JOURNAL_APPEND_SITE, 3), None);
    }

    #[test]
    fn io_site_counts_occurrences_and_disabled_never_faults() {
        let plan = Arc::new(FaultPlan::new(5).script(JOURNAL_APPEND_SITE, 1, IoFault::IoError));
        let site = IoSite::new(Arc::clone(&plan), JOURNAL_APPEND_SITE);
        assert_eq!(site.next(), None);
        assert_eq!(site.next(), Some(IoFault::IoError));
        assert_eq!(site.occurrences(), 2);
        let off = IoSite::disabled(JOURNAL_APPEND_SITE);
        assert!((0..100).all(|_| off.next().is_none()));
    }

    #[test]
    fn worker_death_hashes_are_bit_compatible_with_the_injector() {
        // The injector must keep replaying journals written before this
        // module existed, so its decisions and the pure functions here must
        // agree bit for bit.
        let (p, seed, batch_key) = (0.37, 0xabcdef, 5u64);
        let faults = FaultInjector::new(p, seed);
        faults.set_batch_key(batch_key);
        let mut deaths = 0usize;
        for task in 0..64 {
            for attempt in 1..=3u32 {
                let unit = worker_death_unit(seed, batch_key, task, attempt);
                assert_eq!(faults.task_kills_worker(task, attempt), unit < p);
                deaths += usize::from(unit < p);
                let fraction = death_fraction_unit(seed, batch_key, task, attempt);
                assert!((0.0..1.0).contains(&fraction));
                assert_eq!(faults.death_fraction(task, attempt), fraction);
            }
        }
        assert!(deaths > 0, "a 0.37 death rate over 192 attempts must kill something");
    }
}
