//! Continuous-submission scheduling for steady-state campaigns: the
//! barrier-free counterpart of [`crate::scheduler::run_batch_supervised`].
//!
//! A generational batch pays one synchronisation per generation — the
//! slowest of N trainings gates every worker. A steady-state campaign
//! instead keeps a FIFO of pending submissions and at most one in-flight
//! task per worker slot; whenever a slot's task completes (on the simulated
//! clock) the next pending submission starts there immediately, so the only
//! idle time left is the end-of-run drain.
//!
//! Determinism works exactly as in `run_batch`: worker threads race in real
//! time, but *when* a task completes is decided on the simulated clock —
//! [`StreamSlots`] keeps one monotone cursor per slot and a task's
//! completion time is its slot's cursor plus the minutes its retry chain
//! charged. The resulting arrival order is a pure function of the campaign
//! configuration and the fault plan, never of thread interleaving; the
//! caller (`dphpo-core`'s steady-state driver) journals it as each
//! evaluation's `arrival` index.
//!
//! Supervision carries over from the batch scheduler: per-task deadlines,
//! divergence/cancellation classification, fault-injected worker deaths,
//! and retries with exponential backoff all behave identically, charged to
//! the slot the task occupies. Speculative twins are deliberately absent —
//! they exist to shave the generational barrier's straggler tail, and a
//! steady-state campaign has no barrier to shave.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::scheduler::{
    EvalFault, EvalOutcome, FaultInjector, PoolConfig, PoolReport, TaskCtx, TaskError, TaskRecord,
};

/// Terminal outcome of one stream task, with the charge breakdown the
/// per-slot simulated clock needs (the batch scheduler only reports these
/// in aggregate).
#[derive(Debug)]
pub struct StreamTaskReport<T> {
    /// Terminal record, classified exactly as `run_batch` classifies it.
    /// For an exhausted task ([`TaskError::WorkerFailed`]) `minutes` is the
    /// total lost minutes, mirroring the batch scheduler's convention.
    pub record: TaskRecord<T>,
    /// Simulated minutes burned by dead attempts (fault-plan partial
    /// minutes; a panicking evaluation writes off the full estimate).
    pub lost_minutes: f64,
    /// Retry-backoff minutes inserted before re-attempts
    /// (`base × factor^(retry−1)`, as in the batch scheduler).
    pub backoff_minutes: f64,
    /// Worker deaths this task's retry chain absorbed.
    pub deaths: usize,
}

impl<T> StreamTaskReport<T> {
    /// Compute-minutes this task occupies its slot for (busy or lost —
    /// excluding backoff, which is idle waiting charged separately).
    pub fn charged_minutes(&self) -> f64 {
        if matches!(self.record.value, Err(TaskError::WorkerFailed)) {
            // The exhausted record's minutes *are* the lost minutes.
            self.record.minutes
        } else {
            self.record.minutes + self.lost_minutes
        }
    }
}

/// Run one in-flight window of a steady-state campaign: every task in
/// `tasks` — given as `(task index, slot, input)` — is evaluated in
/// parallel (one thread each; the caller never submits more tasks than
/// worker slots) with full retry supervision, and the reports come back in
/// input order.
///
/// Fault decisions hash `(seed, batch key, task, attempt)` exactly as in
/// the batch scheduler, so a task's retry chain is reproducible in
/// isolation — window composition does not matter, which is what lets a
/// resumed campaign re-execute only the unjournaled tasks of a partially
/// completed window and still charge identical minutes.
pub fn run_stream_window<I, T, F, E>(
    tasks: &[(usize, usize, I)],
    eval: F,
    estimate: E,
    config: &PoolConfig,
    faults: &FaultInjector,
) -> Vec<StreamTaskReport<T>>
where
    I: Sync,
    T: Send,
    F: Fn(&TaskCtx<'_>, &I) -> EvalOutcome<T> + Sync,
    E: Fn(usize, &I) -> f64 + Sync,
{
    assert!(config.max_attempts > 0, "max_attempts must be positive");
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .iter()
            .map(|(task, slot, input)| {
                let eval = &eval;
                let estimate = &estimate;
                scope.spawn(move || run_one(*task, *slot, input, eval, estimate, config, faults))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stream worker panicked")).collect()
    })
}

/// One task's supervised retry chain (runs on its own scoped thread).
fn run_one<I, T, F, E>(
    task: usize,
    slot: usize,
    input: &I,
    eval: &F,
    estimate: &E,
    config: &PoolConfig,
    faults: &FaultInjector,
) -> StreamTaskReport<T>
where
    F: Fn(&TaskCtx<'_>, &I) -> EvalOutcome<T>,
    E: Fn(usize, &I) -> f64,
{
    let sup = config.supervisor;
    let est = estimate(task, input).max(0.0);
    let mut attempt: u32 = 1;
    let mut deaths = 0usize;
    let mut lost = 0.0f64;
    let mut backoff = 0.0f64;
    loop {
        let fault_kill = faults.task_kills_worker(task, attempt);
        let mut outcome = None;
        if !fault_kill {
            let mut ctx = TaskCtx::detached(task);
            ctx.attempt = attempt;
            ctx.deadline_minutes = config.timeout_minutes;
            outcome = catch_unwind(AssertUnwindSafe(|| eval(&ctx, input))).ok();
        }
        let Some(outcome) = outcome else {
            // A fault-injected death burned a deterministic fraction of the
            // estimate; a panicking evaluation writes off all of it —
            // identical to the batch scheduler's death accounting.
            deaths += 1;
            lost += if fault_kill { faults.death_fraction(task, attempt) * est } else { est };
            if attempt >= config.max_attempts {
                return StreamTaskReport {
                    record: TaskRecord {
                        value: Err(TaskError::WorkerFailed),
                        minutes: lost,
                        worker: slot,
                        attempts: attempt,
                    },
                    lost_minutes: lost,
                    backoff_minutes: backoff,
                    deaths,
                };
            }
            backoff += sup.backoff_base_minutes * sup.backoff_factor.powi(attempt as i32 - 1);
            attempt += 1;
            continue;
        };
        let eval_minutes = outcome.minutes;
        let timed_out =
            matches!(config.timeout_minutes, Some(limit) if eval_minutes > limit);
        // Timeouts charge the limit: the real job would have been killed at
        // the wall.
        let minutes_charged = match config.timeout_minutes {
            Some(limit) if eval_minutes > limit => limit,
            _ => eval_minutes,
        };
        let value = if timed_out {
            Err(TaskError::Timeout { limit_minutes: config.timeout_minutes.unwrap() })
        } else {
            outcome.value.map_err(|fault| match fault {
                EvalFault::Failed(reason) => TaskError::Failed(reason),
                EvalFault::Diverged { step, loss } => TaskError::Diverged { step, loss },
                EvalFault::Deadline => TaskError::Timeout {
                    limit_minutes: config.timeout_minutes.unwrap_or(eval_minutes),
                },
                EvalFault::Cancelled => TaskError::Cancelled,
            })
        };
        return StreamTaskReport {
            record: TaskRecord { value, minutes: minutes_charged, worker: slot, attempts: attempt },
            lost_minutes: lost,
            backoff_minutes: backoff,
            deaths,
        };
    }
}

/// Per-slot baseline captured at the last epoch boundary, so
/// [`StreamSlots::epoch_report`] can report deltas.
#[derive(Clone, Default)]
struct EpochBaseline {
    busy: Vec<f64>,
    lost: Vec<f64>,
    backoff: Vec<f64>,
    deaths: usize,
    retried: usize,
    diverged: usize,
    timeout: usize,
    cancelled: usize,
    exhausted: usize,
}

/// The simulated clock of a steady-state run: one monotone cursor per
/// worker slot, advanced as tasks are charged to it. No list-scheduling
/// reconstruction is needed — slot assignment is explicit and continuous,
/// so the cursor *is* the slot's simulated wall clock.
pub struct StreamSlots {
    busy: Vec<f64>,
    lost: Vec<f64>,
    backoff: Vec<f64>,
    deaths: usize,
    retried: usize,
    diverged: usize,
    timeout: usize,
    cancelled: usize,
    exhausted: usize,
    baseline: EpochBaseline,
}

impl StreamSlots {
    /// Fresh accounting for `n_workers` slots, all at simulated time zero.
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers > 0, "stream needs at least one worker slot");
        StreamSlots {
            busy: vec![0.0; n_workers],
            lost: vec![0.0; n_workers],
            backoff: vec![0.0; n_workers],
            deaths: 0,
            retried: 0,
            diverged: 0,
            timeout: 0,
            cancelled: 0,
            exhausted: 0,
            baseline: EpochBaseline {
                busy: vec![0.0; n_workers],
                lost: vec![0.0; n_workers],
                backoff: vec![0.0; n_workers],
                ..EpochBaseline::default()
            },
        }
    }

    /// Number of worker slots.
    pub fn n_slots(&self) -> usize {
        self.busy.len()
    }

    /// A slot's simulated clock: everything charged to it so far.
    pub fn cursor(&self, slot: usize) -> f64 {
        self.busy[slot] + self.lost[slot] + self.backoff[slot]
    }

    /// Slot indices ordered by who frees up first — ascending cursor, ties
    /// broken by slot index. This is the deterministic submission order:
    /// the front of the pending queue goes to `free_order()[0]`, and so on.
    pub fn free_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n_slots()).collect();
        order.sort_by(|&a, &b| {
            self.cursor(a)
                .partial_cmp(&self.cursor(b))
                .expect("cursors are finite")
                .then(a.cmp(&b))
        });
        order
    }

    /// Charge a completed task to its slot and return the simulated time at
    /// which the slot frees up again — the task's completion time, which
    /// (together with the slot index as tie-break) defines the campaign's
    /// arrival order.
    pub fn charge<T>(&mut self, slot: usize, report: &StreamTaskReport<T>) -> f64 {
        let exhausted = matches!(report.record.value, Err(TaskError::WorkerFailed));
        if exhausted {
            self.lost[slot] += report.record.minutes;
            self.exhausted += 1;
        } else {
            self.busy[slot] += report.record.minutes;
            self.lost[slot] += report.lost_minutes;
            match &report.record.value {
                Err(TaskError::Failed(_)) | Err(TaskError::Diverged { .. }) => self.diverged += 1,
                Err(TaskError::Timeout { .. }) => self.timeout += 1,
                Err(TaskError::Cancelled) => self.cancelled += 1,
                Err(TaskError::WorkerFailed) | Err(TaskError::Speculated) | Ok(_) => {}
            }
        }
        self.backoff[slot] += report.backoff_minutes;
        self.deaths += report.deaths;
        if report.deaths > 0 {
            self.retried += 1;
        }
        self.cursor(slot)
    }

    /// Close an epoch (one population's worth of arrivals) and report it in
    /// batch-report shape, from the per-slot deltas since the previous
    /// boundary: `wall_minutes` is the largest slot delta, and each slot's
    /// idle is its shortfall against that — within-epoch imbalance only,
    /// since a saturated stream has no barrier to wait on. The per-slot
    /// `busy + lost + backoff + idle = wall` partition holds exactly.
    pub fn epoch_report(&mut self) -> PoolReport {
        let n = self.n_slots();
        let d = |now: &[f64], then: &[f64]| -> Vec<f64> {
            (0..n).map(|s| now[s] - then[s]).collect()
        };
        let busy = d(&self.busy, &self.baseline.busy);
        let lost = d(&self.lost, &self.baseline.lost);
        let backoff = d(&self.backoff, &self.baseline.backoff);
        let per_worker: Vec<f64> = (0..n).map(|s| busy[s] + lost[s]).collect();
        let totals: Vec<f64> = (0..n).map(|s| per_worker[s] + backoff[s]).collect();
        let wall = totals.iter().cloned().fold(0.0f64, f64::max);
        let makespan = per_worker.iter().cloned().fold(0.0f64, f64::max);
        let idle: Vec<f64> = totals.iter().map(|&t| wall - t).collect();
        let report = PoolReport {
            makespan_minutes: makespan,
            per_worker_minutes: per_worker,
            worker_deaths: self.deaths - self.baseline.deaths,
            retried_tasks: self.retried - self.baseline.retried,
            diverged_tasks: self.diverged - self.baseline.diverged,
            timeout_tasks: self.timeout - self.baseline.timeout,
            cancelled_tasks: self.cancelled - self.baseline.cancelled,
            exhausted_tasks: self.exhausted - self.baseline.exhausted,
            speculated_tasks: 0,
            speculative_deaths: 0,
            lost_minutes: lost.iter().sum(),
            backoff_minutes: backoff.iter().sum(),
            busy_minutes: busy,
            lost_death_minutes: lost,
            lost_speculation_minutes: vec![0.0; n],
            backoff_slot_minutes: backoff,
            idle_minutes: idle,
            wall_minutes: wall,
            quarantined_workers: 0,
            heartbeats: 0,
        };
        self.baseline = EpochBaseline {
            busy: self.busy.clone(),
            lost: self.lost.clone(),
            backoff: self.backoff.clone(),
            deaths: self.deaths,
            retried: self.retried,
            diverged: self.diverged,
            timeout: self.timeout,
            cancelled: self.cancelled,
            exhausted: self.exhausted,
        };
        report
    }

    /// Whole-run continuous accounting: the true steady-state utilization
    /// partition, where `wall_minutes` is the latest slot cursor and each
    /// slot's idle is purely the end-of-run drain (it stopped receiving
    /// work while the longest slot finished). The per-slot
    /// `busy + lost + backoff + idle = wall` partition holds exactly.
    pub fn final_report(&self) -> PoolReport {
        let n = self.n_slots();
        let per_worker: Vec<f64> = (0..n).map(|s| self.busy[s] + self.lost[s]).collect();
        let totals: Vec<f64> = (0..n).map(|s| self.cursor(s)).collect();
        let wall = totals.iter().cloned().fold(0.0f64, f64::max);
        let makespan = per_worker.iter().cloned().fold(0.0f64, f64::max);
        PoolReport {
            makespan_minutes: makespan,
            per_worker_minutes: per_worker,
            worker_deaths: self.deaths,
            retried_tasks: self.retried,
            diverged_tasks: self.diverged,
            timeout_tasks: self.timeout,
            cancelled_tasks: self.cancelled,
            exhausted_tasks: self.exhausted,
            speculated_tasks: 0,
            speculative_deaths: 0,
            lost_minutes: self.lost.iter().sum(),
            backoff_minutes: self.backoff.iter().sum(),
            busy_minutes: self.busy.clone(),
            lost_death_minutes: self.lost.clone(),
            lost_speculation_minutes: vec![0.0; n],
            backoff_slot_minutes: self.backoff.clone(),
            idle_minutes: totals.iter().map(|&t| wall - t).collect(),
            wall_minutes: wall,
            quarantined_workers: 0,
            heartbeats: 0,
        }
    }

    /// The full accounting state as a plain-data snapshot, for embedding in
    /// a campaign journal's snapshot record. [`StreamSlots::from_state`]
    /// rebuilds an identical accountant from it.
    pub fn state(&self) -> StreamSlotsState {
        StreamSlotsState {
            busy: self.busy.clone(),
            lost: self.lost.clone(),
            backoff: self.backoff.clone(),
            deaths: self.deaths,
            retried: self.retried,
            diverged: self.diverged,
            timeout: self.timeout,
            cancelled: self.cancelled,
            exhausted: self.exhausted,
            baseline_busy: self.baseline.busy.clone(),
            baseline_lost: self.baseline.lost.clone(),
            baseline_backoff: self.baseline.backoff.clone(),
            baseline_deaths: self.baseline.deaths,
            baseline_retried: self.baseline.retried,
            baseline_diverged: self.baseline.diverged,
            baseline_timeout: self.baseline.timeout,
            baseline_cancelled: self.baseline.cancelled,
            baseline_exhausted: self.baseline.exhausted,
        }
    }

    /// Rebuild an accountant from a [`StreamSlotsState`] snapshot.
    pub fn from_state(state: StreamSlotsState) -> Self {
        assert!(!state.busy.is_empty(), "stream needs at least one worker slot");
        StreamSlots {
            busy: state.busy,
            lost: state.lost,
            backoff: state.backoff,
            deaths: state.deaths,
            retried: state.retried,
            diverged: state.diverged,
            timeout: state.timeout,
            cancelled: state.cancelled,
            exhausted: state.exhausted,
            baseline: EpochBaseline {
                busy: state.baseline_busy,
                lost: state.baseline_lost,
                backoff: state.baseline_backoff,
                deaths: state.baseline_deaths,
                retried: state.baseline_retried,
                diverged: state.baseline_diverged,
                timeout: state.baseline_timeout,
                cancelled: state.baseline_cancelled,
                exhausted: state.baseline_exhausted,
            },
        }
    }
}

/// Plain-data snapshot of a [`StreamSlots`] accountant: every cursor and
/// counter, plus the epoch baseline, flattened for serialization.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamSlotsState {
    /// Per-slot productive minutes.
    pub busy: Vec<f64>,
    /// Per-slot minutes lost to worker deaths.
    pub lost: Vec<f64>,
    /// Per-slot retry-backoff minutes.
    pub backoff: Vec<f64>,
    /// Worker deaths charged so far.
    pub deaths: usize,
    /// Tasks that needed at least one retry.
    pub retried: usize,
    /// Diverged/failed tasks.
    pub diverged: usize,
    /// Timed-out tasks.
    pub timeout: usize,
    /// Cancelled tasks.
    pub cancelled: usize,
    /// Tasks that exhausted their retry budget.
    pub exhausted: usize,
    /// Epoch-baseline per-slot productive minutes.
    pub baseline_busy: Vec<f64>,
    /// Epoch-baseline per-slot death-loss minutes.
    pub baseline_lost: Vec<f64>,
    /// Epoch-baseline per-slot backoff minutes.
    pub baseline_backoff: Vec<f64>,
    /// Epoch-baseline worker deaths.
    pub baseline_deaths: usize,
    /// Epoch-baseline retried tasks.
    pub baseline_retried: usize,
    /// Epoch-baseline diverged tasks.
    pub baseline_diverged: usize,
    /// Epoch-baseline timed-out tasks.
    pub baseline_timeout: usize,
    /// Epoch-baseline cancelled tasks.
    pub baseline_cancelled: usize,
    /// Epoch-baseline exhausted tasks.
    pub baseline_exhausted: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SupervisorConfig;

    fn config(n_workers: usize) -> PoolConfig {
        PoolConfig {
            n_workers,
            timeout_minutes: Some(100.0),
            nanny: false,
            max_attempts: 3,
            supervisor: SupervisorConfig::default(),
        }
    }

    #[test]
    fn window_reports_come_back_in_input_order() {
        let tasks: Vec<(usize, usize, u64)> = (0..4).map(|i| (i, i, (i as u64) + 1)).collect();
        let reports = run_stream_window(
            &tasks,
            |ctx, &x| EvalOutcome { value: Ok(x * x), minutes: 10.0 * ctx.task as f64 + 5.0 },
            |_, _| 10.0,
            &config(4),
            &FaultInjector::none(),
        );
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(*r.record.value.as_ref().unwrap(), ((i as u64) + 1).pow(2));
            assert_eq!(r.record.worker, i);
            assert_eq!(r.record.attempts, 1);
            assert_eq!(r.charged_minutes(), 10.0 * i as f64 + 5.0);
        }
    }

    #[test]
    fn timeouts_charge_the_limit_and_classify() {
        let tasks = vec![(0usize, 0usize, ())];
        let reports = run_stream_window(
            &tasks,
            |_, _| EvalOutcome::<u64> { value: Ok(1), minutes: 500.0 },
            |_, _| 500.0,
            &config(1),
            &FaultInjector::none(),
        );
        assert!(matches!(reports[0].record.value, Err(TaskError::Timeout { .. })));
        assert_eq!(reports[0].record.minutes, 100.0);
    }

    #[test]
    fn retry_chains_are_pure_functions_of_the_fault_plan() {
        // A fault rate this high guarantees at least one death across 32
        // tasks; the chains must replay identically on a second execution.
        let faults = FaultInjector::new(0.4, 77);
        let tasks: Vec<(usize, usize, u64)> = (0..32).map(|i| (i, i % 4, i as u64)).collect();
        let run = || {
            run_stream_window(
                &tasks,
                |_, &x| EvalOutcome { value: Ok(x), minutes: 30.0 },
                |_, _| 30.0,
                &config(4),
                &faults,
            )
        };
        let a = run();
        let b = run();
        assert!(a.iter().any(|r| r.deaths > 0), "fault plan produced no deaths");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.deaths, y.deaths);
            assert_eq!(x.record.attempts, y.record.attempts);
            assert_eq!(x.lost_minutes, y.lost_minutes);
            assert_eq!(x.backoff_minutes, y.backoff_minutes);
            assert_eq!(x.record.value.is_ok(), y.record.value.is_ok());
        }
        // Exhausted chains carry their lost minutes as the record, like the
        // batch scheduler.
        for r in &a {
            if matches!(r.record.value, Err(TaskError::WorkerFailed)) {
                assert_eq!(r.record.minutes, r.lost_minutes);
                assert_eq!(r.record.attempts, 3);
            }
        }
    }

    #[test]
    fn slot_cursors_partition_exactly_with_drain_only_idle() {
        let mut slots = StreamSlots::new(2);
        let ok = |minutes: f64, slot: usize| StreamTaskReport::<u64> {
            record: TaskRecord { value: Ok(1), minutes, worker: slot, attempts: 1 },
            lost_minutes: 0.0,
            backoff_minutes: 0.0,
            deaths: 0,
        };
        assert_eq!(slots.free_order(), vec![0, 1]);
        let t0 = slots.charge(0, &ok(10.0, 0));
        let t1 = slots.charge(1, &ok(4.0, 1));
        assert_eq!((t0, t1), (10.0, 4.0));
        // Slot 1 frees first now.
        assert_eq!(slots.free_order(), vec![1, 0]);
        let report = slots.final_report();
        assert_eq!(report.wall_minutes, 10.0);
        assert_eq!(report.idle_minutes, vec![0.0, 6.0]);
        for s in 0..2 {
            let total = report.busy_minutes[s]
                + report.lost_death_minutes[s]
                + report.lost_speculation_minutes[s]
                + report.backoff_slot_minutes[s]
                + report.idle_minutes[s];
            assert!((total - report.wall_minutes).abs() < 1e-12);
        }
    }

    #[test]
    fn epoch_reports_are_deltas_and_partition_exactly() {
        let mut slots = StreamSlots::new(2);
        let ok = |minutes: f64, slot: usize| StreamTaskReport::<u64> {
            record: TaskRecord { value: Ok(1), minutes, worker: slot, attempts: 1 },
            lost_minutes: 0.0,
            backoff_minutes: 0.0,
            deaths: 0,
        };
        slots.charge(0, &ok(10.0, 0));
        slots.charge(1, &ok(4.0, 1));
        let first = slots.epoch_report();
        assert_eq!(first.wall_minutes, 10.0);
        assert_eq!(first.busy_minutes, vec![10.0, 4.0]);
        slots.charge(1, &ok(8.0, 1));
        let second = slots.epoch_report();
        // Only the delta since the boundary shows up.
        assert_eq!(second.busy_minutes, vec![0.0, 8.0]);
        assert_eq!(second.wall_minutes, 8.0);
        assert_eq!(second.idle_minutes, vec![8.0, 0.0]);
        for report in [&first, &second] {
            for s in 0..2 {
                let total = report.busy_minutes[s]
                    + report.lost_death_minutes[s]
                    + report.backoff_slot_minutes[s]
                    + report.idle_minutes[s];
                assert!((total - report.wall_minutes).abs() < 1e-12);
            }
        }
    }
}
